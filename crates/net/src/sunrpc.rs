//! The Sun RPC call/reply message layer (RFC 1057 subset).
//!
//! Frames procedure calls for transport over [`crate::SimNet`]: a record
//! mark (so streams could be reassembled, as over TCP), then the standard
//! call header — XID, message type, RPC version, program, version,
//! procedure, and null credentials — then the XDR-encoded arguments the
//! stub marshalled. Replies carry the XID, an accept status, and results.

use crate::{NetError, Result};
use flexrpc_marshal::xdr::XdrReader;

/// Rounds `n` up to the XDR 4-byte boundary.
fn align_up4(n: usize) -> usize {
    n.next_multiple_of(4)
}

/// RPC message types.
const CALL: u32 = 0;
const REPLY: u32 = 1;
/// The only RPC protocol version RFC 1057 defines.
const RPC_VERS: u32 = 2;

/// Reply status codes (accepted-state subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptStat {
    /// Call executed successfully.
    Success,
    /// Program number not served here.
    ProgUnavail,
    /// Program version not served.
    ProgMismatch,
    /// Procedure number unknown.
    ProcUnavail,
    /// Arguments undecodable.
    GarbageArgs,
    /// Server-side failure unrelated to the arguments (RFC 1057
    /// `SYSTEM_ERR`): the serving engine shed the call under load or
    /// cancelled it during drain.
    SystemErr,
}

impl AcceptStat {
    fn code(self) -> u32 {
        match self {
            AcceptStat::Success => 0,
            AcceptStat::ProgUnavail => 1,
            AcceptStat::ProgMismatch => 2,
            AcceptStat::ProcUnavail => 3,
            AcceptStat::GarbageArgs => 4,
            AcceptStat::SystemErr => 5,
        }
    }

    fn from_code(v: u32) -> Option<AcceptStat> {
        Some(match v {
            0 => AcceptStat::Success,
            1 => AcceptStat::ProgUnavail,
            2 => AcceptStat::ProgMismatch,
            3 => AcceptStat::ProcUnavail,
            4 => AcceptStat::GarbageArgs,
            5 => AcceptStat::SystemErr,
            _ => return None,
        })
    }
}

/// A decoded call header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallHeader {
    /// Transaction id (matches replies to calls).
    pub xid: u32,
    /// Program number (e.g. 100003 for NFS).
    pub prog: u32,
    /// Program version.
    pub vers: u32,
    /// Procedure number.
    pub proc: u32,
}

/// Call header size after the record mark: XID, type, RPC version, prog,
/// vers, proc, plus four null credential/verifier words.
const CALL_HDR_WORDS: usize = 10;
/// Credential flavor carrying a flexrpc at-most-once call tag: 24 opaque
/// bytes of (client binding id, sequence number, tenant id), all
/// big-endian u64. Riding the RFC 1057 credential field keeps the tag out
/// of the argument bytes, so tagged and untagged frames decode with the
/// same body layout.
pub const CRED_FLAVOR_AMO: u32 = 0x464C_5250; // "FLRP"
/// Byte length of the at-most-once credential body (with tenancy).
const CRED_AMO_LEN: u32 = 24;
/// Pre-tenancy credential body length (binding + seq only); still decoded,
/// charging the call to the default tenant, so an old client can talk to a
/// new server across a rolling upgrade.
const CRED_AMO_LEN_V1: u32 = 16;
/// Reply header size after the record mark: XID, type, reply stat, null
/// verifier (2 words), accept stat.
const REPLY_HDR_WORDS: usize = 6;

/// Encodes a call message: record mark + header + `args`.
pub fn encode_call(hdr: CallHeader, args: &[u8]) -> Vec<u8> {
    encode_call_gather(hdr, &[args])
}

/// Encodes a call message by gathering `parts` straight into an exact-size
/// frame.
///
/// Because every frame length is known before the first byte is written,
/// the record mark is computed up front (no placeholder-then-patch pass)
/// and the output vector is allocated once at its final size. Body slices —
/// typically a stub's marshalled message, or a header plus a borrowed
/// payload window — are spliced in place with no intermediate staging
/// buffer, which is the record-marking path's half of the paper's "marshal
/// directly into the transport buffer" discipline.
pub fn encode_call_gather(hdr: CallHeader, parts: &[&[u8]]) -> Vec<u8> {
    encode_call_tagged(hdr, None, parts)
}

/// Encodes a call message, optionally carrying an at-most-once call tag
/// `(binding id, sequence number, tenant id)` in the credential field.
/// `None` emits the classic null-credential frame byte-for-byte. Same
/// exact-size, no-patch scheme as [`encode_call_gather`].
pub fn encode_call_tagged(
    hdr: CallHeader,
    tag: Option<(u64, u64, u64)>,
    parts: &[&[u8]],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(call_frame_len(tag.is_some(), parts));
    encode_call_tagged_into(&mut buf, hdr, tag, parts);
    buf
}

/// Exact on-wire length of a call frame (record mark included).
fn call_frame_len(tagged: bool, parts: &[&[u8]]) -> usize {
    let body: usize = parts.iter().map(|p| p.len()).sum();
    let cred_words = if tagged { CRED_AMO_LEN as usize / 4 } else { 0 };
    4 + (CALL_HDR_WORDS + cred_words) * 4 + align_up4(body)
}

/// Appends one record-marked call frame to `buf`. This is the batching
/// half of the gather discipline: a pipelining client encodes every
/// pending XID into one stream with no per-record staging vector, then
/// hands the whole stream to the transport as a single write.
pub fn encode_call_tagged_into(
    buf: &mut Vec<u8>,
    hdr: CallHeader,
    tag: Option<(u64, u64, u64)>,
    parts: &[&[u8]],
) {
    let total = call_frame_len(tag.is_some(), parts);
    let start = buf.len();
    buf.reserve(total);
    let mark = 0x8000_0000u32 | (total - 4) as u32; // Last-fragment bit set.
    for word in [mark, hdr.xid, CALL, RPC_VERS, hdr.prog, hdr.vers, hdr.proc] {
        buf.extend_from_slice(&word.to_be_bytes());
    }
    match tag {
        // Null credentials and verifier (flavor 0, length 0), per RFC 1057.
        None => buf.extend_from_slice(&[0u8; 16]),
        Some((binding, seq, tenant)) => {
            buf.extend_from_slice(&CRED_FLAVOR_AMO.to_be_bytes());
            buf.extend_from_slice(&CRED_AMO_LEN.to_be_bytes());
            buf.extend_from_slice(&binding.to_be_bytes());
            buf.extend_from_slice(&seq.to_be_bytes());
            buf.extend_from_slice(&tenant.to_be_bytes());
            buf.extend_from_slice(&[0u8; 8]); // Null verifier.
        }
    }
    for p in parts {
        buf.extend_from_slice(p);
    }
    buf.resize(start + total, 0); // Trailing pad to the 4-byte record boundary.
}

/// Encodes a reply message: record mark + header + `results`.
pub fn encode_reply(xid: u32, stat: AcceptStat, results: &[u8]) -> Vec<u8> {
    encode_reply_gather(xid, stat, &[results])
}

/// Encodes a reply message by gathering `parts` into an exact-size frame;
/// see [`encode_call_gather`] for the single-allocation/no-patch scheme.
pub fn encode_reply_gather(xid: u32, stat: AcceptStat, parts: &[&[u8]]) -> Vec<u8> {
    let body: usize = parts.iter().map(|p| p.len()).sum();
    let mut buf = Vec::with_capacity(4 + REPLY_HDR_WORDS * 4 + align_up4(body));
    encode_reply_gather_into(&mut buf, xid, stat, parts);
    buf
}

/// Appends one record-marked reply frame to `buf` — the server-side
/// batching half: a pipelined acceptor encodes every reply of a batch
/// into one stream and sends it as a single message.
pub fn encode_reply_gather_into(buf: &mut Vec<u8>, xid: u32, stat: AcceptStat, parts: &[&[u8]]) {
    let body: usize = parts.iter().map(|p| p.len()).sum();
    let padded = align_up4(body);
    let total = 4 + REPLY_HDR_WORDS * 4 + padded;
    let start = buf.len();
    buf.reserve(total);
    let mark = 0x8000_0000u32 | (total - 4) as u32;
    // MSG_ACCEPTED, then a null verifier, then the accept status.
    for word in [mark, xid, REPLY, 0, 0, 0, stat.code()] {
        buf.extend_from_slice(&word.to_be_bytes());
    }
    for p in parts {
        buf.extend_from_slice(p);
    }
    buf.resize(start + total, 0);
}

fn proto_err(why: &str) -> NetError {
    NetError::ServiceFailure(format!("sunrpc protocol error: {why}"))
}

/// Decodes a call message, returning the header and the argument bytes.
/// An at-most-once credential, if present, is tolerated and dropped — use
/// [`decode_call_tagged`] to recover it.
pub fn decode_call(msg: &[u8]) -> Result<(CallHeader, &[u8])> {
    let (hdr, _tag, args) = decode_call_tagged(msg)?;
    Ok((hdr, args))
}

/// A decoded call: header, at-most-once tag `(binding id, sequence
/// number, tenant id)` if the credential carries one, and the argument
/// bytes.
pub type TaggedCall<'a> = (CallHeader, Option<(u64, u64, u64)>, &'a [u8]);

/// Decodes a call message, returning the header, the at-most-once call
/// tag `(binding id, sequence number, tenant id)` if the credential
/// carries one (pre-tenancy 16-byte credentials decode with tenant 0),
/// and the argument bytes.
pub fn decode_call_tagged(msg: &[u8]) -> Result<TaggedCall<'_>> {
    let mut r = XdrReader::new(msg);
    let mark = r.get_u32().map_err(|_| proto_err("truncated record mark"))?;
    if mark & 0x8000_0000 == 0 {
        return Err(proto_err("fragmented records not supported"));
    }
    if (mark & 0x7FFF_FFFF) as usize != msg.len() - 4 {
        return Err(proto_err("record mark length mismatch"));
    }
    let xid = r.get_u32().map_err(|_| proto_err("truncated xid"))?;
    let mtype = r.get_u32().map_err(|_| proto_err("truncated msg type"))?;
    if mtype != CALL {
        return Err(proto_err("expected a call message"));
    }
    let rpcvers = r.get_u32().map_err(|_| proto_err("truncated rpc version"))?;
    if rpcvers != RPC_VERS {
        return Err(proto_err("unsupported RPC protocol version"));
    }
    let prog = r.get_u32().map_err(|_| proto_err("truncated prog"))?;
    let vers = r.get_u32().map_err(|_| proto_err("truncated vers"))?;
    let proc = r.get_u32().map_err(|_| proto_err("truncated proc"))?;
    let cred_flavor = r.get_u32().map_err(|_| proto_err("truncated credentials"))?;
    let cred_len = r.get_u32().map_err(|_| proto_err("truncated credentials"))?;
    let tag = match (cred_flavor, cred_len) {
        (0, 0) => None,
        (CRED_FLAVOR_AMO, CRED_AMO_LEN) => {
            let binding = r.get_u64().map_err(|_| proto_err("truncated call tag"))?;
            let seq = r.get_u64().map_err(|_| proto_err("truncated call tag"))?;
            let tenant = r.get_u64().map_err(|_| proto_err("truncated call tag"))?;
            Some((binding, seq, tenant))
        }
        (CRED_FLAVOR_AMO, CRED_AMO_LEN_V1) => {
            let binding = r.get_u64().map_err(|_| proto_err("truncated call tag"))?;
            let seq = r.get_u64().map_err(|_| proto_err("truncated call tag"))?;
            Some((binding, seq, 0))
        }
        _ => return Err(proto_err("unsupported credential flavor")),
    };
    for what in ["verf flavor", "verf length"] {
        let v = r.get_u32().map_err(|_| proto_err("truncated verifier"))?;
        if v != 0 {
            return Err(proto_err(&format!("non-null {what} not supported")));
        }
    }
    let args_len = r.remaining();
    let args = r.get_opaque_fixed(args_len).expect("remaining bytes");
    Ok((CallHeader { xid, prog, vers, proc }, tag, args))
}

/// Splits a stream of concatenated record-marked messages into individual
/// messages (each slice *includes* its record mark, so it feeds straight
/// into [`decode_call`]/[`decode_reply`]).
///
/// This is the receive half of call pipelining: a client with several
/// outstanding XIDs concatenates whole call records into one stream, and
/// the server peels them apart here — exactly how Sun RPC records stack up
/// in a TCP byte stream.
pub fn split_records(stream: &[u8]) -> Result<Vec<&[u8]>> {
    let mut records = Vec::new();
    let mut rest = stream;
    while !rest.is_empty() {
        if rest.len() < 4 {
            return Err(proto_err("truncated record mark in stream"));
        }
        let mark = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes"));
        if mark & 0x8000_0000 == 0 {
            return Err(proto_err("fragmented records not supported"));
        }
        let len = (mark & 0x7FFF_FFFF) as usize;
        if rest.len() < 4 + len {
            return Err(proto_err("record extends past end of stream"));
        }
        records.push(&rest[..4 + len]);
        rest = &rest[4 + len..];
    }
    Ok(records)
}

/// Decodes a reply message, returning the XID, status, and result bytes.
pub fn decode_reply(msg: &[u8]) -> Result<(u32, AcceptStat, &[u8])> {
    let mut r = XdrReader::new(msg);
    let mark = r.get_u32().map_err(|_| proto_err("truncated record mark"))?;
    if (mark & 0x7FFF_FFFF) as usize != msg.len() - 4 {
        return Err(proto_err("record mark length mismatch"));
    }
    let xid = r.get_u32().map_err(|_| proto_err("truncated xid"))?;
    let mtype = r.get_u32().map_err(|_| proto_err("truncated msg type"))?;
    if mtype != REPLY {
        return Err(proto_err("expected a reply message"));
    }
    let replystat = r.get_u32().map_err(|_| proto_err("truncated reply stat"))?;
    if replystat != 0 {
        return Err(proto_err("call rejected"));
    }
    let _verf_flavor = r.get_u32().map_err(|_| proto_err("truncated verifier"))?;
    let _verf_len = r.get_u32().map_err(|_| proto_err("truncated verifier"))?;
    let stat = AcceptStat::from_code(r.get_u32().map_err(|_| proto_err("truncated stat"))?)
        .ok_or_else(|| proto_err("unknown accept status"))?;
    let rest = r.remaining();
    let results = r.get_opaque_fixed(rest).expect("remaining bytes");
    Ok((xid, stat, results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_roundtrip() {
        let hdr = CallHeader { xid: 77, prog: 100003, vers: 2, proc: 6 };
        let msg = encode_call(hdr, b"args-bytes!!");
        let (got, args) = decode_call(&msg).unwrap();
        assert_eq!(got, hdr);
        assert_eq!(args, b"args-bytes!!");
    }

    #[test]
    fn reply_roundtrip() {
        let msg = encode_reply(77, AcceptStat::Success, &[1, 2, 3, 4]);
        let (xid, stat, results) = decode_reply(&msg).unwrap();
        assert_eq!(xid, 77);
        assert_eq!(stat, AcceptStat::Success);
        assert_eq!(results, &[1, 2, 3, 4]);
    }

    #[test]
    fn record_mark_carries_length() {
        let msg = encode_call(CallHeader { xid: 1, prog: 2, vers: 3, proc: 4 }, &[]);
        let mark = u32::from_be_bytes(msg[..4].try_into().unwrap());
        assert_ne!(mark & 0x8000_0000, 0, "last-fragment bit");
        assert_eq!((mark & 0x7FFF_FFFF) as usize, msg.len() - 4);
    }

    #[test]
    fn corrupted_record_mark_rejected() {
        let mut msg = encode_call(CallHeader { xid: 1, prog: 2, vers: 3, proc: 4 }, b"x");
        msg[3] ^= 0xFF;
        assert!(decode_call(&msg).is_err());
    }

    #[test]
    fn wrong_message_type_rejected() {
        let call = encode_call(CallHeader { xid: 5, prog: 1, vers: 1, proc: 0 }, &[]);
        assert!(decode_reply(&call).is_err());
        let reply = encode_reply(5, AcceptStat::Success, &[]);
        assert!(decode_call(&reply).is_err());
    }

    #[test]
    fn error_statuses_roundtrip() {
        for stat in [
            AcceptStat::ProgUnavail,
            AcceptStat::ProgMismatch,
            AcceptStat::ProcUnavail,
            AcceptStat::GarbageArgs,
            AcceptStat::SystemErr,
        ] {
            let msg = encode_reply(9, stat, &[]);
            let (_, got, _) = decode_reply(&msg).unwrap();
            assert_eq!(got, stat);
        }
    }

    #[test]
    fn truncated_messages_rejected_not_panicking() {
        let msg = encode_call(CallHeader { xid: 1, prog: 2, vers: 3, proc: 4 }, b"abc");
        for cut in 0..msg.len() {
            let _ = decode_call(&msg[..cut]);
        }
    }

    #[test]
    fn record_stream_splits_back_into_messages() {
        let calls: Vec<Vec<u8>> = (0..5u32)
            .map(|i| {
                encode_call(
                    CallHeader { xid: 100 + i, prog: 7, vers: 1, proc: i },
                    &vec![i as u8; i as usize * 4],
                )
            })
            .collect();
        let stream: Vec<u8> = calls.iter().flatten().copied().collect();
        let records = split_records(&stream).unwrap();
        assert_eq!(records.len(), 5);
        for (i, rec) in records.iter().enumerate() {
            let (hdr, args) = decode_call(rec).unwrap();
            assert_eq!(hdr.xid, 100 + i as u32);
            assert_eq!(args.len(), i * 4);
        }
        assert!(split_records(&stream[..stream.len() - 1]).is_err(), "short tail");
        assert!(split_records(&[0x80]).is_err(), "truncated mark");
        assert_eq!(split_records(&[]).unwrap().len(), 0, "empty stream");
    }

    #[test]
    fn gather_encode_matches_single_buffer_encode() {
        let hdr = CallHeader { xid: 3, prog: 100003, vers: 2, proc: 6 };
        let whole = b"headerbytes-payload".to_vec();
        let gathered = encode_call_gather(hdr, &[&whole[..12], &whole[12..]]);
        assert_eq!(gathered, encode_call(hdr, &whole));
        let reply = encode_reply_gather(3, AcceptStat::Success, &[&whole[..12], &whole[12..]]);
        assert_eq!(reply, encode_reply(3, AcceptStat::Success, &whole));
    }

    #[test]
    fn gather_encode_allocates_exact_size() {
        // Unaligned body: 19 bytes pads to 20; frame lands in a single
        // exactly-sized allocation with no placeholder patching.
        let hdr = CallHeader { xid: 1, prog: 2, vers: 3, proc: 4 };
        let call = encode_call_gather(hdr, &[&[7u8; 19]]);
        assert_eq!(call.len(), call.capacity(), "no growth reallocation");
        assert_eq!(call.len(), 4 + 40 + 20);
        let (got, args) = decode_call(&call).unwrap();
        assert_eq!(got, hdr);
        assert_eq!(&args[..19], &[7u8; 19]);
        assert_eq!(&args[19..], &[0], "trailing record pad");

        let reply = encode_reply_gather(1, AcceptStat::Success, &[&[9u8; 5]]);
        assert_eq!(reply.len(), reply.capacity());
        assert_eq!(reply.len(), 4 + 24 + 8);
    }

    #[test]
    fn append_encoders_build_a_splittable_stream() {
        // Batch three calls and two replies into single streams with the
        // `_into` variants; the result must be byte-identical to the
        // concatenation of the one-frame encoders, and must split back.
        let mut calls = Vec::new();
        let mut expect = Vec::new();
        for i in 0..3u32 {
            let hdr = CallHeader { xid: 50 + i, prog: 7, vers: 1, proc: i };
            let tag = (i == 1).then_some((11u64, i as u64, 2u64));
            let body = vec![i as u8; 5 + i as usize];
            encode_call_tagged_into(&mut calls, hdr, tag, &[b"hdr", &body]);
            expect.extend_from_slice(&encode_call_tagged(hdr, tag, &[b"hdr", &body]));
        }
        assert_eq!(calls, expect);
        assert_eq!(split_records(&calls).unwrap().len(), 3);

        let mut replies = Vec::new();
        let mut expect = Vec::new();
        for i in 0..2u32 {
            encode_reply_gather_into(&mut replies, 50 + i, AcceptStat::Success, &[&[i as u8; 9]]);
            expect.extend_from_slice(&encode_reply(50 + i, AcceptStat::Success, &[i as u8; 9]));
        }
        assert_eq!(replies, expect);
        let records = split_records(&replies).unwrap();
        assert_eq!(records.len(), 2);
        for (i, rec) in records.iter().enumerate() {
            let (xid, stat, results) = decode_reply(rec).unwrap();
            assert_eq!(xid, 50 + i as u32);
            assert_eq!(stat, AcceptStat::Success);
            assert_eq!(&results[..9], &[i as u8; 9]);
        }
    }

    #[test]
    fn tagged_call_roundtrips_binding_and_seq() {
        let hdr = CallHeader { xid: 9, prog: 100003, vers: 2, proc: 1 };
        let msg = encode_call_tagged(hdr, Some((0xDEAD_BEEF_0000_0001, 42, 7)), &[b"payload"]);
        let (got, tag, args) = decode_call_tagged(&msg).unwrap();
        assert_eq!(got, hdr);
        assert_eq!(tag, Some((0xDEAD_BEEF_0000_0001, 42, 7)));
        assert_eq!(&args[..7], b"payload");
        // The untagged decoder tolerates the credential and drops the tag.
        let (got2, args2) = decode_call(&msg).unwrap();
        assert_eq!(got2, hdr);
        assert_eq!(args2, args);
    }

    #[test]
    fn legacy_16_byte_credential_decodes_as_default_tenant() {
        let hdr = CallHeader { xid: 9, prog: 100003, vers: 2, proc: 1 };
        // Hand-build a pre-tenancy frame: flavor FLRP, 16-byte body.
        let body = b"payload";
        let padded = body.len().next_multiple_of(4);
        let total = 4 + (10 + 4) * 4 + padded;
        let mut msg = Vec::new();
        let mark = 0x8000_0000u32 | (total - 4) as u32;
        for word in [mark, hdr.xid, 0, 2, hdr.prog, hdr.vers, hdr.proc] {
            msg.extend_from_slice(&word.to_be_bytes());
        }
        msg.extend_from_slice(&CRED_FLAVOR_AMO.to_be_bytes());
        msg.extend_from_slice(&16u32.to_be_bytes());
        msg.extend_from_slice(&77u64.to_be_bytes());
        msg.extend_from_slice(&3u64.to_be_bytes());
        msg.extend_from_slice(&[0u8; 8]); // Null verifier.
        msg.extend_from_slice(body);
        msg.resize(total, 0);
        let (got, tag, args) = decode_call_tagged(&msg).unwrap();
        assert_eq!(got, hdr);
        assert_eq!(tag, Some((77, 3, 0)), "legacy cred lands in the default tenant");
        assert_eq!(&args[..7], b"payload");
    }

    #[test]
    fn untagged_encode_is_byte_identical_to_classic() {
        let hdr = CallHeader { xid: 3, prog: 7, vers: 1, proc: 2 };
        assert_eq!(encode_call_tagged(hdr, None, &[b"abc"]), encode_call(hdr, b"abc"));
        let (_, tag, _) = decode_call_tagged(&encode_call(hdr, b"abc")).unwrap();
        assert_eq!(tag, None);
    }

    #[test]
    fn unknown_credential_flavor_still_rejected() {
        let hdr = CallHeader { xid: 1, prog: 2, vers: 3, proc: 4 };
        let mut msg = encode_call(hdr, &[]);
        // Patch the cred flavor word (offset: mark + 6 header words).
        let off = 4 + 6 * 4;
        msg[off..off + 4].copy_from_slice(&0x1234_5678u32.to_be_bytes());
        assert!(decode_call(&msg).is_err());
    }

    #[test]
    fn args_are_borrowed_from_message() {
        let msg = encode_call(CallHeader { xid: 1, prog: 2, vers: 3, proc: 4 }, &[9; 64]);
        let (_, args) = decode_call(&msg).unwrap();
        let base = msg.as_ptr() as usize;
        let p = args.as_ptr() as usize;
        assert!(p >= base && p < base + msg.len(), "zero-copy args view");
    }
}
