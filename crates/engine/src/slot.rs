//! A lock-free one-shot reply slot.
//!
//! The engine's old `ReplySlot` was a `Mutex<Option<Result<Reply>>>` plus
//! a `Condvar` whose `fill` woke *every* waiter: every reply paid two
//! lock round-trips and a broadcast even when nobody was parked. This
//! slot is an atomic state machine instead — a seqlock-style publish on
//! the writer side, and a waiter that only touches the mutex/condvar
//! pair on actual contention (it parked and must be woken):
//!
//! ```text
//!   EMPTY ──fill──▶ FILLING ──publish──▶ FULL
//!     │                                    ▲
//!     └──waiter parks──▶ PARKED ──fill─────┘ (wake under the park lock)
//! ```
//!
//! The warm path — reply ready by the time the waiter looks, the common
//! case for a fast handler — is one `Acquire` load and a value move: no
//! lock, no syscall, no allocation (audited in
//! `crates/engine/tests/zero_alloc_wait.rs`).
//!
//! Contract: exactly one value is ever published (later `fill`s are
//! dropped, first wins) and at most one thread waits on a given slot.

use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// No value yet, no waiter parked.
const EMPTY: u32 = 0;
/// A filler has claimed the slot and is writing the value.
const FILLING: u32 = 1;
/// The value is published and readable.
const FULL: u32 = 2;
/// The waiter is parked (or about to park) on the condvar.
const PARKED: u32 = 3;

/// Bounded pre-park spin: a handful of polite spins covers the
/// "reply lands a few instructions after the waiter arrives" window
/// without burning a core (this repo's target box has exactly one).
const SPINS: u32 = 64;
const YIELD_AFTER: u32 = 8;

/// A one-shot single-producer single-consumer completion slot.
pub struct ReplySlot<T> {
    state: AtomicU32,
    value: UnsafeCell<Option<T>>,
    /// Touched only when the waiter actually parks.
    park: Mutex<()>,
    ready: Condvar,
}

// Safety: the state machine guarantees exclusive access to `value` —
// only the filler that wins the EMPTY/PARKED → FILLING transition
// writes it, and only the single waiter reads it after observing FULL
// with `Acquire` (which pairs with the filler's `Release` publish).
unsafe impl<T: Send> Send for ReplySlot<T> {}
unsafe impl<T: Send> Sync for ReplySlot<T> {}

impl<T> Default for ReplySlot<T> {
    fn default() -> ReplySlot<T> {
        ReplySlot::new()
    }
}

impl<T> ReplySlot<T> {
    /// An empty slot.
    pub fn new() -> ReplySlot<T> {
        ReplySlot {
            state: AtomicU32::new(EMPTY),
            value: UnsafeCell::new(None),
            park: Mutex::new(()),
            ready: Condvar::new(),
        }
    }

    /// Publishes `value`. The first fill wins and returns `true`; any
    /// later fill drops its value and returns `false` (duplicate
    /// deliveries race their shadow's completion against the real one).
    pub fn fill(&self, value: T) -> bool {
        loop {
            match self.state.compare_exchange(EMPTY, FILLING, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => {
                    // No waiter parked: write, publish, done — the
                    // lock-free fast path.
                    unsafe { *self.value.get() = Some(value) };
                    self.state.store(FULL, Ordering::Release);
                    return true;
                }
                Err(PARKED) => {
                    if self
                        .state
                        .compare_exchange(PARKED, FILLING, Ordering::Acquire, Ordering::Acquire)
                        .is_err()
                    {
                        continue; // Raced with the waiter; re-read.
                    }
                    unsafe { *self.value.get() = Some(value) };
                    // Publish *under the park lock*: the waiter parks and
                    // re-checks state under the same lock, so the wake
                    // cannot slip between its check and its wait.
                    let _guard = self.park.lock();
                    self.state.store(FULL, Ordering::Release);
                    self.ready.notify_all();
                    return true;
                }
                Err(_) => return false, // FULL or FILLING: first fill won.
            }
        }
    }

    /// Takes the published value. Caller observed `FULL` with `Acquire`.
    fn take(&self) -> T {
        unsafe { (*self.value.get()).take() }.expect("FULL slot holds a value")
    }

    /// The warm path: spin briefly for a reply that is ready or imminent.
    fn try_take_spin(&self) -> Option<T> {
        for i in 0..SPINS {
            match self.state.load(Ordering::Acquire) {
                FULL => return Some(self.take()),
                // FILLING: the value write is in flight, stay put.
                _ if i < YIELD_AFTER => std::hint::spin_loop(),
                _ => std::thread::yield_now(),
            }
        }
        None
    }

    /// Blocks until the value is published.
    pub fn wait(&self) -> T {
        if let Some(v) = self.try_take_spin() {
            return v;
        }
        loop {
            let mut guard = self.park.lock();
            match self.state.compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Acquire) {
                // Parked (or still parked after a spurious wake): sleep
                // until the filler publishes under this same lock.
                Ok(_) => self.ready.wait(&mut guard),
                Err(PARKED) => self.ready.wait(&mut guard),
                Err(FULL) => {
                    drop(guard);
                    return self.take();
                }
                Err(_filling) => {
                    // Publish is a few instructions away.
                    drop(guard);
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Blocks until the value is published or `expired()` reports the
    /// deadline passed. Deadlines live on a *sim* clock that other
    /// threads advance, so the park is sliced into short real-time waits
    /// with the predicate re-checked on each wake. Returns `None` on
    /// expiry; a fill that lands after abandonment is dropped with the
    /// slot.
    pub fn wait_deadline(&self, mut expired: impl FnMut() -> bool) -> Option<T> {
        if let Some(v) = self.try_take_spin() {
            return Some(v);
        }
        loop {
            if expired() {
                return None;
            }
            let mut guard = self.park.lock();
            match self.state.compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Acquire) {
                Ok(_) | Err(PARKED) => {
                    let _ = self.ready.wait_for(&mut guard, Duration::from_millis(1));
                }
                Err(FULL) => {
                    drop(guard);
                    return Some(self.take());
                }
                Err(_filling) => {
                    drop(guard);
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl<T> std::fmt::Debug for ReplySlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.state.load(Ordering::Relaxed) {
            EMPTY => "empty",
            FILLING => "filling",
            FULL => "full",
            PARKED => "parked",
            _ => "?",
        };
        write!(f, "ReplySlot({state})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fill_before_wait_is_the_lock_free_path() {
        let slot = ReplySlot::new();
        assert!(slot.fill(7u32));
        assert_eq!(slot.wait(), 7);
    }

    #[test]
    fn first_fill_wins() {
        let slot = ReplySlot::new();
        assert!(slot.fill("real"));
        assert!(!slot.fill("shadow"));
        assert_eq!(slot.wait(), "real");
    }

    #[test]
    fn wait_parks_until_filled() {
        let slot = Arc::new(ReplySlot::new());
        let s = Arc::clone(&slot);
        let filler = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10)); // outlast the spin
            s.fill(42u32);
        });
        assert_eq!(slot.wait(), 42);
        filler.join().unwrap();
    }

    #[test]
    fn deadline_expiry_abandons_and_late_fill_is_harmless() {
        let slot = Arc::new(ReplySlot::new());
        let mut polls = 0u32;
        assert_eq!(
            slot.wait_deadline(|| {
                polls += 1;
                polls > 3
            }),
            None::<u32>
        );
        // The worker finishes later and fills the abandoned slot.
        assert!(slot.fill(9));
        assert!(!slot.fill(10));
    }

    #[test]
    fn deadline_wait_still_receives_a_timely_fill() {
        let slot = Arc::new(ReplySlot::new());
        let s = Arc::clone(&slot);
        let filler = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            s.fill(1u32);
        });
        assert_eq!(slot.wait_deadline(|| false), Some(1));
        filler.join().unwrap();
    }

    /// Shim-backed interleaving sweep (no loom in the tree): drive the
    /// fill/wait race through many seeded schedules — filler leading,
    /// landing mid-spin, and landing after the waiter parked — and
    /// assert the value always arrives exactly once. The yield-based
    /// stagger makes each band hit a different region of the state
    /// machine (EMPTY fast path, FILLING observation, PARKED wake).
    #[test]
    fn interleaving_sweep_never_loses_a_value() {
        for round in 0..200u64 {
            let slot = Arc::new(ReplySlot::new());
            let s = Arc::clone(&slot);
            let stagger = round % 20;
            let filler = thread::spawn(move || {
                for _ in 0..stagger {
                    thread::yield_now();
                }
                if stagger >= 15 {
                    // Band 3: guarantee the waiter is parked.
                    thread::sleep(Duration::from_millis(2));
                }
                assert!(s.fill(round));
            });
            assert_eq!(slot.wait(), round);
            filler.join().unwrap();
        }
    }

    /// Same sweep against the sliced deadline wait: with a deadline that
    /// never expires, no schedule may drop the value.
    #[test]
    fn interleaving_sweep_with_deadline_wait() {
        for round in 0..100u64 {
            let slot = Arc::new(ReplySlot::new());
            let s = Arc::clone(&slot);
            let stagger = round % 20;
            let filler = thread::spawn(move || {
                for _ in 0..stagger {
                    thread::yield_now();
                }
                assert!(s.fill(round));
            });
            assert_eq!(slot.wait_deadline(|| false), Some(round));
            filler.join().unwrap();
        }
    }
}
