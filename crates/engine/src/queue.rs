//! A bounded MPMC queue with blocking push (backpressure) and graceful
//! close, built on a mutex + two condvars.
//!
//! The engine would use `crossbeam`'s channels here; this build runs
//! without registry access, and the engine's needs — bounded, blocking,
//! multi-producer multi-consumer, drainable close — fit in ~100 lines of
//! std primitives, so the queue is hand-rolled instead of stubbed.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why [`BoundedQueue::try_push`] refused an item (the item rides back).
#[derive(Debug)]
pub enum PushRefusal<T> {
    /// The queue is at or above the admission limit.
    Full(T),
    /// The queue has been closed.
    Closed(T),
}

/// A bounded blocking queue shared between acceptors (producers) and the
/// worker pool (consumers).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signalled when space frees up (wakes blocked producers).
    not_full: Condvar,
    /// Signalled when an item arrives or the queue closes (wakes consumers).
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full — this is the
    /// engine's backpressure: a flooded engine slows its clients down
    /// instead of buffering without bound. Returns the item back if the
    /// queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut state);
        }
    }

    /// Enqueues `item` only if fewer than `limit` items are queued —
    /// admission control's fast path: instead of blocking a producer, the
    /// engine sheds load the moment its backlog crosses the high-water
    /// mark. Never blocks.
    pub fn try_push(&self, item: T, limit: usize) -> Result<(), PushRefusal<T>> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(PushRefusal::Closed(item));
        }
        if state.items.len() >= limit.min(self.capacity) {
            return Err(PushRefusal::Full(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while empty. Returns `None` once
    /// the queue is closed *and* drained — workers finish outstanding jobs
    /// before exiting (graceful shutdown).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Closes the queue and returns every item that had not yet been
    /// started: future pushes fail, blocked consumers wake to `None`, and
    /// the caller decides the fate of the unstarted backlog (the engine
    /// fails each one with `Cancelled` rather than silently running work
    /// whose submitter is going away).
    #[must_use = "unstarted items must be failed, not silently dropped"]
    pub fn close(&self) -> Vec<T> {
        let mut state = self.state.lock();
        state.closed = true;
        let unstarted: Vec<T> = state.items.drain(..).collect();
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        unstarted
    }

    /// Items currently queued (a racy snapshot, for stats).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoundedQueue(len={}, cap={})", self.len(), self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn push_blocks_until_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(2).is_ok());
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 1, "second push must be blocked");
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_returns_unstarted_items() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.close(), vec![1, 2], "unstarted backlog comes back to the closer");
        assert_eq!(q.push(3), Err(3), "closed queue refuses new work");
        assert_eq!(q.pop(), None, "consumers see the end immediately");
    }

    #[test]
    fn try_push_sheds_at_limit_without_blocking() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.try_push(3, 3).is_ok(), "below the limit admits");
        assert!(
            matches!(q.try_push(4, 3), Err(PushRefusal::Full(4))),
            "at the limit sheds instead of blocking"
        );
        let _ = q.close();
        assert!(matches!(q.try_push(5, 3), Err(PushRefusal::Closed(5))));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        thread::sleep(std::time::Duration::from_millis(20));
        assert!(q.close().is_empty());
        for c in consumers {
            assert_eq!(c.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Close may race the consumers for the tail of the queue; items it
        // steals count as consumed too (the engine fails them explicitly).
        let stolen = q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.extend(stolen);
        all.sort_unstable();
        let mut expect: Vec<u64> =
            (0..4u64).flat_map(|p| (0..100u64).map(move |i| p * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect, "every job consumed exactly once");
    }
}
