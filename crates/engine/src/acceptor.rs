//! The network acceptor: engine-hosted Sun RPC services on [`SimNet`]
//! hosts, with call pipelining (multiple outstanding XIDs per message).
//!
//! [`expose_on_net`] registers a host handler that accepts either a single
//! call record or a *stream* of concatenated records — the Sun RPC analogue
//! of a TCP connection with several calls in flight. Every record becomes a
//! job on the engine queue, so the records of one batch execute across the
//! worker pool concurrently; replies are re-framed in completion-wait order
//! and the client matches them back to calls by XID.
//!
//! [`SunRpcPipeline`] is the matching client: it queues calls locally and
//! gather-encodes everything pending into one record stream on
//! [`SunRpcPipeline::flush`] — adaptive batching with no nagle delay
//! (whatever is ready ships immediately, coalesced). The acceptor's reply
//! half mirrors it: each batch's replies are gather-encoded straight into
//! a single outgoing stream, marshalled body slices spliced behind their
//! record marks with no intermediate per-reply frame.

use crate::engine::{CallTicket, ClientInfo, Engine, EngineError};
use flexrpc_core::program::CompiledOp;
use flexrpc_net::sunrpc::{self, AcceptStat, CallHeader};
use flexrpc_net::{HostId, NetError, SimNet};
use flexrpc_runtime::policy::CallTag;
use flexrpc_runtime::RetryPolicy;
use flexrpc_trace::{SharedCallTrace, Stage};
use std::sync::Arc;

/// Registers `service_name` as the Sun RPC program `(prog, vers)` on
/// `host`, served by `engine`'s worker pool.
///
/// `client` describes the presentation half remote peers are assumed to
/// speak (network peers marshal through the service's wire format; their
/// binding is fixed at expose time, exactly one program combination per
/// exposure). The combination resolves through the engine's program cache,
/// so exposing the same service on several hosts compiles once.
pub fn expose_on_net(
    engine: &Arc<Engine>,
    net: &Arc<SimNet>,
    host: HostId,
    service_name: &str,
    prog: u32,
    vers: u32,
    client: ClientInfo,
) -> Result<(), EngineError> {
    let pool = engine.pool_for(service_name, client)?;
    let compiled = pool.compiled();
    let eng = Arc::clone(engine);
    engine.counters().connections.inc();
    net.register_service(host, move |stream| {
        let records = sunrpc::split_records(stream).map_err(|e| e.to_string())?;
        // Phase 1: decode and submit everything — all XIDs go outstanding
        // before any reply is awaited, so one batch spreads across workers.
        let mut outcomes: Vec<(u32, Outcome)> = Vec::with_capacity(records.len());
        for record in records {
            let (hdr, tag, args) = match sunrpc::decode_call_tagged(record) {
                Ok(x) => x,
                Err(e) => return Err(format!("undecodable call in stream: {e}")),
            };
            let tag = tag.map(|(binding, seq, tenant)| {
                CallTag::for_tenant(binding, seq, flexrpc_runtime::TenantId(tenant))
            });
            outcomes
                .push((hdr.xid, submit_one(&eng, &pool, &compiled, hdr, tag, args, (prog, vers))));
        }
        // Phase 2: await and re-frame. Waiting in submit order is fine —
        // execution already overlapped; XIDs let the client reorder freely.
        // Every reply is gather-encoded straight into the one outgoing
        // stream: the marshalled body slice is spliced behind its record
        // mark in place, with no per-reply staging frame, and the whole
        // batch leaves as a single write.
        let mut out = Vec::new();
        for (xid, outcome) in outcomes {
            match outcome {
                Outcome::Immediate(stat) => {
                    sunrpc::encode_reply_gather_into(&mut out, xid, stat, &[]);
                }
                Outcome::Pending(ticket) => match ticket.wait() {
                    Ok(reply) => sunrpc::encode_reply_gather_into(
                        &mut out,
                        xid,
                        AcceptStat::Success,
                        &[&reply.body],
                    ),
                    Err(flexrpc_runtime::RpcError::Marshal(_)) => sunrpc::encode_reply_gather_into(
                        &mut out,
                        xid,
                        AcceptStat::GarbageArgs,
                        &[],
                    ),
                    // Policy failures get a real reply (SYSTEM_ERR), not a
                    // dead connection: the client can tell "server refused
                    // under policy" from "server is broken" and back off.
                    Err(
                        flexrpc_runtime::RpcError::DeadlineExceeded
                        | flexrpc_runtime::RpcError::Overloaded
                        | flexrpc_runtime::RpcError::Cancelled,
                    ) => {
                        sunrpc::encode_reply_gather_into(&mut out, xid, AcceptStat::SystemErr, &[])
                    }
                    Err(e) => return Err(format!("dispatch failed: {e}")),
                },
            }
        }
        Ok(out)
    })?;
    Ok(())
}

enum Outcome {
    /// Rejected before dispatch (wrong program/version/procedure).
    Immediate(AcceptStat),
    /// Dispatched into the worker pool.
    Pending(CallTicket),
}

fn submit_one(
    engine: &Arc<Engine>,
    pool: &Arc<crate::engine::ReplicaPool>,
    compiled: &flexrpc_core::program::CompiledInterface,
    hdr: CallHeader,
    tag: Option<CallTag>,
    args: &[u8],
    (prog, vers): (u32, u32),
) -> Outcome {
    if hdr.prog != prog {
        return Outcome::Immediate(AcceptStat::ProgUnavail);
    }
    if hdr.vers != vers {
        return Outcome::Immediate(AcceptStat::ProgMismatch);
    }
    let op_index = compiled
        .ops
        .iter()
        .position(|o| o.opnum == Some(hdr.proc))
        .or_else(|| ((hdr.proc as usize) < compiled.ops.len()).then_some(hdr.proc as usize));
    let Some(op_index) = op_index else {
        return Outcome::Immediate(AcceptStat::ProcUnavail);
    };
    match engine.submit_to_pool(pool, op_index, args, &[], tag) {
        Ok(ticket) => Outcome::Pending(ticket),
        // Shed, shutdown, induced failures, and an open breaker are all
        // SYSTEM_ERR (RFC 1057's "server is having trouble"), distinct from
        // the dispatch-table rejections above.
        Err(
            EngineError::Overloaded
            | EngineError::Closed
            | EngineError::Dropped
            | EngineError::Disconnected(_)
            | EngineError::Unhealthy,
        ) => Outcome::Immediate(AcceptStat::SystemErr),
        Err(_) => Outcome::Immediate(AcceptStat::ProcUnavail),
    }
}

/// A pipelining Sun RPC client: queue several calls, flush them as one
/// record stream, get every reply back matched by XID. An optional
/// [`RetryPolicy`] resends a batch lost in transit, with the idempotency
/// license checked per-operation through [`SunRpcPipeline::submit_op`].
pub struct SunRpcPipeline {
    net: Arc<SimNet>,
    from: HostId,
    to: HostId,
    prog: u32,
    vers: u32,
    next_xid: u32,
    /// Calls queued since the last flush, kept as (header, argument
    /// bytes) pairs — encoding is deferred so the whole batch can be
    /// gathered into one record stream at flush time.
    pending: Vec<(CallHeader, Vec<u8>)>,
    retry: Option<RetryPolicy>,
    trace: Option<SharedCallTrace>,
}

impl SunRpcPipeline {
    /// Creates a pipeline to `(prog, vers)` served on `to`.
    pub fn new(net: Arc<SimNet>, from: HostId, to: HostId, prog: u32, vers: u32) -> SunRpcPipeline {
        SunRpcPipeline {
            net,
            from,
            to,
            prog,
            vers,
            next_xid: 1,
            pending: Vec::new(),
            retry: None,
            trace: None,
        }
    }

    /// Attaches a span trace on the net's sim clock: each flush records a
    /// [`Stage::Transport`] span (detail = batch size in bytes) and each
    /// transient resend a [`Stage::Retry`] span covering its backoff
    /// (detail = attempt number).
    pub fn traced(mut self, trace: SharedCallTrace) -> SunRpcPipeline {
        self.trace = Some(trace);
        self
    }

    /// The attached span trace, if any.
    pub fn trace(&self) -> Option<&SharedCallTrace> {
        self.trace.as_ref()
    }

    /// Attaches a retry policy: a flush whose transmission fails
    /// transiently (e.g. the batch dropped in transit) is resent after the
    /// policy's backoff, spent on the net's sim clock.
    ///
    /// Retrying resends *every* call in the batch, so calls queued through
    /// [`SunRpcPipeline::submit_op`] are checked against their op's
    /// `[idempotent]` declaration; raw [`SunRpcPipeline::submit`] bypasses
    /// the check and the caller vouches for safety.
    pub fn retry(mut self, policy: RetryPolicy) -> SunRpcPipeline {
        self.retry = Some(policy);
        self
    }

    /// Queues one call locally, returning its XID. Nothing is sent until
    /// [`SunRpcPipeline::flush`].
    pub fn submit(&mut self, proc: u32, args: &[u8]) -> u32 {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        let hdr = CallHeader { xid, prog: self.prog, vers: self.vers, proc };
        self.pending.push((hdr, args.to_vec()));
        xid
    }

    /// Queues a call by compiled operation, enforcing the idempotency
    /// gate: with a retry policy attached, an op that did not declare
    /// `[idempotent]` is refused here — before anything is sent — with
    /// [`ErrorKind::ContractViolation`](flexrpc_runtime::ErrorKind).
    pub fn submit_op(
        &mut self,
        op: &CompiledOp,
        args: &[u8],
    ) -> Result<u32, flexrpc_runtime::Error> {
        if let Some(policy) = &self.retry {
            policy.check_op(op)?;
        }
        let proc = op.opnum.unwrap_or(op.index as u32);
        Ok(self.submit(proc, args))
    }

    /// Calls currently queued.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Ships the queued batch as one stream and returns each call's
    /// `(status, results)` in XID submit order — regardless of the order
    /// the server's workers completed them in.
    ///
    /// Adaptive batching, nagle-free: nothing is delayed waiting for more
    /// calls — whatever is queued *right now* is coalesced. Every pending
    /// record is gather-encoded into one stream here (no per-call frame
    /// vector) and the stream goes out as a single write.
    pub fn flush(&mut self) -> flexrpc_net::Result<Vec<(AcceptStat, Vec<u8>)>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        let pending = std::mem::take(&mut self.pending);
        let mut batch = Vec::new();
        let mut expected = Vec::with_capacity(pending.len());
        for (hdr, args) in &pending {
            sunrpc::encode_call_tagged_into(&mut batch, *hdr, None, &[args]);
            expected.push(hdr.xid);
        }
        let max_attempts = self.retry.as_ref().map_or(1, |p| p.max_attempts());
        let flush_call = self.trace.as_ref().map(|t| t.begin_call());
        let mut attempt = 1u32;
        let mut reply_stream = Vec::new();
        loop {
            reply_stream.clear();
            let send_start = self.trace.as_ref().map_or(0, |t| t.now_ns());
            let outcome = self.net.call(self.from, self.to, &batch, &mut reply_stream);
            if let (Some(t), Some(call)) = (&self.trace, flush_call) {
                t.record(call, Stage::Transport, send_start, t.now_ns(), batch.len() as u64);
            }
            match outcome {
                Ok(()) => break,
                Err(e) => {
                    let transient = matches!(
                        e,
                        NetError::Dropped | NetError::NoService(_) | NetError::ServiceFailure(_)
                    );
                    if !transient || attempt >= max_attempts {
                        return Err(e);
                    }
                    let policy = self.retry.as_ref().expect("attempts > 1 implies a policy");
                    let backoff_start = self.trace.as_ref().map_or(0, |t| t.now_ns());
                    self.net.clock().advance_ns(policy.backoff_ns(attempt));
                    if let (Some(t), Some(call)) = (&self.trace, flush_call) {
                        t.record(call, Stage::Retry, backoff_start, t.now_ns(), attempt as u64);
                    }
                    attempt += 1;
                }
            }
        }
        let records = sunrpc::split_records(&reply_stream)?;
        if records.len() != expected.len() {
            return Err(NetError::ServiceFailure(format!(
                "pipeline: {} calls sent, {} replies received",
                expected.len(),
                records.len()
            )));
        }
        // Index replies by XID, then return them in submit order.
        let mut by_xid: std::collections::HashMap<u32, (AcceptStat, Vec<u8>)> = records
            .iter()
            .map(|rec| {
                let (xid, stat, results) = sunrpc::decode_reply(rec)?;
                Ok((xid, (stat, results.to_vec())))
            })
            .collect::<flexrpc_net::Result<_>>()?;
        expected
            .into_iter()
            .map(|xid| {
                by_xid
                    .remove(&xid)
                    .ok_or_else(|| NetError::ServiceFailure(format!("no reply for xid {xid}")))
            })
            .collect()
    }
}

impl std::fmt::Debug for SunRpcPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SunRpcPipeline({} outstanding)", self.pending.len())
    }
}
