//! The shared program cache: one compilation per *combination signature*.
//!
//! The paper's runtime compiles a stub program for each combination of
//! wire contract, the two endpoints' presentations, and the trust they
//! negotiate. A server facing many clients would recompile the same
//! combination once per connection; the engine instead keys compiled
//! [`CompiledInterface`]s by [`ProgramKey`] so every later connection with
//! the same combination reuses the `Arc`'d program. Hit/miss counters make
//! the reuse observable — the acceptance tests assert
//! `compilations < connections`.
//!
//! The cache is **sharded and read-mostly**: keys hash to one of
//! [`SHARD_COUNT`] shards, and each shard publishes its map as an
//! `Arc<HashMap>` snapshot behind an `RwLock` that is only ever held long
//! enough to clone or swap the `Arc`. A hit therefore costs one `try_read`
//! (uncontended in steady state — contention is counted per shard, not
//! suffered silently), one `Arc` clone, and a hash lookup with no lock
//! held; compilation serializes per shard on a separate publish mutex and
//! installs a clone-on-publish copy of the map, so readers never wait
//! behind a compile.

use flexrpc_core::present::Trust;
use flexrpc_core::program::CompiledInterface;
use flexrpc_marshal::WireFormat;
use flexrpc_trace::{Counter, MetricsRegistry};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent shards. A small power of two: the key space is
/// tiny (one entry per live combination), so this bounds contention, not
/// capacity.
pub const SHARD_COUNT: usize = 8;

/// The combination a compiled program is valid for. Two connections map to
/// the same program exactly when every component matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramKey {
    /// The wire contract (signature hash) both endpoints share.
    pub signature: u64,
    /// Fingerprint of the server-side presentation.
    pub server_presentation: u64,
    /// Fingerprint of the client-side presentation.
    pub client_presentation: u64,
    /// Trust the server declares in its clients.
    pub server_trust: Trust,
    /// Trust the client declares in the server.
    pub client_trust: Trust,
    /// Negotiated transfer syntax.
    pub format: WireFormat,
}

/// Per-shard counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups this shard satisfied from its snapshot.
    pub hits: u64,
    /// Compilations this shard performed.
    pub misses: u64,
    /// Times the lock-free `try_read` lost to a concurrent publish and had
    /// to fall back to a blocking read.
    pub contended: u64,
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Lookups satisfied by an existing compilation.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Programs currently cached (== misses while nothing is evicted).
    pub programs: usize,
    /// Per-shard breakdown of the totals above.
    pub shards: [ShardStats; SHARD_COUNT],
    /// Threaded-code ops across all cached stub programs, before fusion.
    pub source_ops: u64,
    /// Interpreter dispatches across the same programs after fusion
    /// (`== source_ops` when specialization is off).
    pub fused_ops: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache shard: a published map snapshot plus its counters.
#[derive(Default)]
struct Shard {
    /// The read-mostly map. Readers clone the `Arc` under a momentary
    /// `try_read`; publishers swap in a rebuilt map under a momentary
    /// `write`. Nobody holds this lock across a lookup or a compile.
    map: RwLock<Arc<HashMap<ProgramKey, Arc<CompiledInterface>>>>,
    /// Serializes compilations for this shard's keys so a racing first
    /// request still compiles exactly once.
    publish: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
}

impl Shard {
    /// Clones the current map snapshot; the lock is released before the
    /// caller looks anything up. `rollup` is the cache-wide contention
    /// counter, bumped in step with this shard's.
    fn snapshot(&self, rollup: &Counter) -> Arc<HashMap<ProgramKey, Arc<CompiledInterface>>> {
        match self.map.try_read() {
            Some(g) => Arc::clone(&g),
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                rollup.inc();
                Arc::clone(&self.map.read())
            }
        }
    }
}

/// A concurrent map from combination keys to shared compilations.
#[derive(Default)]
pub struct ProgramCache {
    shards: [Shard; SHARD_COUNT],
    /// Cumulative op counts over every program ever compiled here, for the
    /// specialization report (before/after fusion).
    source_ops: AtomicU64,
    fused_ops: AtomicU64,
    /// Registry-adoptable rollups of the per-shard counters, bumped in
    /// step with them (`cache.hit` / `cache.miss` / `cache.contended`).
    hits_total: Counter,
    misses_total: Counter,
    contended_total: Counter,
}

fn shard_index(key: &ProgramKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARD_COUNT
}

/// Sums threaded ops and post-fusion dispatches over all four programs of
/// every procedure in a compiled interface.
fn op_totals(ci: &CompiledInterface) -> (u64, u64) {
    let mut source = 0u64;
    let mut fused = 0u64;
    for op in &ci.ops {
        for p in
            [&op.request_marshal, &op.request_unmarshal, &op.reply_marshal, &op.reply_unmarshal]
        {
            source += p.ops.len() as u64;
            fused += p.dispatch_count() as u64;
        }
    }
    (source, fused)
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the program for `key`, compiling through `compile` only on
    /// the first request for this combination. Concurrent first requests
    /// for the same shard serialize on its publish mutex so the
    /// combination still compiles exactly once; hits never touch a
    /// write-capable lock.
    pub fn get_or_compile<E>(
        &self,
        key: ProgramKey,
        compile: impl FnOnce() -> Result<CompiledInterface, E>,
    ) -> Result<Arc<CompiledInterface>, E> {
        let shard = &self.shards[shard_index(&key)];
        if let Some(found) = shard.snapshot(&self.contended_total).get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.hits_total.inc();
            return Ok(Arc::clone(found));
        }
        let _publish = shard.publish.lock();
        // Double-check: another thread may have published while we waited.
        if let Some(found) = shard.snapshot(&self.contended_total).get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.hits_total.inc();
            return Ok(Arc::clone(found));
        }
        let compiled = Arc::new(compile()?);
        let (source, fused) = op_totals(&compiled);
        self.source_ops.fetch_add(source, Ordering::Relaxed);
        self.fused_ops.fetch_add(fused, Ordering::Relaxed);
        // Clone-on-publish: rebuild outside the lock, swap under it.
        let mut next = HashMap::clone(&shard.snapshot(&self.contended_total));
        next.insert(key, Arc::clone(&compiled));
        *shard.map.write() = Arc::new(next);
        shard.misses.fetch_add(1, Ordering::Relaxed);
        self.misses_total.inc();
        Ok(compiled)
    }

    /// Looks up without compiling (and without counting hits or misses).
    pub fn get(&self, key: &ProgramKey) -> Option<Arc<CompiledInterface>> {
        let shard = &self.shards[shard_index(key)];
        shard.snapshot(&self.contended_total).get(key).map(Arc::clone)
    }

    /// Adopts the cache-wide rollup counters into `registry` as
    /// `cache.hit`, `cache.miss`, and `cache.contended`.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("cache.hit", &self.hits_total);
        registry.adopt_counter("cache.miss", &self.misses_total);
        registry.adopt_counter("cache.contended", &self.contended_total);
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats {
            hits: 0,
            misses: 0,
            programs: 0,
            shards: [ShardStats::default(); SHARD_COUNT],
            source_ops: self.source_ops.load(Ordering::Relaxed),
            fused_ops: self.fused_ops.load(Ordering::Relaxed),
        };
        for (shard, out) in self.shards.iter().zip(s.shards.iter_mut()) {
            out.hits = shard.hits.load(Ordering::Relaxed);
            out.misses = shard.misses.load(Ordering::Relaxed);
            out.contended = shard.contended.load(Ordering::Relaxed);
            s.hits += out.hits;
            s.misses += out.misses;
            s.programs += shard.snapshot(&self.contended_total).len();
        }
        s
    }

    /// Total compilations performed (one per distinct combination).
    pub fn compilations(&self) -> u64 {
        self.shards.iter().map(|s| s.misses.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(f, "ProgramCache({} programs, {} hits, {} misses)", s.programs, s.hits, s.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrpc_core::ir::fileio_example;
    use flexrpc_core::present::InterfacePresentation;

    fn key(client_fp: u64, trust: Trust) -> ProgramKey {
        ProgramKey {
            signature: 0xABCD,
            server_presentation: 1,
            client_presentation: client_fp,
            server_trust: Trust::None,
            client_trust: trust,
            format: WireFormat::Cdr,
        }
    }

    fn compile_fileio() -> Result<CompiledInterface, flexrpc_core::CoreError> {
        let m = fileio_example();
        let iface = m.interface("FileIO").unwrap();
        let pres = InterfacePresentation::default_for(&m, iface)?;
        CompiledInterface::compile(&m, iface, &pres)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ProgramCache::new();
        let a = cache.get_or_compile(key(7, Trust::None), compile_fileio).unwrap();
        let b = cache.get_or_compile(key(7, Trust::None), compile_fileio).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same combination shares one program");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.programs), (1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn distinct_combinations_compile_separately() {
        let cache = ProgramCache::new();
        cache.get_or_compile(key(7, Trust::None), compile_fileio).unwrap();
        cache.get_or_compile(key(8, Trust::None), compile_fileio).unwrap();
        cache.get_or_compile(key(7, Trust::Leaky), compile_fileio).unwrap();
        assert_eq!(cache.compilations(), 3);
    }

    #[test]
    fn compile_failure_not_cached() {
        let cache = ProgramCache::new();
        let r: Result<_, String> = cache.get_or_compile(key(1, Trust::None), || Err("nope".into()));
        assert!(r.is_err());
        assert_eq!(cache.stats().programs, 0);
        // A later successful compile for the same key still works.
        cache.get_or_compile(key(1, Trust::None), compile_fileio).unwrap();
        assert_eq!(cache.stats().programs, 1);
    }

    #[test]
    fn concurrent_first_requests_compile_once() {
        let cache = Arc::new(ProgramCache::new());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compile(key(42, Trust::None), compile_fileio).unwrap()
                })
            })
            .collect();
        let programs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(cache.compilations(), 1, "racing threads share one compile");
        assert!(programs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }

    #[test]
    fn shard_totals_match_rollup() {
        let cache = ProgramCache::new();
        for fp in 0..16 {
            cache.get_or_compile(key(fp, Trust::None), compile_fileio).unwrap();
            cache.get_or_compile(key(fp, Trust::None), compile_fileio).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.programs), (16, 16, 16));
        assert_eq!(s.shards.iter().map(|p| p.hits).sum::<u64>(), s.hits);
        assert_eq!(s.shards.iter().map(|p| p.misses).sum::<u64>(), s.misses);
        assert!(
            s.shards.iter().filter(|p| p.misses > 0).count() > 1,
            "distinct keys spread across shards"
        );
    }

    #[test]
    fn op_counts_show_fusion() {
        let cache = ProgramCache::new();
        cache.get_or_compile(key(1, Trust::None), compile_fileio).unwrap();
        let s = cache.stats();
        assert!(s.source_ops > 0);
        assert!(
            s.fused_ops < s.source_ops,
            "cached programs are fused: {} dispatches from {} ops",
            s.fused_ops,
            s.source_ops
        );
    }

    #[test]
    fn hit_path_takes_no_write_lock() {
        // A reader holding the shard snapshot read lock must not block a
        // concurrent hit — hits only ever try_read/read, never write.
        let cache = Arc::new(ProgramCache::new());
        cache.get_or_compile(key(5, Trust::None), compile_fileio).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert!(cache.get(&key(5, Trust::None)).is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1);
    }
}
