//! The shared program cache: one compilation per *combination signature*.
//!
//! The paper's runtime compiles a stub program for each combination of
//! wire contract, the two endpoints' presentations, and the trust they
//! negotiate. A server facing many clients would recompile the same
//! combination once per connection; the engine instead keys compiled
//! [`CompiledInterface`]s by [`ProgramKey`] so every later connection with
//! the same combination reuses the `Arc`'d program. Hit/miss counters make
//! the reuse observable — the acceptance tests assert
//! `compilations < connections`.

use flexrpc_core::present::Trust;
use flexrpc_core::program::CompiledInterface;
use flexrpc_marshal::WireFormat;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The combination a compiled program is valid for. Two connections map to
/// the same program exactly when every component matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramKey {
    /// The wire contract (signature hash) both endpoints share.
    pub signature: u64,
    /// Fingerprint of the server-side presentation.
    pub server_presentation: u64,
    /// Fingerprint of the client-side presentation.
    pub client_presentation: u64,
    /// Trust the server declares in its clients.
    pub server_trust: Trust,
    /// Trust the client declares in the server.
    pub client_trust: Trust,
    /// Negotiated transfer syntax.
    pub format: WireFormat,
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Lookups satisfied by an existing compilation.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Programs currently cached (== misses while nothing is evicted).
    pub programs: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent map from combination keys to shared compilations.
#[derive(Default)]
pub struct ProgramCache {
    programs: RwLock<HashMap<ProgramKey, Arc<CompiledInterface>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the program for `key`, compiling through `compile` only on
    /// the first request for this combination. Concurrent first requests
    /// serialize on the write lock so the combination still compiles
    /// exactly once.
    pub fn get_or_compile<E>(
        &self,
        key: ProgramKey,
        compile: impl FnOnce() -> Result<CompiledInterface, E>,
    ) -> Result<Arc<CompiledInterface>, E> {
        if let Some(found) = self.programs.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        let mut programs = self.programs.write();
        // Double-check: another thread may have compiled while we waited.
        if let Some(found) = programs.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        let compiled = Arc::new(compile()?);
        programs.insert(key, Arc::clone(&compiled));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(compiled)
    }

    /// Looks up without compiling.
    pub fn get(&self, key: &ProgramKey) -> Option<Arc<CompiledInterface>> {
        self.programs.read().get(key).map(Arc::clone)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            programs: self.programs.read().len(),
        }
    }

    /// Total compilations performed (one per distinct combination).
    pub fn compilations(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(f, "ProgramCache({} programs, {} hits, {} misses)", s.programs, s.hits, s.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexrpc_core::ir::fileio_example;
    use flexrpc_core::present::InterfacePresentation;

    fn key(client_fp: u64, trust: Trust) -> ProgramKey {
        ProgramKey {
            signature: 0xABCD,
            server_presentation: 1,
            client_presentation: client_fp,
            server_trust: Trust::None,
            client_trust: trust,
            format: WireFormat::Cdr,
        }
    }

    fn compile_fileio() -> Result<CompiledInterface, flexrpc_core::CoreError> {
        let m = fileio_example();
        let iface = m.interface("FileIO").unwrap();
        let pres = InterfacePresentation::default_for(&m, iface)?;
        CompiledInterface::compile(&m, iface, &pres)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ProgramCache::new();
        let a = cache.get_or_compile(key(7, Trust::None), compile_fileio).unwrap();
        let b = cache.get_or_compile(key(7, Trust::None), compile_fileio).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same combination shares one program");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.programs), (1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn distinct_combinations_compile_separately() {
        let cache = ProgramCache::new();
        cache.get_or_compile(key(7, Trust::None), compile_fileio).unwrap();
        cache.get_or_compile(key(8, Trust::None), compile_fileio).unwrap();
        cache.get_or_compile(key(7, Trust::Leaky), compile_fileio).unwrap();
        assert_eq!(cache.compilations(), 3);
    }

    #[test]
    fn compile_failure_not_cached() {
        let cache = ProgramCache::new();
        let r: Result<_, String> = cache.get_or_compile(key(1, Trust::None), || Err("nope".into()));
        assert!(r.is_err());
        assert_eq!(cache.stats().programs, 0);
        // A later successful compile for the same key still works.
        cache.get_or_compile(key(1, Trust::None), compile_fileio).unwrap();
        assert_eq!(cache.stats().programs, 1);
    }

    #[test]
    fn concurrent_first_requests_compile_once() {
        let cache = Arc::new(ProgramCache::new());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compile(key(42, Trust::None), compile_fileio).unwrap()
                })
            })
            .collect();
        let programs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(cache.compilations(), 1, "racing threads share one compile");
        assert!(programs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }
}
