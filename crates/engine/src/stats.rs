//! Engine-level counters and point-in-time snapshots.

use crate::cache::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters, updated by acceptors and workers.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Calls fully served (dispatched and replied).
    pub calls_served: AtomicU64,
    /// Request bytes copied into the engine.
    pub bytes_in: AtomicU64,
    /// Reply bytes copied out of the engine.
    pub bytes_out: AtomicU64,
    /// Jobs currently queued or executing.
    pub in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    pub peak_in_flight: AtomicU64,
    /// Connections accepted (same-domain and network exposures).
    pub connections: AtomicU64,
    /// Dispatches that returned an error to the client.
    pub dispatch_errors: AtomicU64,
}

impl EngineCounters {
    pub(crate) fn job_enqueued(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn job_finished(&self, bytes_in: usize, bytes_out: usize, ok: bool) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.calls_served.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in as u64, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out as u64, Ordering::Relaxed);
        if !ok {
            self.dispatch_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A consistent-enough snapshot of one engine's state (individual counters
/// are read atomically; the set is racy, as stats snapshots are).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStatsSnapshot {
    /// Calls fully served.
    pub calls_served: u64,
    /// Request bytes copied in.
    pub bytes_in: u64,
    /// Reply bytes copied out.
    pub bytes_out: u64,
    /// Jobs queued or executing right now.
    pub in_flight: u64,
    /// High-water mark of in-flight jobs.
    pub peak_in_flight: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Connections accepted so far.
    pub connections: u64,
    /// Dispatches that failed.
    pub dispatch_errors: u64,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Program-cache counters.
    pub cache: CacheStats,
}

impl EngineStatsSnapshot {
    /// Cache hit rate, for report tables.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}
