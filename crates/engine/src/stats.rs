//! Engine-level counters and point-in-time snapshots.
//!
//! The counters are [`flexrpc_trace::Counter`] handles — shared atomic
//! cells that an engine's [`flexrpc_trace::MetricsRegistry`] adopts under
//! the unified `engine.*` names, so `engine.stats()` and a registry
//! snapshot read the very same cells and can never disagree.

use crate::cache::CacheStats;
use flexrpc_runtime::replycache::ReplyCacheStats;
use flexrpc_trace::{Counter, MetricsRegistry, MetricsSnapshot};

/// Live counters, updated by acceptors and workers.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Calls fully served (dispatched and replied).
    pub calls_served: Counter,
    /// Request bytes copied into the engine.
    pub bytes_in: Counter,
    /// Reply bytes copied out of the engine.
    pub bytes_out: Counter,
    /// Jobs currently queued or executing.
    pub in_flight: Counter,
    /// High-water mark of `in_flight`.
    pub peak_in_flight: Counter,
    /// Connections accepted (same-domain and network exposures).
    pub connections: Counter,
    /// Dispatches that returned an error to the client.
    pub dispatch_errors: Counter,
    /// Calls refused at admission (queue above high water).
    pub calls_shed: Counter,
    /// Queued-but-unstarted calls failed by a graceful drain.
    pub calls_cancelled: Counter,
    /// Calls whose deadline passed before a worker could start them.
    pub deadline_expired: Counter,
    /// Jobs an idle shard took from a peer shard's queue.
    pub steals: Counter,
    /// Blocking calls served inline on the caller's thread (LRPC-style
    /// direct dispatch — no queue, no worker handoff).
    pub inline_calls: Counter,
}

impl EngineCounters {
    /// Adopts every counter into `registry` under its `engine.*` name.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("engine.calls_served", &self.calls_served);
        registry.adopt_counter("engine.bytes_in", &self.bytes_in);
        registry.adopt_counter("engine.bytes_out", &self.bytes_out);
        registry.adopt_counter("engine.in_flight", &self.in_flight);
        registry.adopt_counter("engine.peak_in_flight", &self.peak_in_flight);
        registry.adopt_counter("engine.connections", &self.connections);
        registry.adopt_counter("engine.dispatch_errors", &self.dispatch_errors);
        registry.adopt_counter("engine.shed", &self.calls_shed);
        registry.adopt_counter("engine.cancelled", &self.calls_cancelled);
        registry.adopt_counter("engine.expired", &self.deadline_expired);
        registry.adopt_counter("engine.steals", &self.steals);
        registry.adopt_counter("engine.inline_calls", &self.inline_calls);
    }

    pub(crate) fn job_enqueued(&self) {
        let now = self.in_flight.add(1);
        self.peak_in_flight.raise_to(now);
    }

    pub(crate) fn job_finished(&self, bytes_in: usize, bytes_out: usize, ok: bool) {
        self.in_flight.sub(1);
        self.calls_served.inc();
        self.bytes_in.add(bytes_in as u64);
        self.bytes_out.add(bytes_out as u64);
        if !ok {
            self.dispatch_errors.inc();
        }
    }

    /// A call refused at admission — it was never enqueued, so `in_flight`
    /// is untouched.
    pub(crate) fn job_shed(&self) {
        self.calls_shed.inc();
    }

    /// An enqueued job whose deadline expired before dispatch.
    pub(crate) fn job_expired(&self) {
        self.in_flight.sub(1);
        self.deadline_expired.inc();
    }

    /// An enqueued job failed by shutdown before a worker started it.
    pub(crate) fn job_cancelled(&self) {
        self.in_flight.sub(1);
        self.calls_cancelled.inc();
    }
}

/// A consistent-enough snapshot of one engine's state (individual counters
/// are read atomically; the set is racy, as stats snapshots are).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStatsSnapshot {
    /// Calls fully served.
    pub calls_served: u64,
    /// Request bytes copied in.
    pub bytes_in: u64,
    /// Reply bytes copied out.
    pub bytes_out: u64,
    /// Jobs queued or executing right now.
    pub in_flight: u64,
    /// High-water mark of in-flight jobs.
    pub peak_in_flight: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Connections accepted so far.
    pub connections: u64,
    /// Dispatches that failed.
    pub dispatch_errors: u64,
    /// Calls refused at admission (queue above high water).
    pub calls_shed: u64,
    /// Queued-but-unstarted calls failed by a graceful drain.
    pub calls_cancelled: u64,
    /// Calls whose deadline passed before a worker started them.
    pub deadline_expired: u64,
    /// Jobs an idle shard stole from a peer shard.
    pub steals: u64,
    /// Blocking calls served inline on the caller's thread.
    pub inline_calls: u64,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Program-cache counters.
    pub cache: CacheStats,
    /// At-most-once reply-cache counters (all zero when disabled).
    pub reply_cache: ReplyCacheStats,
    /// Circuit-breaker trips (closed/half-open → open).
    pub breaker_trips: u64,
    /// Circuit-breaker probes admitted while half-open.
    pub breaker_probes: u64,
    /// Circuit-breaker recoveries (probe succeeded, breaker closed).
    pub breaker_recoveries: u64,
    /// True while the breaker refuses admission.
    pub breaker_open: bool,
}

impl EngineStatsSnapshot {
    /// Reconstructs the snapshot from the unified registry — the single
    /// source of truth for every counter. Only structural state comes in
    /// as arguments: the instantaneous queue depth and worker count, the
    /// cache's layout-bearing stats (shards, program count), and the
    /// breaker's derived open/closed state, none of which are counters.
    pub fn from_metrics(
        m: &MetricsSnapshot,
        queue_depth: usize,
        workers: usize,
        cache: CacheStats,
        breaker_open: bool,
    ) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            calls_served: m.counter("engine.calls_served"),
            bytes_in: m.counter("engine.bytes_in"),
            bytes_out: m.counter("engine.bytes_out"),
            in_flight: m.counter("engine.in_flight"),
            peak_in_flight: m.counter("engine.peak_in_flight"),
            queue_depth,
            connections: m.counter("engine.connections"),
            dispatch_errors: m.counter("engine.dispatch_errors"),
            calls_shed: m.counter("engine.shed"),
            calls_cancelled: m.counter("engine.cancelled"),
            deadline_expired: m.counter("engine.expired"),
            steals: m.counter("engine.steals"),
            inline_calls: m.counter("engine.inline_calls"),
            workers,
            cache,
            reply_cache: ReplyCacheStats::from_metrics(m),
            breaker_trips: m.counter("breaker.trip"),
            breaker_probes: m.counter("breaker.probe"),
            breaker_recoveries: m.counter("breaker.recovery"),
            breaker_open,
        }
    }

    /// Cache hit rate, for report tables.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Every call the engine was offered, whatever its fate.
    pub fn calls_offered(&self) -> u64 {
        self.calls_served + self.calls_shed + self.calls_cancelled + self.deadline_expired
    }

    /// Fraction of offered calls shed at admission.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.calls_offered();
        if offered == 0 {
            return 0.0;
        }
        self.calls_shed as f64 / offered as f64
    }
}
