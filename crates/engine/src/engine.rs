//! The serving engine: acceptor, worker pool, replica pools, connections.
//!
//! One engine serves many clients across many services with a fixed pool
//! of worker threads. Work arrives as [`Job`]s on a weighted-fair queue —
//! from same-domain clients through [`EngineConnection`] (a
//! [`Transport`](flexrpc_runtime::transport::Transport) impl) or from the
//! simulated network through [`crate::acceptor`] — and every job dispatches
//! into a [`ServerInterface`] *replica* drawn from the pool for that
//! connection's program combination.
//!
//! Replicas exist because dispatch needs `&mut self` (handlers are
//! `FnMut`): rather than serializing all clients on one server lock, each
//! combination keeps up to `workers` interchangeable server instances whose
//! handlers capture the same `Arc`'d application state (file store, pipe
//! ring), all sharing one compiled program from the [`ProgramCache`]. The
//! expensive part — compilation — happens once per combination; the cheap
//! part — a handler table — is replicated for parallelism.
//!
//! Operational policy is owned by a [`ControlPlane`]: every submission
//! carries a [`TenantId`], admission consults that tenant's live
//! [`Policy`] (weight, quota, dwell/deadline overrides), and the queue
//! drains lanes in weighted-fair order. The engine's own [`Policy`]
//! (high-water backstop, default dwell limit, breaker) is swappable live
//! via [`Engine::swap_policy`]; a connection's program combination is
//! swappable live via [`EngineConnection::rebind`].

use crate::breaker::CircuitBreaker;
use crate::cache::{ProgramCache, ProgramKey};
use crate::slot::ReplySlot;
use crate::stats::{EngineCounters, EngineStatsSnapshot};
use flexrpc_clock::{Fault, FaultInjector, SimClock};
use flexrpc_control::{
    ControlPlane, Policy, PolicyHandle, TenantMetrics, WfqGroup, WfqQueue, WfqRefusal,
};
use flexrpc_core::compat::negotiate_call_shape;
use flexrpc_core::fuse::SpecializeOptions;
use flexrpc_core::ir::Module;
use flexrpc_core::present::{CallShape, InterfacePresentation, Trust};
use flexrpc_core::program::{CompiledInterface, CompiledOp};
use flexrpc_marshal::WireFormat;
use flexrpc_runtime::policy::{CallControl, CallOptions, CallTag, TenantId};
use flexrpc_runtime::replycache::ReplyCache;
use flexrpc_runtime::transport::Transport;
use flexrpc_runtime::{RpcError, ServerInterface};
use flexrpc_trace::{Counter, Histogram, MetricsRegistry, SharedCallTrace, Stage};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Errors from engine control operations.
#[derive(Debug)]
pub enum EngineError {
    /// No service registered under that name.
    UnknownService(String),
    /// A service with that name already exists.
    DuplicateService(String),
    /// The engine is shutting down.
    Closed,
    /// The engine shed the call at admission: either the submitting
    /// tenant is over its own quota, or the aggregate backlog is above
    /// the engine policy's high-water backstop.
    Overloaded,
    /// Program compilation failed for a combination.
    Compile(flexrpc_core::CoreError),
    /// The underlying network refused an operation.
    Net(flexrpc_net::NetError),
    /// The submission was lost (induced fault); a resend may succeed.
    Dropped,
    /// The engine's server process crashed (induced fault): the binding is
    /// gone until the scheduled restart.
    Disconnected(String),
    /// The circuit breaker is open: the engine judged itself sick and
    /// refuses admission so clients fail over instead of piling on.
    Unhealthy,
    /// Bind-time call-shape negotiation failed: the two ends declare
    /// incompatible shapes for an operation (e.g. `[oneway]` against
    /// unary, or `[stream]` against `[oneway]`). Fix the presentations;
    /// no retry helps.
    ShapeMismatch(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownService(n) => write!(f, "unknown service `{n}`"),
            EngineError::DuplicateService(n) => write!(f, "service `{n}` already registered"),
            EngineError::Closed => write!(f, "engine is shut down"),
            EngineError::Overloaded => write!(f, "engine overloaded: call shed at admission"),
            EngineError::Compile(e) => write!(f, "program compilation failed: {e}"),
            EngineError::Net(e) => write!(f, "network error: {e}"),
            EngineError::Dropped => write!(f, "submission dropped (induced fault)"),
            EngineError::Disconnected(why) => write!(f, "engine connection lost: {why}"),
            EngineError::Unhealthy => write!(f, "engine circuit breaker open"),
            EngineError::ShapeMismatch(why) => write!(f, "call-shape mismatch: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<flexrpc_net::NetError> for EngineError {
    fn from(e: flexrpc_net::NetError) -> EngineError {
        EngineError::Net(e)
    }
}

/// Engine failures fold into the unified taxonomy: shed at admission is
/// [`Overloaded`](flexrpc_runtime::ErrorKind::Overloaded), shutdown is
/// [`Cancelled`](flexrpc_runtime::ErrorKind::Cancelled), network trouble
/// keeps its layer's classification, and registration/compile problems are
/// fatal (no retry fixes a missing service).
impl From<EngineError> for flexrpc_runtime::Error {
    fn from(e: EngineError) -> flexrpc_runtime::Error {
        use flexrpc_runtime::ErrorKind;
        let kind = match &e {
            EngineError::Overloaded => ErrorKind::Overloaded,
            EngineError::Closed => ErrorKind::Cancelled,
            EngineError::Net(n) => RpcError::Net(n.clone()).kind(),
            EngineError::Dropped => ErrorKind::Retryable,
            // A crashed engine and an open breaker read the same to a
            // supervisor: this binding is gone, fail over.
            EngineError::Disconnected(_) | EngineError::Unhealthy => ErrorKind::Disconnected,
            EngineError::ShapeMismatch(_) => ErrorKind::ContractViolation,
            EngineError::UnknownService(_)
            | EngineError::DuplicateService(_)
            | EngineError::Compile(_) => ErrorKind::Fatal,
        };
        flexrpc_runtime::Error::new(kind, e.to_string())
    }
}

/// What a connecting client declares about itself; with the service's own
/// half it selects the program combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientInfo {
    /// Fingerprint of the client's presentation
    /// ([`InterfacePresentation::fingerprint`]).
    pub presentation: u64,
    /// Trust the client declares in the server.
    pub trust: Trust,
}

impl ClientInfo {
    /// Client info for a presentation value.
    pub fn of(pres: &InterfacePresentation) -> ClientInfo {
        ClientInfo { presentation: pres.fingerprint(), trust: pres.trust }
    }
}

/// A finished call: reply body plus translated port rights.
#[derive(Debug, Default)]
pub struct Reply {
    /// Marshalled reply bytes.
    pub body: Vec<u8>,
    /// Out-of-band port rights.
    pub rights: Vec<u32>,
}

/// The engine's one-shot completion slot: the lock-free
/// [`ReplySlot`](crate::slot::ReplySlot) carrying a call's result.
type Completion = ReplySlot<flexrpc_runtime::Result<Reply>>;

/// An in-flight call handle ([`EngineConnection::submit`]); redeem with
/// [`CallTicket::wait`] or [`CallTicket::wait_until`]. Dropping it abandons
/// the reply (the worker still runs the call).
#[must_use = "a submitted call completes, but its reply is lost unless waited on"]
pub struct CallTicket {
    slot: Arc<Completion>,
    clock: Arc<SimClock>,
}

impl CallTicket {
    /// Blocks until the reply is ready. The warm wait is lock-free: one
    /// atomic load when the worker already published.
    pub fn wait(self) -> flexrpc_runtime::Result<Reply> {
        self.slot.wait()
    }

    /// Blocks until the reply is ready or the engine's sim clock passes
    /// `deadline_ns` — the ticket-wait blocking point of deadline
    /// enforcement: even a call stuck *executing* in a stalled handler
    /// returns [`RpcError::DeadlineExceeded`] once the clock passes. Sim
    /// time advances on other threads, so the park is sliced and the
    /// virtual clock re-checked on each wake.
    pub fn wait_until(self, deadline_ns: Option<u64>) -> flexrpc_runtime::Result<Reply> {
        match deadline_ns {
            None => self.slot.wait(),
            Some(d) => self
                .slot
                .wait_deadline(|| self.clock.expired(d))
                .unwrap_or(Err(RpcError::DeadlineExceeded)),
        }
    }
}

/// Wakes parked workers when work arrives anywhere in the shard set.
///
/// Producers bump a sequence under the mutex and `notify_one` — a single
/// job wakes a single worker, not the herd. Workers read the epoch
/// *before* scanning the shards and park only if it has not moved since,
/// so a push that lands mid-scan can never be missed.
struct SubmitSignal {
    seq: Mutex<u64>,
    ready: Condvar,
}

impl SubmitSignal {
    fn new() -> SubmitSignal {
        SubmitSignal { seq: Mutex::new(0), ready: Condvar::new() }
    }

    fn epoch(&self) -> u64 {
        *self.seq.lock()
    }

    /// One unit of work arrived: wake exactly one parked worker.
    fn bump(&self) {
        *self.seq.lock() += 1;
        self.ready.notify_one();
    }

    /// Shutdown: every parked worker must wake to observe the close.
    fn bump_all(&self) {
        *self.seq.lock() += 1;
        self.ready.notify_all();
    }

    /// Parks until the epoch moves past `seen`.
    fn wait_past(&self, seen: u64) {
        let mut seq = self.seq.lock();
        while *seq == seen {
            self.ready.wait(&mut seq);
        }
    }
}

/// A unit of work: one dispatch against one replica pool.
struct Job {
    pool: Arc<ReplicaPool>,
    op_index: usize,
    request: Vec<u8>,
    rights: Vec<u32>,
    slot: Arc<Completion>,
    /// Absolute sim-clock deadline: the tighter of the caller's deadline
    /// and the effective queue-dwell limit, fixed at admission.
    deadline_ns: Option<u64>,
    /// At-most-once identity, consulted against the engine's reply cache.
    tag: Option<CallTag>,
    /// The tenant this call was admitted under (per-tenant accounting).
    tenant: TenantId,
    /// The tenant's metric cells, resolved once at admission so the
    /// worker never touches the control plane's maps.
    tenant_metrics: Arc<TenantMetrics>,
    /// Induced `Close` fault: execute (and cache) normally, then lose the
    /// reply — the submitter sees a disconnect.
    close_after: bool,
    /// Sim time the job entered the queue (dwell accounting).
    enqueue_ns: u64,
    /// Span trace of the submitting connection, if it asked for one: the
    /// worker records the Enqueue (queue dwell) and Dispatch spans of this
    /// logical call into it.
    trace: Option<(SharedCallTrace, u64)>,
}

/// The outcome of the shared admission preamble ([`Engine::admit`]):
/// everything both the queue path and the inline path need to proceed.
struct Admission {
    tenant: TenantId,
    tenant_metrics: Arc<TenantMetrics>,
    weight: u32,
    quota: Option<usize>,
    high_water: Option<usize>,
    /// The effective absolute deadline: caller's, tenant default, and
    /// dwell bound reconciled.
    deadline_ns: Option<u64>,
    close_after: bool,
    duplicate: bool,
    /// Sim time at admission (post any induced delay).
    now: u64,
}

/// Interchangeable `ServerInterface` instances for one program combination.
///
/// All replicas share one compiled program and capture the same `Arc`'d
/// application state; any worker may use any free replica.
pub(crate) struct ReplicaPool {
    compiled: Arc<CompiledInterface>,
    replicas: Mutex<Vec<ServerInterface>>,
    freed: Condvar,
}

impl ReplicaPool {
    fn acquire(&self) -> ServerInterface {
        let mut replicas = self.replicas.lock();
        loop {
            if let Some(r) = replicas.pop() {
                return r;
            }
            // More workers than replicas should not happen (pools are sized
            // to the worker count), but waiting keeps it correct if it does.
            self.freed.wait(&mut replicas);
        }
    }

    fn release(&self, replica: ServerInterface) {
        self.replicas.lock().push(replica);
        self.freed.notify_one();
    }

    /// The shared compilation (for building client stubs against it).
    pub(crate) fn compiled(&self) -> Arc<CompiledInterface> {
        Arc::clone(&self.compiled)
    }
}

/// Builds one dispatch replica: register the service's work functions on a
/// server created over the shared compilation. Called once per replica, so
/// it must only capture `Arc`'d shared state.
pub type ReplicaFactory = Box<dyn Fn(&mut ServerInterface) + Send + Sync>;

/// A registered service: its contract, its server-side presentation, and
/// the factory that wires work functions onto replicas.
struct Service {
    module: Module,
    interface: String,
    presentation: InterfacePresentation,
    presentation_fingerprint: u64,
    signature: u64,
    format: WireFormat,
    factory: ReplicaFactory,
    /// Replica pools, one per program combination seen so far.
    pools: RwLock<HashMap<ProgramKey, Arc<ReplicaPool>>>,
}

/// Configures and starts an [`Engine`]: sizing knobs, the engine-level
/// [`Policy`] (aggregate high water, default dwell limit, breaker), and
/// the [`ControlPlane`] that owns per-tenant policy. Obtain via
/// [`Engine::builder`].
#[derive(Debug)]
pub struct EngineBuilder {
    workers: usize,
    queue_depth: usize,
    clock: Option<Arc<SimClock>>,
    specialize: SpecializeOptions,
    amo_ttl: Option<Duration>,
    shared_cache: Option<Arc<ReplyCache>>,
    policy: Policy,
    control: Option<Arc<ControlPlane>>,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder {
            workers: 4,
            queue_depth: 64,
            clock: None,
            specialize: SpecializeOptions::default(),
            amo_ttl: None,
            shared_cache: None,
            policy: Policy::new(),
            control: None,
        }
    }
}

impl EngineBuilder {
    /// Worker threads draining the job queue (default 4, min 1).
    pub fn workers(mut self, n: usize) -> EngineBuilder {
        self.workers = n.max(1);
        self
    }

    /// Job-queue capacity (default 64, min 1); pushes beyond it block
    /// (backpressure) unless the engine policy's high-water mark or a
    /// tenant's quota sheds first.
    pub fn queue_depth(mut self, n: usize) -> EngineBuilder {
        self.queue_depth = n.max(1);
        self
    }

    /// The engine-level [`Policy`]: aggregate admission high water,
    /// default queue-dwell limit, breaker arming. Replaces the former
    /// `high_water` / `dwell_limit` / `breaker` knobs with one composable
    /// value; swap it later, live, with [`Engine::swap_policy`].
    pub fn policy(mut self, policy: Policy) -> EngineBuilder {
        self.policy = policy;
        self
    }

    /// Attaches a shared [`ControlPlane`]: per-tenant policy handles and
    /// metrics are resolved through it at every admission, and the
    /// engine's registry adopts its `control.*` / `tenant.*` cells. A
    /// private plane is created when none is supplied.
    pub fn control(mut self, plane: Arc<ControlPlane>) -> EngineBuilder {
        self.control = Some(plane);
        self
    }

    /// Admission high-water mark.
    #[deprecated(note = "compose `Policy::new().high_water(n)` and pass it to \
                         `EngineBuilder::policy`")]
    pub fn high_water(mut self, n: usize) -> EngineBuilder {
        self.policy = std::mem::take(&mut self.policy).high_water(n.max(1));
        self
    }

    /// Queue-dwell limit.
    #[deprecated(note = "compose `Policy::new().dwell_limit(d)` and pass it to \
                         `EngineBuilder::policy`")]
    pub fn dwell_limit(mut self, d: Duration) -> EngineBuilder {
        self.policy = std::mem::take(&mut self.policy).dwell_limit(d);
        self
    }

    /// Circuit breaker arming.
    #[deprecated(note = "compose `Policy::new().breaker(threshold, cooldown)` and pass it \
                         to `EngineBuilder::policy`")]
    pub fn breaker(mut self, threshold: u32, cooldown: Duration) -> EngineBuilder {
        self.policy = std::mem::take(&mut self.policy).breaker(threshold, cooldown);
        self
    }

    /// Shares a sim clock with the engine (deadlines and dwell limits are
    /// measured on it). A fresh clock is created if none is supplied.
    pub fn clock(mut self, clock: Arc<SimClock>) -> EngineBuilder {
        self.clock = Some(clock);
        self
    }

    /// Specialization passes applied to every program this engine compiles
    /// (default: fusion + presize both on; benches A/B through this).
    pub fn specialize(mut self, opts: SpecializeOptions) -> EngineBuilder {
        self.specialize = opts;
        self
    }

    /// Enables at-most-once semantics: a reply cache with this TTL
    /// (measured on the engine clock) suppresses duplicate executions of
    /// tagged calls. Off by default.
    pub fn at_most_once(mut self, ttl: Duration) -> EngineBuilder {
        self.amo_ttl = Some(ttl);
        self
    }

    /// Enables at-most-once semantics backed by an *existing* reply cache
    /// — the engine-group membership primitive. Every replica engine
    /// built with the same cache suppresses duplicates any member of the
    /// group already executed, which closes the cross-server duplicate
    /// window per-server caches leave open: a reply lost after execution
    /// no longer re-executes when the supervisor fails the replay over to
    /// a different replica. Takes precedence over
    /// [`EngineBuilder::at_most_once`]; the cache's TTL clock should be
    /// the same sim clock the group's engines share.
    pub fn shared_reply_cache(mut self, cache: Arc<ReplyCache>) -> EngineBuilder {
        self.shared_cache = Some(cache);
        self
    }

    /// Starts the engine: spawns one worker per shard, returns the shared
    /// handle.
    pub fn build(self) -> Arc<Engine> {
        let clock = self.clock.unwrap_or_default();
        let reply_cache = self
            .shared_cache
            .or_else(|| self.amo_ttl.map(|ttl| ReplyCache::new(Arc::clone(&clock), ttl)));
        let breaker = self.policy.breaker_config().map(|(t, c)| CircuitBreaker::new(t, c));
        let control = self.control.unwrap_or_else(ControlPlane::new);
        // One shard (queue + worker + stats cell) per worker. Every shard
        // keeps the full `queue_depth` as its blocking bound — a tenant's
        // whole lane lives on its home shard, so its backpressure
        // threshold matches the old single queue exactly — while the
        // shared group makes the policy's `high_water` an aggregate
        // backstop across the set.
        let group = Arc::new(WfqGroup::default());
        let shards: Vec<Arc<WfqQueue<Job>>> = (0..self.workers)
            .map(|_| Arc::new(WfqQueue::with_group(self.queue_depth, Arc::clone(&group))))
            .collect();
        let shard_served: Vec<Counter> = (0..self.workers).map(|_| Counter::detached()).collect();
        let engine = Arc::new(Engine {
            workers_n: self.workers,
            policy: RwLock::new(Arc::new(self.policy)),
            control,
            clock,
            shards,
            group,
            signal: Arc::new(SubmitSignal::new()),
            shard_served,
            workers: Mutex::new(Vec::new()),
            cache: ProgramCache::new(),
            services: RwLock::new(HashMap::new()),
            counters: EngineCounters::default(),
            specialize: self.specialize,
            faults: FaultInjector::new(),
            reply_cache,
            breaker,
            metrics: Arc::new(MetricsRegistry::new()),
            dwell_ns: Histogram::detached(),
            rebinds: Counter::detached(),
        });
        // The registry adopts every live counter the engine owns — its
        // own, the program cache's, the breaker's, the reply cache's, and
        // the control plane's per-tenant cells — so
        // `engine.metrics().snapshot()` and `engine.stats()` read the
        // same cells.
        engine.counters.register_into(&engine.metrics);
        engine.cache.register_metrics(&engine.metrics);
        if let Some(b) = &engine.breaker {
            b.register_metrics(&engine.metrics);
        }
        if let Some(c) = &engine.reply_cache {
            c.register_metrics(&engine.metrics);
        }
        engine.metrics.adopt_histogram("engine.dwell_ns", &engine.dwell_ns);
        engine.metrics.adopt_counter("engine.rebinds", &engine.rebinds);
        for (i, served) in engine.shard_served.iter().enumerate() {
            engine.metrics.adopt_counter(&format!("engine.shard.{i}.served"), served);
        }
        engine.control.attach_registry(&engine.metrics);
        let mut workers = engine.workers.lock();
        for own in 0..engine.workers_n {
            let shards: Vec<Arc<WfqQueue<Job>>> = engine.shards.clone();
            let signal = Arc::clone(&engine.signal);
            let clock = Arc::clone(&engine.clock);
            let served = engine.shard_served[own].clone();
            let eng = Arc::downgrade(&engine);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("flexrpc-worker-{own}"))
                    .spawn(move || loop {
                        // Snapshot the signal epoch *before* scanning: a
                        // push landing mid-scan moves the epoch, so the
                        // park below returns immediately — no missed
                        // wakeup with single-worker notifies.
                        let epoch = signal.epoch();
                        if let Some(job) = shards[own].try_pop() {
                            Engine::run_job(&eng, &clock, job, &served, false);
                            continue;
                        }
                        // Idle: steal the fair head of the longest peer
                        // backlog. `try_pop` takes the peer's min-tag
                        // job — exactly what its own worker would serve
                        // next — so lane FIFO and WFQ order survive.
                        let victim = (0..shards.len())
                            .filter(|k| *k != own)
                            .map(|k| (shards[k].len(), k))
                            .max()
                            .filter(|(len, _)| *len > 0);
                        if let Some((_, k)) = victim {
                            if let Some(job) = shards[k].try_pop() {
                                Engine::run_job(&eng, &clock, job, &served, true);
                                continue;
                            }
                        }
                        if shards[own].is_closed() {
                            return;
                        }
                        signal.wait_past(epoch);
                    })
                    .expect("worker thread spawns"),
            );
        }
        drop(workers);
        engine
    }
}

/// The concurrent serving engine. Create with [`Engine::builder`]; it owns
/// its worker threads until [`Engine::shutdown`] (or drop).
pub struct Engine {
    workers_n: usize,
    /// The engine-level aggregate policy (high water, default dwell
    /// limit). Swappable live; the breaker below was armed from the
    /// policy the engine was built with.
    policy: RwLock<Arc<Policy>>,
    /// The control plane owning per-tenant policy and metrics.
    control: Arc<ControlPlane>,
    clock: Arc<SimClock>,
    /// Per-core engine shards: one weighted-fair queue per worker.
    /// Submission hashes `(tenant, binding)` to a home shard; idle
    /// workers steal whole min-tag jobs from the longest peer queue.
    shards: Vec<Arc<WfqQueue<Job>>>,
    /// Aggregate backlog across the shard set (admission backstop and
    /// the inline fast path's emptiness check).
    group: Arc<WfqGroup>,
    /// Wakes parked workers on submission (one per job, not the herd).
    signal: Arc<SubmitSignal>,
    /// Jobs each worker ran (own and stolen), `engine.shard.<i>.served`.
    shard_served: Vec<Counter>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    cache: ProgramCache,
    services: RwLock<HashMap<String, Arc<Service>>>,
    counters: EngineCounters,
    specialize: SpecializeOptions,
    /// Induced failures at admission (crash/close/drop/delay/duplicate).
    faults: FaultInjector,
    /// At-most-once reply cache, if [`EngineBuilder::at_most_once`] set.
    reply_cache: Option<Arc<ReplyCache>>,
    /// Admission health gate, armed from the build-time policy's
    /// [`Policy::breaker`] config.
    breaker: Option<CircuitBreaker>,
    /// The unified metrics plane: every engine counter, the program cache
    /// rollups, the breaker counters, the reply cache, the control
    /// plane's per-tenant cells, and the dwell histogram under stable
    /// dotted names.
    metrics: Arc<MetricsRegistry>,
    /// Sim-time nanoseconds jobs spend queued before a worker starts them.
    dwell_ns: Histogram,
    /// Live connection rebinds ([`EngineConnection::rebind`]).
    rebinds: Counter,
}

impl Engine {
    /// A builder with default sizing (4 workers, queue depth 64, neutral
    /// policy, private control plane, fresh clock).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The sim clock deadlines and dwell limits are measured on.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The control plane owning per-tenant policy for this engine.
    pub fn control(&self) -> &Arc<ControlPlane> {
        &self.control
    }

    /// The engine-level aggregate policy currently in force.
    pub fn policy(&self) -> Arc<Policy> {
        Arc::clone(&self.policy.read())
    }

    /// Replaces the engine-level policy **live**: every admission after
    /// the store sees the new high water and dwell limit; queued jobs
    /// keep the deadlines they were admitted under. The breaker's arming
    /// is fixed at build time (swapping does not re-arm it). Returns the
    /// policy that was in force.
    pub fn swap_policy(&self, policy: Policy) -> Arc<Policy> {
        let mut slot = self.policy.write();
        std::mem::replace(&mut *slot, Arc::new(policy))
    }

    /// Registers a service. `presentation` is the server's half of every
    /// combination; `factory` wires work functions onto each replica and
    /// must capture only `Arc`'d shared state.
    pub fn register_service(
        &self,
        name: &str,
        module: Module,
        interface: &str,
        presentation: InterfacePresentation,
        format: WireFormat,
        factory: impl Fn(&mut ServerInterface) + Send + Sync + 'static,
    ) -> Result<(), EngineError> {
        let iface = module.interface(interface).ok_or_else(|| {
            EngineError::UnknownService(format!("{name}: no interface {interface}"))
        })?;
        let signature = flexrpc_core::sig::WireSignature::of_interface(&module, iface)
            .map_err(EngineError::Compile)?
            .hash();
        let service = Arc::new(Service {
            module: module.clone(),
            interface: interface.to_owned(),
            presentation_fingerprint: presentation.fingerprint(),
            presentation,
            signature,
            format,
            factory: Box::new(factory),
            pools: RwLock::new(HashMap::new()),
        });
        let mut services = self.services.write();
        if services.contains_key(name) {
            return Err(EngineError::DuplicateService(name.to_owned()));
        }
        services.insert(name.to_owned(), service);
        Ok(())
    }

    fn service(&self, name: &str) -> Result<Arc<Service>, EngineError> {
        self.services
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| EngineError::UnknownService(name.to_owned()))
    }

    /// Resolves (or lazily builds) the replica pool for one combination.
    /// The compilation goes through the shared [`ProgramCache`]: the first
    /// connection with a combination compiles, every later one reuses.
    pub(crate) fn pool_for(
        &self,
        service_name: &str,
        client: ClientInfo,
    ) -> Result<Arc<ReplicaPool>, EngineError> {
        let service = self.service(service_name)?;
        let key = ProgramKey {
            signature: service.signature,
            server_presentation: service.presentation_fingerprint,
            client_presentation: client.presentation,
            server_trust: service.presentation.trust,
            client_trust: client.trust,
            format: service.format,
        };
        if let Some(pool) = service.pools.read().get(&key) {
            // Count the cache hit the fast path would otherwise skip: the
            // combination was looked up and served without compiling.
            self.cache
                .get_or_compile::<flexrpc_core::CoreError>(key, || {
                    unreachable!("pool exists, program is cached")
                })
                .expect("cached");
            return Ok(Arc::clone(pool));
        }
        let mut pools = service.pools.write();
        if let Some(pool) = pools.get(&key) {
            return Ok(Arc::clone(pool));
        }
        let compiled = self
            .cache
            .get_or_compile(key, || {
                let iface = service
                    .module
                    .interface(&service.interface)
                    .expect("validated at registration");
                CompiledInterface::compile_with(
                    &service.module,
                    iface,
                    &service.presentation,
                    self.specialize,
                )
            })
            .map_err(EngineError::Compile)?;
        let replicas: Vec<ServerInterface> = (0..self.workers_n)
            .map(|_| {
                let mut replica =
                    ServerInterface::new_shared(Arc::clone(&compiled), service.format);
                (service.factory)(&mut replica);
                // All replicas share the engine's one reply cache: a retry
                // may land on a different replica than the original.
                if let Some(cache) = &self.reply_cache {
                    replica.set_reply_cache(Arc::clone(cache));
                }
                replica
            })
            .collect();
        let pool = Arc::new(ReplicaPool {
            compiled,
            replicas: Mutex::new(replicas),
            freed: Condvar::new(),
        });
        pools.insert(key, Arc::clone(&pool));
        Ok(pool)
    }

    /// Begins opening a same-domain connection to a service; finish with
    /// [`ConnectBuilder::establish`]. The resulting connection implements
    /// [`Transport`], so a [`ClientStub`](flexrpc_runtime::ClientStub)
    /// plugs straight in.
    pub fn connect(self: &Arc<Self>, service_name: &str) -> ConnectBuilder {
        ConnectBuilder {
            engine: Arc::clone(self),
            service: service_name.to_owned(),
            client: None,
            client_shapes: None,
            options: CallOptions::default(),
            tenant: TenantId::DEFAULT,
        }
    }

    /// Runs one dequeued job on the calling worker thread. `eng` is weak
    /// so worker threads never keep a dropped engine alive; a job caught
    /// mid-teardown is failed like any other unstarted work.
    fn run_job(
        eng: &std::sync::Weak<Engine>,
        clock: &SimClock,
        job: Job,
        served: &Counter,
        stolen: bool,
    ) {
        let Some(engine) = eng.upgrade() else {
            job.slot.fill(Err(RpcError::Cancelled));
            return;
        };
        served.inc();
        if stolen {
            engine.counters.steals.inc();
        }
        // Dwell check: work whose deadline passed while queued is
        // failed, not started — the client has already given up on it.
        if job.deadline_ns.is_some_and(|d| clock.expired(d)) {
            engine.counters.job_expired();
            job.tenant_metrics.expired.inc();
            job.slot.fill(Err(RpcError::DeadlineExceeded));
            return;
        }
        let started_ns = clock.now_ns();
        let dwell = started_ns.saturating_sub(job.enqueue_ns);
        engine.dwell_ns.record(dwell);
        job.tenant_metrics.served.inc();
        job.tenant_metrics.dwell_ns.record(dwell);
        if let Some((t, call)) = &job.trace {
            t.record(*call, Stage::Enqueue, job.enqueue_ns, started_ns, 0);
        }
        let mut replica = job.pool.acquire();
        let mut body = Vec::new();
        let mut rights_out = Vec::new();
        let result = replica
            .dispatch_tagged(
                job.op_index,
                &job.request,
                &job.rights,
                job.tag,
                &mut body,
                &mut rights_out,
            )
            .map(|()| Reply { body, rights: rights_out });
        job.pool.release(replica);
        if let Some((t, call)) = &job.trace {
            t.record(*call, Stage::Dispatch, started_ns, clock.now_ns(), job.op_index as u64);
        }
        engine.counters.job_finished(
            job.request.len(),
            result.as_ref().map_or(0, |r| r.body.len()),
            result.is_ok(),
        );
        if let Some(b) = &engine.breaker {
            b.record(result.is_ok(), clock.now_ns());
        }
        // An induced Close: the call executed (and an at-most-once
        // engine cached its reply), but the reply is lost on the way
        // back.
        if job.close_after {
            job.slot
                .fill(Err(RpcError::Disconnected("engine connection closed before reply".into())));
        } else {
            job.slot.fill(result);
        }
    }

    /// The home shard for a `(tenant, binding)` pair. Single-shard
    /// engines skip the hash; multi-shard ones spread bindings with a
    /// 64-bit finalizer so adjacent ids do not clump.
    fn home_shard(&self, tenant: TenantId, binding: u64) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let mut h = tenant.0 ^ binding.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h % self.shards.len() as u64) as usize
    }

    /// Shared admission preamble for every submission path: the breaker
    /// gate, tenant resolution, the induced-fault plan, and deadline /
    /// dwell-limit resolution. Exactly one fault event is consumed per
    /// offered call, whether it then runs inline or through a queue.
    fn admit(
        &self,
        deadline_ns: Option<u64>,
        tag: Option<CallTag>,
        tenant: TenantId,
    ) -> Result<Admission, EngineError> {
        // Health gate first: an open breaker refuses before any work or
        // fault accounting happens, so clients fail over immediately.
        if let Some(b) = &self.breaker {
            if !b.allow(self.clock.now_ns()) {
                return Err(EngineError::Unhealthy);
            }
        }
        let tenant = tag.map(|t| t.tenant).filter(|t| !t.is_default()).unwrap_or(tenant);
        let tenant_policy = self.control.policy_for(tenant);
        let tenant_metrics = self.control.metrics_for(tenant);
        let engine_policy = self.policy();
        // Induced faults are applied at admission — the point where both
        // the same-domain path and the network acceptor path converge.
        let mut close_after = false;
        let mut duplicate = false;
        match self.faults.next_call_at(self.clock.now_ns()) {
            None => {}
            Some(Fault::Crash { .. }) => {
                return Err(EngineError::Disconnected("engine process crashed".into()));
            }
            Some(Fault::Drop) => return Err(EngineError::Dropped),
            Some(Fault::Delay(ns)) => {
                self.clock.advance_ns(ns);
            }
            Some(Fault::Close) => close_after = true,
            Some(Fault::Duplicate) => duplicate = true,
            // Link-level faults are meaningless at admission (the message
            // already arrived); an engine-plan partition reads as a refused
            // connection, a slow link as a stalled receive.
            Some(Fault::Partition { .. }) => {
                return Err(EngineError::Disconnected("engine link partitioned".into()));
            }
            Some(Fault::SlowLink { factor }) => {
                self.clock.advance_ns(1_000u64.saturating_mul(factor.max(1)));
            }
        }
        let now = self.clock.now_ns();
        // The tenant's dwell limit overrides the engine default; the
        // tenant's deadline default applies only when the caller set none.
        let dwell_limit = tenant_policy.dwell_limit_ns().or(engine_policy.dwell_limit_ns());
        let dwell_deadline = dwell_limit.map(|d| now.saturating_add(d));
        let deadline_ns =
            deadline_ns.or_else(|| tenant_policy.deadline_ns().map(|d| now.saturating_add(d)));
        let deadline_ns = match (deadline_ns, dwell_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Ok(Admission {
            tenant,
            tenant_metrics,
            weight: tenant_policy.weight_value(),
            quota: tenant_policy.quota_value(),
            high_water: engine_policy.high_water_value(),
            deadline_ns,
            close_after,
            duplicate,
            now,
        })
    }

    /// Enqueues one dispatch through per-tenant admission control.
    ///
    /// The effective tenant is the tag's (when it carries a non-default
    /// one — the acceptor path, where tenancy rides the wire credential)
    /// or the connection's. Its live [`Policy`] decides the weighted-fair
    /// share, the quota (excess shed as [`EngineError::Overloaded`],
    /// charged to this tenant), and dwell/deadline overrides; the engine
    /// policy's high water is the aggregate backstop. With a high water
    /// set the push never blocks; without one it blocks at queue capacity
    /// (backpressure), though a quota refusal still returns immediately.
    #[allow(clippy::too_many_arguments)]
    fn enqueue(
        &self,
        pool: &Arc<ReplicaPool>,
        binding: u64,
        op_index: usize,
        request: Vec<u8>,
        rights: Vec<u32>,
        deadline_ns: Option<u64>,
        tag: Option<CallTag>,
        tenant: TenantId,
        trace: Option<&SharedCallTrace>,
    ) -> Result<CallTicket, EngineError> {
        let adm = self.admit(deadline_ns, tag, tenant)?;
        let shard = self.home_shard(adm.tenant, binding);
        self.finish_enqueue(pool, op_index, request, rights, tag, trace, adm, shard)
    }

    /// The queue tail of admission: slot, pre-expired check, the shadow
    /// for a duplicated delivery, and the weighted-fair push to `shard`.
    #[allow(clippy::too_many_arguments)]
    fn finish_enqueue(
        &self,
        pool: &Arc<ReplicaPool>,
        op_index: usize,
        request: Vec<u8>,
        rights: Vec<u32>,
        tag: Option<CallTag>,
        trace: Option<&SharedCallTrace>,
        adm: Admission,
        shard: usize,
    ) -> Result<CallTicket, EngineError> {
        let slot = Arc::new(Completion::new());
        let ticket = CallTicket { slot: Arc::clone(&slot), clock: Arc::clone(&self.clock) };
        // A deadline already in the past never enters the queue; the
        // ticket comes back pre-failed so the caller's wait is uniform.
        if adm.deadline_ns.is_some_and(|d| self.clock.expired(d)) {
            self.counters.deadline_expired.inc();
            adm.tenant_metrics.expired.inc();
            slot.fill(Err(RpcError::DeadlineExceeded));
            return Ok(ticket);
        }
        if adm.duplicate {
            // Duplicated delivery: a shadow copy of the job runs first and
            // its reply is discarded. Under at-most-once the shadow records
            // into the reply cache and the real job replays from it — one
            // handler execution even though the queue saw the call twice.
            // The shadow is invisible to the submitter's trace.
            self.counters.job_enqueued();
            let shadow = Job {
                pool: Arc::clone(pool),
                op_index,
                request: request.clone(),
                rights: rights.clone(),
                slot: Arc::new(Completion::new()),
                deadline_ns: adm.deadline_ns,
                tag,
                tenant: adm.tenant,
                tenant_metrics: Arc::clone(&adm.tenant_metrics),
                close_after: false,
                enqueue_ns: adm.now,
                trace: None,
            };
            self.push_job(shadow, adm.weight, adm.quota, adm.high_water, shard)?;
        }
        self.counters.job_enqueued();
        let job = Job {
            pool: Arc::clone(pool),
            op_index,
            request,
            rights,
            slot,
            deadline_ns: adm.deadline_ns,
            tag,
            tenant: adm.tenant,
            tenant_metrics: adm.tenant_metrics,
            close_after: adm.close_after,
            enqueue_ns: adm.now,
            trace: trace.map(|t| (t.clone(), t.begin_call())),
        };
        self.push_job(job, adm.weight, adm.quota, adm.high_water, shard)?;
        Ok(ticket)
    }

    /// Pushes one job onto its tenant's lane on `shard`, honoring the
    /// tenant quota and the engine policy's aggregate high water. A shed
    /// is charged to the submitting tenant's own counter as well as the
    /// engine's. A successful push bumps the submit signal: one wakeup,
    /// one parked worker.
    fn push_job(
        &self,
        job: Job,
        weight: u32,
        quota: Option<usize>,
        high_water: Option<usize>,
        shard: usize,
    ) -> Result<(), EngineError> {
        let tenant = job.tenant;
        let tenant_metrics = Arc::clone(&job.tenant_metrics);
        let queue = &self.shards[shard];
        let pushed = match high_water {
            Some(hw) => queue.try_push(job, tenant, weight, quota, hw),
            None => queue.push(job, tenant, weight, quota),
        };
        match pushed {
            Ok(()) => {
                tenant_metrics.admitted.inc();
                self.signal.bump();
                Ok(())
            }
            Err(WfqRefusal::Quota(_)) | Err(WfqRefusal::Full(_)) => {
                self.counters.in_flight.sub(1);
                self.counters.job_shed();
                tenant_metrics.shed.inc();
                Err(EngineError::Overloaded)
            }
            Err(WfqRefusal::Closed(_)) => {
                self.counters.in_flight.sub(1);
                Err(EngineError::Closed)
            }
        }
    }

    /// A blocking call that may bypass the queue entirely — LRPC-style
    /// direct dispatch on the caller's thread, straight into the caller's
    /// reply buffers, no intermediate `Reply` and no worker handoff.
    ///
    /// Eligibility is decided *after* the shared admission preamble (so
    /// breaker, faults, and counters behave identically on both paths):
    /// the call must have no deadline to enforce mid-dispatch, the shard
    /// group must be empty (with a backlog, jumping the weighted-fair
    /// queue would defeat QoS), and the engine must be open. Everything
    /// else takes the queue path and waits on the ticket.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn call_blocking(
        &self,
        pool: &Arc<ReplicaPool>,
        binding: u64,
        op_index: usize,
        request: &[u8],
        rights: &[u32],
        deadline_ns: Option<u64>,
        tag: Option<CallTag>,
        tenant: TenantId,
        trace: Option<&SharedCallTrace>,
        reply: &mut Vec<u8>,
        rights_out: &mut Vec<u32>,
    ) -> flexrpc_runtime::Result<()> {
        let adm = self.admit(deadline_ns, tag, tenant).map_err(admission_error)?;
        let shard = self.home_shard(adm.tenant, binding);
        // Duplicate deliveries must ride the queue: the shadow and the
        // real call share one FIFO lane there, so the shadow strictly
        // precedes the real execution and the at-most-once cache sees
        // exactly one handler run. Inline would race them.
        if adm.deadline_ns.is_none()
            && !adm.duplicate
            && self.group.is_empty()
            && !self.shards[shard].is_closed()
        {
            return self.dispatch_inline(
                pool, op_index, request, rights, tag, adm, shard, trace, reply, rights_out,
            );
        }
        let ticket = self
            .finish_enqueue(
                pool,
                op_index,
                request.to_vec(),
                rights.to_vec(),
                tag,
                trace,
                adm,
                shard,
            )
            .map_err(admission_error)?;
        let r = ticket.wait_until(deadline_ns)?;
        // Move, don't copy: the worker's reply body becomes the caller's
        // buffer (the caller's old allocation rides back into `r` and is
        // dropped).
        let mut r = r;
        std::mem::swap(reply, &mut r.body);
        rights_out.clear();
        rights_out.extend_from_slice(&r.rights);
        Ok(())
    }

    /// The inline dispatch tail: mirrors every counter, trace span, and
    /// fault behavior of the worker path, with zero queue dwell.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_inline(
        &self,
        pool: &Arc<ReplicaPool>,
        op_index: usize,
        request: &[u8],
        rights: &[u32],
        tag: Option<CallTag>,
        adm: Admission,
        shard: usize,
        trace: Option<&SharedCallTrace>,
        reply: &mut Vec<u8>,
        rights_out: &mut Vec<u32>,
    ) -> flexrpc_runtime::Result<()> {
        if adm.duplicate {
            // The shadow of a duplicated delivery still rides the queue;
            // under at-most-once either order yields one execution (the
            // loser replays the winner's cached reply).
            self.counters.job_enqueued();
            let shadow = Job {
                pool: Arc::clone(pool),
                op_index,
                request: request.to_vec(),
                rights: rights.to_vec(),
                slot: Arc::new(Completion::new()),
                deadline_ns: adm.deadline_ns,
                tag,
                tenant: adm.tenant,
                tenant_metrics: Arc::clone(&adm.tenant_metrics),
                close_after: false,
                enqueue_ns: adm.now,
                trace: None,
            };
            self.push_job(shadow, adm.weight, adm.quota, adm.high_water, shard)
                .map_err(admission_error)?;
        }
        self.counters.job_enqueued();
        self.counters.inline_calls.inc();
        let started_ns = self.clock.now_ns();
        self.dwell_ns.record(0);
        adm.tenant_metrics.served.inc();
        adm.tenant_metrics.dwell_ns.record(0);
        let trace_call = trace.map(|t| (t, t.begin_call()));
        if let Some((t, call)) = &trace_call {
            t.record(*call, Stage::Enqueue, started_ns, started_ns, 0);
        }
        let mut replica = pool.acquire();
        reply.clear();
        rights_out.clear();
        let result = replica.dispatch_tagged(op_index, request, rights, tag, reply, rights_out);
        pool.release(replica);
        if let Some((t, call)) = &trace_call {
            t.record(*call, Stage::Dispatch, started_ns, self.clock.now_ns(), op_index as u64);
        }
        self.counters.job_finished(
            request.len(),
            if result.is_ok() { reply.len() } else { 0 },
            result.is_ok(),
        );
        if let Some(b) = &self.breaker {
            b.record(result.is_ok(), self.clock.now_ns());
        }
        if adm.close_after {
            reply.clear();
            rights_out.clear();
            return Err(RpcError::Disconnected("engine connection closed before reply".into()));
        }
        if result.is_err() {
            reply.clear();
            rights_out.clear();
        }
        result
    }

    /// Submits into a specific pool (the acceptor's path). Tenancy rides
    /// the tag when the wire credential carried one; the dwell limit
    /// still applies even without a caller deadline. The shard binding is
    /// the tag's when present, else the pool's identity.
    pub(crate) fn submit_to_pool(
        &self,
        pool: &Arc<ReplicaPool>,
        op_index: usize,
        request: &[u8],
        rights: &[u32],
        tag: Option<CallTag>,
    ) -> Result<CallTicket, EngineError> {
        let binding = tag.map_or(Arc::as_ptr(pool) as u64, |t| t.binding);
        self.enqueue(
            pool,
            binding,
            op_index,
            request.to_vec(),
            rights.to_vec(),
            None,
            tag,
            TenantId::DEFAULT,
            None,
        )
    }

    /// Live counters (crate-internal; external readers use [`Engine::stats`]).
    pub(crate) fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// The shared program cache (hit/miss counters for tests and reports).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// The engine's fault injector: plan crashes, closes, drops, delays
    /// against admission (tests and the failover experiment).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The at-most-once reply cache, if enabled.
    pub fn reply_cache(&self) -> Option<&Arc<ReplyCache>> {
        self.reply_cache.as_ref()
    }

    /// The engine's unified metrics plane: counter and histogram handles
    /// under stable dotted names (`engine.*`, `cache.*`, `breaker.*`,
    /// `replycache.*`, `control.*`, `tenant.<id>.*`), for JSON export and
    /// for adopting further components (e.g. a supervisor) into one
    /// snapshot.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Live connection rebinds performed on this engine.
    pub fn rebind_count(&self) -> u64 {
        self.rebinds.get()
    }

    /// Point-in-time statistics, reconstructed from the unified metrics
    /// snapshot — the registry is the single source of truth; only the
    /// structural parts (queue depth, worker count, cache layout, the
    /// breaker's derived open/closed state) are read directly.
    pub fn stats(&self) -> EngineStatsSnapshot {
        let snapshot = self.metrics.snapshot();
        EngineStatsSnapshot::from_metrics(
            &snapshot,
            self.group.len(),
            self.workers_n,
            self.cache.stats(),
            self.breaker.as_ref().is_some_and(|b| b.is_open(self.clock.now_ns())),
        )
    }

    /// Graceful drain: refuse new work, fail every queued-but-unstarted
    /// call with [`RpcError::Cancelled`] (its submitter learns immediately
    /// rather than waiting on work that will never run), let executing
    /// calls finish, join workers. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            for job in shard.close() {
                self.counters.job_cancelled();
                job.slot.fill(Err(RpcError::Cancelled));
            }
        }
        self.signal.bump_all();
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// In-progress [`Engine::connect`]: optionally override the client half of
/// the combination, pick the tenant the connection submits as, and attach
/// per-connection [`CallOptions`], then
/// [`establish`](ConnectBuilder::establish).
#[derive(Debug)]
pub struct ConnectBuilder {
    engine: Arc<Engine>,
    service: String,
    client: Option<ClientInfo>,
    /// The client's per-operation call shapes, when it declared a full
    /// presentation — the client half of bind-time shape negotiation.
    client_shapes: Option<Vec<(String, CallShape)>>,
    options: CallOptions,
    tenant: TenantId,
}

impl ConnectBuilder {
    /// The client's half of the program combination. Defaults to the
    /// service's own presentation (a same-presentation binding).
    pub fn client(mut self, client: ClientInfo) -> ConnectBuilder {
        self.client = Some(client);
        self
    }

    /// Declares the client's full presentation: sets the combination's
    /// client half *and* submits its per-operation call shapes (`[oneway]`,
    /// `[stream(N)]`) for bind-time negotiation. Establishment fails with
    /// [`EngineError::ShapeMismatch`] if the two ends disagree on any
    /// operation's shape; stream windows settle to the minimum of the two
    /// declarations ([`negotiate_call_shape`]).
    pub fn client_presentation(mut self, pres: &InterfacePresentation) -> ConnectBuilder {
        self.client = Some(ClientInfo::of(pres));
        self.client_shapes =
            Some(pres.ops.iter().map(|(name, op)| (name.clone(), op.call_shape)).collect());
        self
    }

    /// Per-connection call options: the deadline applies to every call
    /// made through the connection (a call-level deadline overrides it);
    /// the retry policy is consumed by [`ClientStub::call_with`]
    /// (flexrpc_runtime::ClientStub) above the transport.
    pub fn options(mut self, options: CallOptions) -> ConnectBuilder {
        self.options = options;
        self
    }

    /// The tenant this connection submits as: every call is scheduled on
    /// that tenant's weighted-fair lane under its quota. Defaults to the
    /// anonymous tenant (id 0), which preserves single-queue behavior.
    pub fn tenant(mut self, tenant: TenantId) -> ConnectBuilder {
        self.tenant = tenant;
        self
    }

    /// Binds the connection to a tenant's live [`PolicyHandle`]: sets the
    /// tenant, and inherits the policy's current retry license into the
    /// connection's options when they carry none. Later
    /// [`PolicyHandle::swap`]s keep applying — admission loads the policy
    /// live — but the retry license is fixed at this call.
    pub fn policy(mut self, handle: &PolicyHandle) -> ConnectBuilder {
        self.tenant = handle.tenant();
        if self.options.retry_policy().is_none() {
            if let Some(r) = handle.load().retry_policy() {
                self.options = std::mem::take(&mut self.options).retry(r.clone());
            }
        }
        self
    }

    /// Resolves the combination (compiling its program on first use) and
    /// opens the connection. When the options asked for tracing
    /// ([`CallOptions::traced`]), the connection carries a
    /// [`SharedCallTrace`] on the engine clock: establishment records a
    /// [`Stage::Bind`] span (plus [`Stage::Specialize`] when this
    /// combination compiled rather than hit the program cache), and every
    /// later call records its queue-dwell and dispatch spans into it.
    pub fn establish(self) -> Result<EngineConnection, EngineError> {
        let trace = self.options.is_traced().then(|| {
            SharedCallTrace::sim(
                flexrpc_runtime::DEFAULT_TRACE_CAPACITY,
                Arc::clone(&self.engine.clock),
            )
        });
        let bind_call = trace.as_ref().map(|t| t.begin_call());
        let bind_start = self.engine.clock.now_ns();
        let compilations_before = self.engine.cache.compilations();
        let client = match self.client {
            Some(c) => c,
            None => ClientInfo::of(&self.engine.service(&self.service)?.presentation),
        };
        let pool = self.engine.pool_for(&self.service, client)?;
        // Shape negotiation is part of the bind, not of any call: every
        // operation's effective shape (and stream window) is settled here,
        // once, deterministically. A client that declared no shapes accepts
        // the server's — the same-presentation binding the default client
        // half already implies.
        let shapes = negotiate_shapes(&pool, self.client_shapes.as_deref())?;
        if let (Some(t), Some(call)) = (&trace, bind_call) {
            let now = self.engine.clock.now_ns();
            let compiled = self.engine.cache.compilations() - compilations_before;
            t.record(call, Stage::Bind, bind_start, now, compiled);
            if compiled > 0 {
                t.record(call, Stage::Specialize, bind_start, now, compiled);
            }
        }
        self.engine.counters.connections.inc();
        static NEXT_CONN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        Ok(EngineConnection {
            engine: self.engine,
            service: self.service,
            tenant: self.tenant,
            conn_id: NEXT_CONN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            bind: RwLock::new(Binding { pool, shapes }),
            options: self.options,
            trace,
        })
    }
}

/// Reconciles the two ends' per-operation call shapes against the
/// server's compiled declarations — shared by [`ConnectBuilder::establish`]
/// and [`EngineConnection::rebind`].
fn negotiate_shapes(
    pool: &ReplicaPool,
    client_shapes: Option<&[(String, CallShape)]>,
) -> Result<HashMap<String, CallShape>, EngineError> {
    let compiled = pool.compiled();
    match client_shapes {
        None => Ok(compiled.ops.iter().map(|o| (o.name.clone(), o.call_shape)).collect()),
        Some(client_shapes) => {
            let mut negotiated = HashMap::new();
            for (name, client_shape) in client_shapes {
                let server_shape = compiled.op(name).map(|o| o.call_shape).unwrap_or_default();
                match negotiate_call_shape(*client_shape, server_shape) {
                    Some(shape) => {
                        negotiated.insert(name.clone(), shape);
                    }
                    None => {
                        return Err(EngineError::ShapeMismatch(format!(
                            "operation `{name}`: client declares {client_shape:?}, \
                             server declares {server_shape:?}"
                        )))
                    }
                }
            }
            Ok(negotiated)
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers_n)
            .field("services", &self.services.read().len())
            .field("cache", &self.cache)
            .field("control", &self.control)
            .finish()
    }
}

/// The live half of a connection that [`EngineConnection::rebind`] swaps:
/// the replica pool (combination) and the shapes settled against it.
struct Binding {
    pool: Arc<ReplicaPool>,
    /// Per-operation call shapes settled at bind (or rebind) time.
    /// Stream windows here are the *negotiated* minima, not either end's
    /// declaration.
    shapes: HashMap<String, CallShape>,
}

/// A same-domain client connection: submits jobs to the engine's queue and
/// blocks on completion. Supports multiple outstanding calls (pipelining)
/// through [`EngineConnection::submit`] / [`CallTicket::wait`]. The
/// connection's [`CallOptions`] deadline applies to every call on it; its
/// tenant decides whose weighted-fair lane the calls ride.
pub struct EngineConnection {
    engine: Arc<Engine>,
    service: String,
    tenant: TenantId,
    /// Process-unique connection id: the default shard binding for
    /// untagged calls, so each connection's traffic has a stable home
    /// shard.
    conn_id: u64,
    /// The combination currently bound — swapped live by
    /// [`EngineConnection::rebind`] without draining in-flight calls
    /// (each queued job holds its own `Arc` to the pool it was admitted
    /// against).
    bind: RwLock<Binding>,
    options: CallOptions,
    /// Server-side span trace for this connection's calls, present when
    /// the connection was established with [`CallOptions::traced`].
    trace: Option<SharedCallTrace>,
}

impl EngineConnection {
    /// Starts a call without waiting for it — the same-domain analogue of
    /// multiple outstanding XIDs. Submit several, then wait on the
    /// tickets. The connection's deadline (if any) is attached to the job.
    pub fn submit(
        &self,
        op_index: usize,
        request: &[u8],
        rights: &[u32],
    ) -> Result<CallTicket, EngineError> {
        self.submit_with(op_index, request, rights, self.connection_deadline())
    }

    /// [`EngineConnection::submit`] with an explicit absolute deadline on
    /// the engine clock (overriding the connection's).
    pub fn submit_with(
        &self,
        op_index: usize,
        request: &[u8],
        rights: &[u32],
        deadline_ns: Option<u64>,
    ) -> Result<CallTicket, EngineError> {
        self.submit_tagged(op_index, request, rights, deadline_ns, None)
    }

    /// [`EngineConnection::submit_with`] carrying an at-most-once tag for
    /// the engine's reply cache.
    pub fn submit_tagged(
        &self,
        op_index: usize,
        request: &[u8],
        rights: &[u32],
        deadline_ns: Option<u64>,
        tag: Option<CallTag>,
    ) -> Result<CallTicket, EngineError> {
        let pool = Arc::clone(&self.bind.read().pool);
        self.engine.enqueue(
            &pool,
            self.binding_for(tag),
            op_index,
            request.to_vec(),
            rights.to_vec(),
            deadline_ns,
            tag,
            self.tenant,
            self.trace.as_ref(),
        )
    }

    /// The shard binding for a call: the at-most-once tag's binding when
    /// present (so a supervisor's resumed session keeps its lane), else
    /// this connection's own id.
    fn binding_for(&self, tag: Option<CallTag>) -> u64 {
        tag.map_or(self.conn_id, |t| t.binding)
    }

    /// Re-runs bind-time negotiation **live**: resolves the combination
    /// for `pres` (compiling its program on first use, through the shared
    /// cache), re-negotiates every operation's call shape, and swaps the
    /// connection's binding in one store. In-flight calls are untouched —
    /// each queued job holds its own `Arc` to the pool it was admitted
    /// against and completes there; every submission after the swap runs
    /// the new combination. On any failure (unknown service, compile
    /// error, shape mismatch) the old binding stays in force.
    pub fn rebind(&self, pres: &InterfacePresentation) -> Result<(), EngineError> {
        let bind_call = self.trace.as_ref().map(|t| t.begin_call());
        let bind_start = self.engine.clock.now_ns();
        let compilations_before = self.engine.cache.compilations();
        let pool = self.engine.pool_for(&self.service, ClientInfo::of(pres))?;
        let client_shapes: Vec<(String, CallShape)> =
            pres.ops.iter().map(|(name, op)| (name.clone(), op.call_shape)).collect();
        let shapes = negotiate_shapes(&pool, Some(&client_shapes))?;
        *self.bind.write() = Binding { pool, shapes };
        if let (Some(t), Some(call)) = (&self.trace, bind_call) {
            let now = self.engine.clock.now_ns();
            let compiled = self.engine.cache.compilations() - compilations_before;
            t.record(call, Stage::Bind, bind_start, now, compiled);
            if compiled > 0 {
                t.record(call, Stage::Specialize, bind_start, now, compiled);
            }
        }
        self.engine.rebinds.inc();
        self.engine.control.note_rebind();
        Ok(())
    }

    /// The connection's default deadline resolved against the engine
    /// clock, fresh for each call.
    fn connection_deadline(&self) -> Option<u64> {
        self.options.deadline_ns().map(|d| self.engine.clock.now_ns().saturating_add(d))
    }

    /// The per-connection call options.
    pub fn options(&self) -> &CallOptions {
        &self.options
    }

    /// The tenant this connection submits as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The program this connection's combination compiled to (shared with
    /// every other connection of the same combination). After a
    /// [`rebind`](EngineConnection::rebind), the new combination's.
    pub fn program(&self) -> Arc<CompiledInterface> {
        self.bind.read().pool.compiled()
    }

    /// The engine this connection belongs to.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The connection's server-side span trace (bind, queue dwell,
    /// dispatch), if established with [`CallOptions::traced`].
    pub fn trace(&self) -> Option<&SharedCallTrace> {
        self.trace.as_ref()
    }

    /// The call shape settled for `op` at bind time: both ends' shape
    /// declarations reconciled, stream windows at their negotiated minimum.
    /// `None` for an operation the bind never saw.
    pub fn negotiated_shape(&self, op: &str) -> Option<CallShape> {
        self.bind.read().shapes.get(op).copied()
    }
}

/// Folds engine admission failures into the runtime's error taxonomy —
/// shared by the unary and one-way transport paths.
fn admission_error(e: EngineError) -> RpcError {
    match e {
        EngineError::Overloaded => RpcError::Overloaded,
        EngineError::Closed => RpcError::Cancelled,
        EngineError::Dropped => RpcError::Transport("submission dropped (induced fault)".into()),
        EngineError::Disconnected(why) => RpcError::Disconnected(why),
        EngineError::Unhealthy => RpcError::Disconnected("engine circuit breaker open".into()),
        other => RpcError::Transport(other.to_string()),
    }
}

impl Transport for EngineConnection {
    fn call(
        &mut self,
        op: &CompiledOp,
        request: &[u8],
        rights: &[u32],
        reply: &mut Vec<u8>,
        rights_out: &mut Vec<u32>,
    ) -> flexrpc_runtime::Result<usize> {
        self.call_with(op, request, rights, reply, rights_out, &CallControl::none())
    }

    fn call_with(
        &mut self,
        op: &CompiledOp,
        request: &[u8],
        rights: &[u32],
        reply: &mut Vec<u8>,
        rights_out: &mut Vec<u32>,
        ctl: &CallControl,
    ) -> flexrpc_runtime::Result<usize> {
        // The call-level deadline (already absolute) wins over the
        // connection-level one; either bounds the queue dwell, the
        // execution, and the ticket wait. With no deadline and an idle
        // queue the engine dispatches inline on this thread — no queue,
        // no worker handoff, the reply marshalled straight into `reply`.
        let deadline_ns = ctl.deadline_ns.or_else(|| self.connection_deadline());
        let pool = Arc::clone(&self.bind.read().pool);
        self.engine.call_blocking(
            &pool,
            self.binding_for(ctl.tag),
            op.index,
            request,
            rights,
            deadline_ns,
            ctl.tag,
            self.tenant,
            self.trace.as_ref(),
            reply,
            rights_out,
        )?;
        Ok(0)
    }

    fn send_oneway(
        &mut self,
        op: &CompiledOp,
        request: &[u8],
        rights: &[u32],
        ctl: &CallControl,
    ) -> flexrpc_runtime::Result<()> {
        // Admission happens synchronously (the fault plan and shed policy
        // still apply), but nobody waits on the ticket: the job runs, its
        // reply evaporates — the same-domain form of a datagram.
        let deadline_ns = ctl.deadline_ns.or_else(|| self.connection_deadline());
        let ticket = self
            .submit_tagged(op.index, request, rights, deadline_ns, ctl.tag)
            .map_err(admission_error)?;
        drop(ticket);
        Ok(())
    }

    fn clock(&self) -> Option<Arc<SimClock>> {
        Some(Arc::clone(&self.engine.clock))
    }
}

impl std::fmt::Debug for EngineConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EngineConnection({:?})", self.engine)
    }
}
