//! The serving engine: acceptor, worker pool, replica pools, connections.
//!
//! One engine serves many clients across many services with a fixed pool
//! of worker threads. Work arrives as [`Job`]s on a bounded queue — from
//! same-domain clients through [`EngineConnection`] (a
//! [`Transport`](flexrpc_runtime::transport::Transport) impl) or from the
//! simulated network through [`crate::acceptor`] — and every job dispatches
//! into a [`ServerInterface`] *replica* drawn from the pool for that
//! connection's program combination.
//!
//! Replicas exist because dispatch needs `&mut self` (handlers are
//! `FnMut`): rather than serializing all clients on one server lock, each
//! combination keeps up to `workers` interchangeable server instances whose
//! handlers capture the same `Arc`'d application state (file store, pipe
//! ring), all sharing one compiled program from the [`ProgramCache`]. The
//! expensive part — compilation — happens once per combination; the cheap
//! part — a handler table — is replicated for parallelism.

use crate::cache::{ProgramCache, ProgramKey};
use crate::queue::BoundedQueue;
use crate::stats::{EngineCounters, EngineStatsSnapshot};
use flexrpc_core::ir::Module;
use flexrpc_core::present::{InterfacePresentation, Trust};
use flexrpc_core::program::{CompiledInterface, CompiledOp};
use flexrpc_marshal::WireFormat;
use flexrpc_runtime::transport::Transport;
use flexrpc_runtime::{RpcError, ServerInterface};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Errors from engine control operations.
#[derive(Debug)]
pub enum EngineError {
    /// No service registered under that name.
    UnknownService(String),
    /// A service with that name already exists.
    DuplicateService(String),
    /// The engine is shutting down.
    Closed,
    /// Program compilation failed for a combination.
    Compile(flexrpc_core::CoreError),
    /// The underlying network refused an operation.
    Net(flexrpc_net::NetError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownService(n) => write!(f, "unknown service `{n}`"),
            EngineError::DuplicateService(n) => write!(f, "service `{n}` already registered"),
            EngineError::Closed => write!(f, "engine is shut down"),
            EngineError::Compile(e) => write!(f, "program compilation failed: {e}"),
            EngineError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<flexrpc_net::NetError> for EngineError {
    fn from(e: flexrpc_net::NetError) -> EngineError {
        EngineError::Net(e)
    }
}

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Job-queue capacity; pushes beyond it block (backpressure).
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { workers: 4, queue_capacity: 64 }
    }
}

/// What a connecting client declares about itself; with the service's own
/// half it selects the program combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientInfo {
    /// Fingerprint of the client's presentation
    /// ([`InterfacePresentation::fingerprint`]).
    pub presentation: u64,
    /// Trust the client declares in the server.
    pub trust: Trust,
}

impl ClientInfo {
    /// Client info for a presentation value.
    pub fn of(pres: &InterfacePresentation) -> ClientInfo {
        ClientInfo { presentation: pres.fingerprint(), trust: pres.trust }
    }
}

/// A finished call: reply body plus translated port rights.
#[derive(Debug, Default)]
pub struct Reply {
    /// Marshalled reply bytes.
    pub body: Vec<u8>,
    /// Out-of-band port rights.
    pub rights: Vec<u32>,
}

/// One-shot completion slot a submitter blocks on.
struct ReplySlot {
    state: Mutex<Option<flexrpc_runtime::Result<Reply>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot { state: Mutex::new(None), ready: Condvar::new() })
    }

    fn fill(&self, result: flexrpc_runtime::Result<Reply>) {
        *self.state.lock() = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> flexrpc_runtime::Result<Reply> {
        let mut state = self.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.ready.wait(&mut state);
        }
    }
}

/// An in-flight call handle ([`EngineConnection::submit`]); redeem with
/// [`CallTicket::wait`]. Dropping it abandons the reply (the worker still
/// runs the call).
#[must_use = "a submitted call completes, but its reply is lost unless waited on"]
pub struct CallTicket {
    slot: Arc<ReplySlot>,
}

impl CallTicket {
    /// Blocks until the reply is ready.
    pub fn wait(self) -> flexrpc_runtime::Result<Reply> {
        self.slot.wait()
    }
}

/// A unit of work: one dispatch against one replica pool.
struct Job {
    pool: Arc<ReplicaPool>,
    op_index: usize,
    request: Vec<u8>,
    rights: Vec<u32>,
    slot: Arc<ReplySlot>,
}

/// Interchangeable `ServerInterface` instances for one program combination.
///
/// All replicas share one compiled program and capture the same `Arc`'d
/// application state; any worker may use any free replica.
pub(crate) struct ReplicaPool {
    compiled: Arc<CompiledInterface>,
    replicas: Mutex<Vec<ServerInterface>>,
    freed: Condvar,
}

impl ReplicaPool {
    fn acquire(&self) -> ServerInterface {
        let mut replicas = self.replicas.lock();
        loop {
            if let Some(r) = replicas.pop() {
                return r;
            }
            // More workers than replicas should not happen (pools are sized
            // to the worker count), but waiting keeps it correct if it does.
            self.freed.wait(&mut replicas);
        }
    }

    fn release(&self, replica: ServerInterface) {
        self.replicas.lock().push(replica);
        self.freed.notify_one();
    }

    /// The shared compilation (for building client stubs against it).
    pub(crate) fn compiled(&self) -> Arc<CompiledInterface> {
        Arc::clone(&self.compiled)
    }
}

/// Builds one dispatch replica: register the service's work functions on a
/// server created over the shared compilation. Called once per replica, so
/// it must only capture `Arc`'d shared state.
pub type ReplicaFactory = Box<dyn Fn(&mut ServerInterface) + Send + Sync>;

/// A registered service: its contract, its server-side presentation, and
/// the factory that wires work functions onto replicas.
struct Service {
    module: Module,
    interface: String,
    presentation: InterfacePresentation,
    presentation_fingerprint: u64,
    signature: u64,
    format: WireFormat,
    factory: ReplicaFactory,
    /// Replica pools, one per program combination seen so far.
    pools: RwLock<HashMap<ProgramKey, Arc<ReplicaPool>>>,
}

/// The concurrent serving engine. Create with [`Engine::start`]; it owns
/// its worker threads until [`Engine::shutdown`] (or drop).
pub struct Engine {
    cfg: EngineConfig,
    queue: Arc<BoundedQueue<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    cache: ProgramCache,
    services: RwLock<HashMap<String, Arc<Service>>>,
    counters: EngineCounters,
}

impl Engine {
    /// Starts an engine: spawns the worker pool, returns the shared handle.
    pub fn start(cfg: EngineConfig) -> Arc<Engine> {
        let engine = Arc::new(Engine {
            cfg,
            queue: Arc::new(BoundedQueue::new(cfg.queue_capacity)),
            workers: Mutex::new(Vec::new()),
            cache: ProgramCache::new(),
            services: RwLock::new(HashMap::new()),
            counters: EngineCounters::default(),
        });
        let mut workers = engine.workers.lock();
        for i in 0..cfg.workers.max(1) {
            let queue = Arc::clone(&engine.queue);
            let eng = Arc::downgrade(&engine);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("flexrpc-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            let mut replica = job.pool.acquire();
                            let mut body = Vec::new();
                            let mut rights_out = Vec::new();
                            let result = replica
                                .dispatch(
                                    job.op_index,
                                    &job.request,
                                    &job.rights,
                                    &mut body,
                                    &mut rights_out,
                                )
                                .map(|()| Reply { body, rights: rights_out });
                            job.pool.release(replica);
                            if let Some(engine) = eng.upgrade() {
                                engine.counters.job_finished(
                                    job.request.len(),
                                    result.as_ref().map_or(0, |r| r.body.len()),
                                    result.is_ok(),
                                );
                            }
                            job.slot.fill(result);
                        }
                    })
                    .expect("worker thread spawns"),
            );
        }
        drop(workers);
        engine
    }

    /// Registers a service. `presentation` is the server's half of every
    /// combination; `factory` wires work functions onto each replica and
    /// must capture only `Arc`'d shared state.
    pub fn register_service(
        &self,
        name: &str,
        module: Module,
        interface: &str,
        presentation: InterfacePresentation,
        format: WireFormat,
        factory: impl Fn(&mut ServerInterface) + Send + Sync + 'static,
    ) -> Result<(), EngineError> {
        let iface = module.interface(interface).ok_or_else(|| {
            EngineError::UnknownService(format!("{name}: no interface {interface}"))
        })?;
        let signature = flexrpc_core::sig::WireSignature::of_interface(&module, iface)
            .map_err(EngineError::Compile)?
            .hash();
        let service = Arc::new(Service {
            module: module.clone(),
            interface: interface.to_owned(),
            presentation_fingerprint: presentation.fingerprint(),
            presentation,
            signature,
            format,
            factory: Box::new(factory),
            pools: RwLock::new(HashMap::new()),
        });
        let mut services = self.services.write();
        if services.contains_key(name) {
            return Err(EngineError::DuplicateService(name.to_owned()));
        }
        services.insert(name.to_owned(), service);
        Ok(())
    }

    fn service(&self, name: &str) -> Result<Arc<Service>, EngineError> {
        self.services
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| EngineError::UnknownService(name.to_owned()))
    }

    /// Resolves (or lazily builds) the replica pool for one combination.
    /// The compilation goes through the shared [`ProgramCache`]: the first
    /// connection with a combination compiles, every later one reuses.
    pub(crate) fn pool_for(
        &self,
        service_name: &str,
        client: ClientInfo,
    ) -> Result<Arc<ReplicaPool>, EngineError> {
        let service = self.service(service_name)?;
        let key = ProgramKey {
            signature: service.signature,
            server_presentation: service.presentation_fingerprint,
            client_presentation: client.presentation,
            server_trust: service.presentation.trust,
            client_trust: client.trust,
            format: service.format,
        };
        if let Some(pool) = service.pools.read().get(&key) {
            // Count the cache hit the fast path would otherwise skip: the
            // combination was looked up and served without compiling.
            self.cache
                .get_or_compile::<flexrpc_core::CoreError>(key, || {
                    unreachable!("pool exists, program is cached")
                })
                .expect("cached");
            return Ok(Arc::clone(pool));
        }
        let mut pools = service.pools.write();
        if let Some(pool) = pools.get(&key) {
            return Ok(Arc::clone(pool));
        }
        let compiled = self
            .cache
            .get_or_compile(key, || {
                let iface = service
                    .module
                    .interface(&service.interface)
                    .expect("validated at registration");
                CompiledInterface::compile(&service.module, iface, &service.presentation)
            })
            .map_err(EngineError::Compile)?;
        let replicas: Vec<ServerInterface> = (0..self.cfg.workers.max(1))
            .map(|_| {
                let mut replica =
                    ServerInterface::new_shared(Arc::clone(&compiled), service.format);
                (service.factory)(&mut replica);
                replica
            })
            .collect();
        let pool = Arc::new(ReplicaPool {
            compiled,
            replicas: Mutex::new(replicas),
            freed: Condvar::new(),
        });
        pools.insert(key, Arc::clone(&pool));
        Ok(pool)
    }

    /// Opens a same-domain connection to a service. The returned connection
    /// implements [`Transport`], so a
    /// [`ClientStub`](flexrpc_runtime::ClientStub) plugs straight in.
    pub fn connect(
        self: &Arc<Self>,
        service_name: &str,
        client: ClientInfo,
    ) -> Result<EngineConnection, EngineError> {
        let pool = self.pool_for(service_name, client)?;
        self.counters.connections.fetch_add(1, Ordering::Relaxed);
        Ok(EngineConnection { engine: Arc::clone(self), pool })
    }

    /// Enqueues one dispatch; blocks while the queue is full.
    fn enqueue(
        &self,
        pool: &Arc<ReplicaPool>,
        op_index: usize,
        request: Vec<u8>,
        rights: Vec<u32>,
    ) -> Result<CallTicket, EngineError> {
        let slot = ReplySlot::new();
        self.counters.job_enqueued();
        let job =
            Job { pool: Arc::clone(pool), op_index, request, rights, slot: Arc::clone(&slot) };
        if self.queue.push(job).is_err() {
            self.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
            return Err(EngineError::Closed);
        }
        Ok(CallTicket { slot })
    }

    /// Submits into a specific pool (the acceptor's path).
    pub(crate) fn submit_to_pool(
        &self,
        pool: &Arc<ReplicaPool>,
        op_index: usize,
        request: &[u8],
        rights: &[u32],
    ) -> Result<CallTicket, EngineError> {
        self.enqueue(pool, op_index, request.to_vec(), rights.to_vec())
    }

    /// Live counters (crate-internal; external readers use [`Engine::stats`]).
    pub(crate) fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// The shared program cache (hit/miss counters for tests and reports).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            calls_served: self.counters.calls_served.load(Ordering::Relaxed),
            bytes_in: self.counters.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.counters.bytes_out.load(Ordering::Relaxed),
            in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            peak_in_flight: self.counters.peak_in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            connections: self.counters.connections.load(Ordering::Relaxed),
            dispatch_errors: self.counters.dispatch_errors.load(Ordering::Relaxed),
            workers: self.cfg.workers.max(1),
            cache: self.cache.stats(),
        }
    }

    /// Graceful shutdown: refuse new work, drain the queue, join workers.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.queue.close();
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.cfg.workers)
            .field("services", &self.services.read().len())
            .field("cache", &self.cache)
            .finish()
    }
}

/// A same-domain client connection: submits jobs to the engine's queue and
/// blocks on completion. Supports multiple outstanding calls (pipelining)
/// through [`EngineConnection::submit`] / [`CallTicket::wait`].
pub struct EngineConnection {
    engine: Arc<Engine>,
    pool: Arc<ReplicaPool>,
}

impl EngineConnection {
    /// Starts a call without waiting for it — the same-domain analogue of
    /// multiple outstanding XIDs. Submit several, then wait on the tickets.
    pub fn submit(
        &self,
        op_index: usize,
        request: &[u8],
        rights: &[u32],
    ) -> Result<CallTicket, EngineError> {
        self.engine.enqueue(&self.pool, op_index, request.to_vec(), rights.to_vec())
    }

    /// The program this connection's combination compiled to (shared with
    /// every other connection of the same combination).
    pub fn program(&self) -> Arc<CompiledInterface> {
        self.pool.compiled()
    }

    /// The engine this connection belongs to.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }
}

impl Transport for EngineConnection {
    fn call(
        &mut self,
        op: &CompiledOp,
        request: &[u8],
        rights: &[u32],
        reply: &mut Vec<u8>,
        rights_out: &mut Vec<u32>,
    ) -> flexrpc_runtime::Result<usize> {
        let ticket = self
            .submit(op.index, request, rights)
            .map_err(|e| RpcError::Transport(e.to_string()))?;
        let r = ticket.wait()?;
        reply.clear();
        reply.extend_from_slice(&r.body);
        rights_out.clear();
        rights_out.extend_from_slice(&r.rights);
        Ok(0)
    }
}

impl std::fmt::Debug for EngineConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EngineConnection({:?})", self.engine)
    }
}
