//! `flexrpc-engine` — a concurrent multi-client serving engine.
//!
//! The rest of the workspace reproduces the paper's mechanisms — flexible
//! presentations, combination-signature stub programs, streamlined IPC —
//! one client/server pair at a time. This crate is the server-side runtime
//! a real deployment of those mechanisms needs: one process serving many
//! clients, across many presentation combinations, without recompiling a
//! stub program per connection.
//!
//! Pieces:
//!
//! * [`engine::Engine`] — **per-core engine shards** + service registry.
//!   Each worker owns a shard: its own weighted-fair
//!   [`WfqQueue`](flexrpc_control::WfqQueue) lane set and its own stats
//!   cell. Submission hashes `(tenant, binding)` to a home shard; idle
//!   workers *steal* whole min-tag jobs from the longest peer queue, so a
//!   hot tenant cannot strand cores while fair order survives. Blocking
//!   calls with no deadline and no backlog dispatch **inline** on the
//!   caller's thread (LRPC-style — no handoff at all).
//! * [`slot::ReplySlot`] — the lock-free one-shot completion slot a
//!   submitter blocks on: atomic state machine, condvar only on actual
//!   contention.
//! * [`cache::ProgramCache`] — compiled programs keyed by *combination
//!   signature* (wire signature × the two presentation fingerprints × the
//!   negotiated trust pair × wire format). Each combination compiles once;
//!   hit/miss counters prove it.
//! * [`queue::BoundedQueue`] — the original single bounded MPMC job queue,
//!   kept as the simple building block (the engine itself now runs on
//!   sharded `WfqQueue`s).
//! * [`engine::EngineConnection`] — same-domain client transport with
//!   multiple outstanding calls ([`engine::EngineConnection::submit`]).
//! * [`acceptor`] — Sun RPC exposure on the simulated network, including
//!   pipelined record streams (several XIDs per message) batched into one
//!   gather write per flush, and the matching
//!   [`acceptor::SunRpcPipeline`] client.

pub mod acceptor;
pub mod breaker;
pub mod cache;
pub mod engine;
pub mod queue;
pub mod slot;
pub mod stats;

pub use acceptor::{expose_on_net, SunRpcPipeline};
pub use breaker::{BreakerStats, CircuitBreaker};
pub use cache::{CacheStats, ProgramCache, ProgramKey};
pub use engine::{
    CallTicket, ClientInfo, ConnectBuilder, Engine, EngineBuilder, EngineConnection, EngineError,
    Reply,
};
pub use flexrpc_control::{ControlPlane, Policy, PolicyHandle, TenantId, TenantMetrics};
pub use slot::ReplySlot;
pub use stats::EngineStatsSnapshot;

#[cfg(test)]
mod tests {
    use super::*;
    use flexrpc_core::ir::fileio_example;
    use flexrpc_core::present::{InterfacePresentation, Trust};
    use flexrpc_core::value::Value;
    use flexrpc_marshal::WireFormat;
    use flexrpc_runtime::ClientStub;
    use std::sync::Arc;

    fn fileio_presentation() -> InterfacePresentation {
        let m = fileio_example();
        let iface = m.interface("FileIO").unwrap();
        InterfacePresentation::default_for(&m, iface).unwrap()
    }

    /// Registers a FileIO echo service: `write` stores into a shared byte
    /// log, `read` returns `count` bytes of a fixed pattern.
    fn register_echo(engine: &Arc<Engine>, name: &str) {
        let m = fileio_example();
        let pres = fileio_presentation();
        engine
            .register_service(name, m, "FileIO", pres, WireFormat::Cdr, |srv| {
                srv.on("read", |call| {
                    let count = call.u32("count").unwrap() as usize;
                    call.set("return", Value::Bytes(vec![0x5A; count])).unwrap();
                    0
                })
                .unwrap();
                srv.on("write", |call| {
                    let data = call.bytes("data").unwrap();
                    data.len() as u32
                })
                .unwrap();
            })
            .unwrap();
    }

    fn client_info(trust: Trust) -> ClientInfo {
        let mut pres = fileio_presentation();
        pres.trust = trust;
        ClientInfo::of(&pres)
    }

    fn stub_for(conn: EngineConnection) -> ClientStub {
        let m = fileio_example();
        let iface = m.interface("FileIO").unwrap();
        let pres = fileio_presentation();
        let compiled = flexrpc_core::program::CompiledInterface::compile(&m, iface, &pres).unwrap();
        ClientStub::new(compiled, WireFormat::Cdr, Box::new(conn))
    }

    #[test]
    fn single_client_roundtrip() {
        let engine = Engine::builder().workers(2).queue_depth(8).build();
        register_echo(&engine, "echo");
        let conn = engine.connect("echo").client(client_info(Trust::None)).establish().unwrap();
        let mut client = stub_for(conn);
        let mut frame = client.new_frame("read").unwrap();
        frame[0] = Value::U32(6);
        client.call("read", &mut frame).unwrap();
        assert_eq!(frame[1], Value::Bytes(vec![0x5A; 6]));
        let stats = engine.stats();
        assert_eq!(stats.calls_served, 1);
        assert!(stats.bytes_out > 0);
        engine.shutdown();
    }

    #[test]
    fn same_combination_compiles_once() {
        let engine = Engine::builder().build();
        register_echo(&engine, "echo");
        for _ in 0..5 {
            engine.connect("echo").client(client_info(Trust::None)).establish().unwrap();
        }
        let cache = engine.cache().stats();
        assert_eq!(cache.misses, 1, "one combination, one compile");
        assert_eq!(cache.hits, 4, "four connections reused it");
        assert_eq!(engine.stats().connections, 5);
    }

    #[test]
    fn distinct_trust_is_a_distinct_combination() {
        let engine = Engine::builder().build();
        register_echo(&engine, "echo");
        engine.connect("echo").client(client_info(Trust::None)).establish().unwrap();
        engine.connect("echo").client(client_info(Trust::LeakyUnprotected)).establish().unwrap();
        assert_eq!(engine.cache().stats().misses, 2);
    }

    #[test]
    fn pipelined_submits_complete() {
        let engine = Engine::builder().workers(4).queue_depth(32).build();
        register_echo(&engine, "echo");
        let conn = engine.connect("echo").client(client_info(Trust::None)).establish().unwrap();
        // Marshal a read(count=4) request by hand (CDR: payloads first —
        // read has none in its request — then scalars).
        let compiled = conn.program();
        let op = compiled.op("read").unwrap();
        let mut w = flexrpc_runtime::wire::AnyWriter::new(WireFormat::Cdr);
        w.put_u32(4);
        let request = w.into_bytes();
        let tickets: Vec<_> =
            (0..16).map(|_| conn.submit(op.index, &request, &[]).unwrap()).collect();
        for t in tickets {
            let reply = t.wait().unwrap();
            assert!(!reply.body.is_empty());
        }
        assert_eq!(engine.stats().calls_served, 16);
    }

    #[test]
    fn unknown_service_rejected() {
        let engine = Engine::builder().build();
        assert!(matches!(
            engine.connect("ghost").client(client_info(Trust::None)).establish(),
            Err(EngineError::UnknownService(_))
        ));
    }

    #[test]
    fn duplicate_service_rejected() {
        let engine = Engine::builder().build();
        register_echo(&engine, "echo");
        let err = engine.register_service(
            "echo",
            fileio_example(),
            "FileIO",
            fileio_presentation(),
            WireFormat::Cdr,
            |_| {},
        );
        assert!(matches!(err, Err(EngineError::DuplicateService(_))));
    }

    #[test]
    fn shutdown_refuses_new_work_but_drains() {
        let engine = Engine::builder().workers(1).queue_depth(8).build();
        register_echo(&engine, "echo");
        let conn = engine.connect("echo").client(client_info(Trust::None)).establish().unwrap();
        engine.shutdown();
        let err = conn.submit(0, &[], &[]);
        assert!(matches!(err, Err(EngineError::Closed)));
    }

    #[test]
    fn many_threads_one_engine() {
        let engine = Engine::builder().workers(4).queue_depth(16).build();
        register_echo(&engine, "echo");
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let conn =
                    engine.connect("echo").client(client_info(Trust::None)).establish().unwrap();
                std::thread::spawn(move || {
                    let mut client = stub_for(conn);
                    for round in 0..25u32 {
                        let n = (i + round) % 32 + 1;
                        let mut frame = client.new_frame("read").unwrap();
                        frame[0] = Value::U32(n);
                        client.call("read", &mut frame).unwrap();
                        assert_eq!(frame[1], Value::Bytes(vec![0x5A; n as usize]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.calls_served, 8 * 25);
        assert_eq!(stats.in_flight, 0, "everything drained");
        assert_eq!(stats.cache.misses, 1);
    }
}
