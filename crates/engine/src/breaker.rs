//! A health-check circuit breaker gating admission to the engine.
//!
//! Consecutive dispatch failures trip the breaker *open*: further calls
//! are refused at admission with a disconnect-class error, so supervised
//! clients fail over to a standby instead of piling onto a sick server.
//! After a sim-time cooldown the breaker goes *half-open* and admits one
//! probe; the probe's outcome decides between closing (recovered) and
//! re-opening (still sick). All transitions are measured on the
//! deterministic [`SimClock`] time passed in by the engine, so breaker
//! behavior is exactly reproducible in tests.

use flexrpc_trace::{Counter, MetricsRegistry};
use parking_lot::Mutex;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Healthy: admitting, counting consecutive failures.
    Closed { consecutive: u32 },
    /// Tripped: refusing until `since + cooldown` passes.
    Open { since: u64 },
    /// Cooled down: one probe is in flight, everyone else refused.
    HalfOpen,
}

/// Counters describing breaker activity, plus its current gate state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/half-open → open transitions.
    pub trips: u64,
    /// Probes admitted while half-open.
    pub probes: u64,
    /// Half-open → closed transitions (probe succeeded).
    pub recoveries: u64,
    /// True while the breaker refuses admission.
    pub open: bool,
}

/// A consecutive-failure circuit breaker with sim-time cooldown.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_ns: u64,
    state: Mutex<State>,
    trips: Counter,
    probes: Counter,
    recoveries: Counter,
}

impl CircuitBreaker {
    /// Trips after `threshold` consecutive failures; probes after
    /// `cooldown_ns` of sim time open.
    pub fn new(threshold: u32, cooldown_ns: u64) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown_ns,
            state: Mutex::new(State::Closed { consecutive: 0 }),
            trips: Counter::detached(),
            probes: Counter::detached(),
            recoveries: Counter::detached(),
        }
    }

    /// Adopts the breaker's counters into `registry` as `breaker.trip`,
    /// `breaker.probe`, and `breaker.recovery`.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("breaker.trip", &self.trips);
        registry.adopt_counter("breaker.probe", &self.probes);
        registry.adopt_counter("breaker.recovery", &self.recoveries);
    }

    /// Admission gate: may a call proceed at sim time `now_ns`?
    /// While open past the cooldown, admits exactly one probe (half-open).
    pub fn allow(&self, now_ns: u64) -> bool {
        let mut state = self.state.lock();
        match *state {
            State::Closed { .. } => true,
            State::Open { since } => {
                if now_ns >= since.saturating_add(self.cooldown_ns) {
                    *state = State::HalfOpen;
                    self.probes.inc();
                    true
                } else {
                    false
                }
            }
            State::HalfOpen => false,
        }
    }

    /// Records one admitted call's outcome at sim time `now_ns`.
    pub fn record(&self, ok: bool, now_ns: u64) {
        let mut state = self.state.lock();
        match (*state, ok) {
            (State::Closed { .. }, true) => *state = State::Closed { consecutive: 0 },
            (State::Closed { consecutive }, false) => {
                let consecutive = consecutive + 1;
                if consecutive >= self.threshold {
                    *state = State::Open { since: now_ns };
                    self.trips.inc();
                } else {
                    *state = State::Closed { consecutive };
                }
            }
            // The probe decides: success closes, failure re-opens (and
            // restarts the cooldown from now).
            (State::HalfOpen, true) => {
                *state = State::Closed { consecutive: 0 };
                self.recoveries.inc();
            }
            (State::HalfOpen, false) => {
                *state = State::Open { since: now_ns };
                self.trips.inc();
            }
            // Late results from calls admitted before a trip: no-ops.
            (State::Open { .. }, _) => {}
        }
    }

    /// True while admission is refused (open and still cooling).
    pub fn is_open(&self, now_ns: u64) -> bool {
        match *self.state.lock() {
            State::Open { since } => now_ns < since.saturating_add(self.cooldown_ns),
            State::HalfOpen => true,
            State::Closed { .. } => false,
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            trips: self.trips.get(),
            probes: self.probes.get(),
            recoveries: self.recoveries.get(),
            open: !matches!(*self.state.lock(), State::Closed { .. }),
        }
    }
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("threshold", &self.threshold)
            .field("cooldown_ns", &self.cooldown_ns)
            .field("state", &*self.state.lock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, 1_000);
        assert!(b.allow(0));
        b.record(false, 0);
        b.record(true, 0); // Success resets the streak.
        b.record(false, 0);
        b.record(false, 0);
        assert!(b.allow(0), "two consecutive failures: still closed");
        b.record(false, 0);
        assert!(!b.allow(0), "third consecutive failure trips");
        assert_eq!(b.stats().trips, 1);
        assert!(b.stats().open);
    }

    #[test]
    fn probe_after_cooldown_then_recovery() {
        let b = CircuitBreaker::new(1, 1_000);
        b.record(false, 100); // Trips at t=100.
        assert!(!b.allow(1_099), "cooling until t=1100");
        assert!(b.allow(1_100), "the probe");
        assert!(!b.allow(1_100), "only one probe while half-open");
        b.record(true, 1_200);
        assert!(b.allow(1_200), "recovered");
        let s = b.stats();
        assert_eq!((s.trips, s.probes, s.recoveries), (1, 1, 1));
        assert!(!s.open);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let b = CircuitBreaker::new(1, 1_000);
        b.record(false, 0);
        assert!(b.allow(1_000));
        b.record(false, 1_500); // Probe failed at t=1500.
        assert!(!b.allow(2_400), "cooldown restarts from the failed probe");
        assert!(b.allow(2_500));
        assert_eq!(b.stats().trips, 2);
    }
}
