//! Multi-tenant QoS acceptance tests: weighted-fair isolation under a
//! noisy-neighbor storm, quota sheds charged to the offender, and live
//! policy swaps redirecting admission without a drain.
//!
//! Determinism: a *plug* call occupies the lone worker behind a gate
//! while every contending call is submitted at frozen sim time, so all
//! weighted-fair tags are assigned against `virtual_now == 0` and the
//! dequeue order is a pure function of (tenant, weight, sequence) — no
//! race against wall time. Handlers advance the sim clock by a fixed
//! `SERVICE_NS` per call, so queue dwell is exact arithmetic.

use flexrpc_core::ir::fileio_example;
use flexrpc_core::present::InterfacePresentation;
use flexrpc_core::value::Value;
use flexrpc_engine::{ControlPlane, Engine, EngineError, Policy, TenantId};
use flexrpc_marshal::WireFormat;
use flexrpc_runtime::wire::AnyWriter;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Sim-time cost of one call: a power of two, so log2 dwell buckets
/// resolve queue positions exactly.
const SERVICE_NS: u64 = 1 << 10;

const TENANT_A: TenantId = TenantId(1);
const TENANT_B: TenantId = TenantId(2);
const TENANT_PLUG: TenantId = TenantId(3);

#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

fn fileio_presentation() -> InterfacePresentation {
    let m = fileio_example();
    let iface = m.interface("FileIO").unwrap();
    InterfacePresentation::default_for(&m, iface).unwrap()
}

fn read_request(count: u32) -> Vec<u8> {
    let mut w = AnyWriter::new(WireFormat::Cdr);
    w.put_u32(count);
    w.into_bytes()
}

/// One worker, a deep queue, and a `read` handler that blocks on `gate`
/// once (the plug call) and then charges `SERVICE_NS` of sim time per
/// call. Returns the engine and the gate.
fn plugged_engine(plane: &Arc<ControlPlane>) -> (Arc<Engine>, Arc<Gate>) {
    let engine = Engine::builder().workers(1).queue_depth(4096).control(Arc::clone(plane)).build();
    let gate = Arc::new(Gate::default());
    let clock = Arc::clone(engine.clock());
    let g = Arc::clone(&gate);
    engine
        .register_service(
            "qos",
            fileio_example(),
            "FileIO",
            fileio_presentation(),
            WireFormat::Cdr,
            move |srv| {
                let gate = Arc::clone(&g);
                let clock = Arc::clone(&clock);
                srv.on("read", move |call| {
                    // Only the plug call (count == 0) blocks; the storm
                    // and victim calls just charge service time.
                    let count = call.u32("count").unwrap();
                    if count == 0 {
                        gate.wait();
                    }
                    clock.advance(Duration::from_nanos(SERVICE_NS));
                    call.set("return", Value::Bytes(vec![0x5A; count as usize])).unwrap();
                    0
                })
                .unwrap();
            },
        )
        .unwrap();
    (engine, gate)
}

/// Waits (in real time) for the lone worker to pull the plug call off the
/// queue, so every later submission queues behind it at sim time 0.
fn settle() {
    std::thread::sleep(Duration::from_millis(50));
}

/// The highest value that *could* have been recorded into the histogram,
/// from its top non-empty log2 bucket (exclusive ceiling).
fn dwell_ceiling(snapshot: &flexrpc_trace::MetricsSnapshot, name: &str) -> u64 {
    let h = snapshot.histogram(name).expect("histogram registered");
    let floor = h.buckets.iter().map(|(f, _)| *f).max().unwrap_or(0);
    if floor == 0 {
        1
    } else {
        floor * 2
    }
}

/// Tenant A storms at 6× tenant B's load with a quota of 64; both run at
/// weight 1. Weighted-fair dequeue alternates the two backlogged lanes,
/// so B's worst dwell tracks *B's own* backlog (≈ 2 × 16 calls), not A's
/// — under the old FIFO queue B's last call would sit behind all 64 of
/// A's (dwell ≥ 80 × SERVICE_NS, one log2 bucket higher). A's excess is
/// shed against its own quota; B sheds nothing.
#[test]
fn noisy_neighbor_cannot_move_victims_dwell() {
    let plane = ControlPlane::new();
    plane.register(TENANT_A, Policy::new().weight(1).quota(64));
    plane.register(TENANT_B, Policy::new().weight(1));
    let (engine, gate) = plugged_engine(&plane);
    let conn_plug = engine.connect("qos").tenant(TENANT_PLUG).establish().unwrap();
    let conn_a = engine.connect("qos").tenant(TENANT_A).establish().unwrap();
    let conn_b = engine.connect("qos").tenant(TENANT_B).establish().unwrap();

    let plug = conn_plug.submit(0, &read_request(0), &[]).unwrap();
    settle(); // the worker now holds the plug; sim time is frozen at 0

    // The storm: 96 calls against a quota of 64 — 32 must shed, charged
    // to A. Then the victim's steady 16.
    let mut a_tickets = Vec::new();
    let mut a_shed = 0u64;
    for _ in 0..96 {
        match conn_a.submit(0, &read_request(1), &[]) {
            Ok(t) => a_tickets.push(t),
            Err(EngineError::Overloaded) => a_shed += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    let b_tickets: Vec<_> =
        (0..16).map(|_| conn_b.submit(0, &read_request(1), &[]).unwrap()).collect();
    assert_eq!(a_shed, 32, "the storm's excess is shed at admission");

    gate.open();
    assert!(plug.wait().is_ok());
    for t in a_tickets {
        assert!(t.wait().is_ok());
    }
    for t in b_tickets {
        assert!(t.wait().is_ok());
    }

    let snap = engine.metrics().snapshot();
    assert_eq!(snap.counter("tenant.1.admitted"), 64);
    assert_eq!(snap.counter("tenant.1.shed"), 32, "shed charged to the offender");
    assert_eq!(snap.counter("tenant.2.admitted"), 16);
    assert_eq!(snap.counter("tenant.2.shed"), 0, "the victim shed nothing");
    assert_eq!(snap.counter("tenant.2.served"), 16);
    assert_eq!(snap.counter("engine.shed"), 32);

    // Equal weights alternate the lanes: B's 16th call dequeues at
    // position 32, so its dwell is exactly 32 × SERVICE_NS = 2^15 —
    // bucket ceiling 2^16. FIFO would start it at 80 × SERVICE_NS
    // (≈ 2^16.3), a bucket higher.
    let b_worst = dwell_ceiling(&snap, "tenant.2.dwell_ns");
    assert!(
        b_worst <= 1 << 16,
        "victim dwell ceiling {b_worst} exceeds the weighted-fair bound {}",
        1u64 << 16
    );
    engine.shutdown();
}

/// Raising a tenant's weight shifts the drain ratio: at weight 3 vs 1,
/// the heavy lane takes three of every four slots while both lanes are
/// backlogged, so the light lane's last call drains near the end.
#[test]
fn weights_divide_the_drain_deterministically() {
    let plane = ControlPlane::new();
    plane.register(TENANT_A, Policy::new().weight(3));
    plane.register(TENANT_B, Policy::new().weight(1));
    let (engine, gate) = plugged_engine(&plane);
    let conn_plug = engine.connect("qos").tenant(TENANT_PLUG).establish().unwrap();
    let conn_a = engine.connect("qos").tenant(TENANT_A).establish().unwrap();
    let conn_b = engine.connect("qos").tenant(TENANT_B).establish().unwrap();

    let plug = conn_plug.submit(0, &read_request(0), &[]).unwrap();
    settle();
    let a: Vec<_> = (0..16).map(|_| conn_a.submit(0, &read_request(1), &[]).unwrap()).collect();
    let b: Vec<_> = (0..16).map(|_| conn_b.submit(0, &read_request(1), &[]).unwrap()).collect();

    gate.open();
    assert!(plug.wait().is_ok());
    for t in a.into_iter().chain(b) {
        assert!(t.wait().is_ok());
    }

    // Equal backlogs, unequal weights: while both lanes are backlogged
    // the drain gives A three of every four slots, so A's 16 calls are
    // done by position 22 (mean dwell ≈ 11.3 × SERVICE_NS) while B's
    // tail waits out the full drain (mean ≈ 21.7 × SERVICE_NS). At
    // equal weights both means would be ≈ 16.5 × SERVICE_NS.
    let snap = engine.metrics().snapshot();
    let a_mean = snap.histogram("tenant.1.dwell_ns").unwrap().mean();
    let b_mean = snap.histogram("tenant.2.dwell_ns").unwrap().mean();
    assert!(
        a_mean * 3 < b_mean * 2,
        "weight 3 must drain markedly faster than weight 1 (A mean {a_mean}, B mean {b_mean})"
    );
    engine.shutdown();
}

/// A live `PolicyHandle::swap` applies to the very next admission: the
/// tenant's quota is tightened mid-storm without touching the engine,
/// the connection, or the calls already queued.
#[test]
fn policy_swap_applies_to_subsequent_admissions() {
    let plane = ControlPlane::new();
    let handle = plane.register(TENANT_A, Policy::new().quota(8));
    let (engine, gate) = plugged_engine(&plane);
    let conn_plug = engine.connect("qos").tenant(TENANT_PLUG).establish().unwrap();
    let conn = engine.connect("qos").tenant(TENANT_A).establish().unwrap();

    let plug = conn_plug.submit(0, &read_request(0), &[]).unwrap();
    settle();
    let first: Vec<_> = (0..8).map(|_| conn.submit(0, &read_request(1), &[]).unwrap()).collect();
    assert!(
        matches!(conn.submit(0, &read_request(1), &[]), Err(EngineError::Overloaded)),
        "quota 8 is exhausted"
    );

    // Tighten to 4: already-queued calls are untouched (8 remain), and
    // the lane stays over the new bound, so admissions keep shedding.
    assert_eq!(handle.swap(Policy::new().quota(4)), 2);
    assert!(matches!(conn.submit(0, &read_request(1), &[]), Err(EngineError::Overloaded)));

    // Widen to 16: the next submission is admitted immediately.
    plane.swap(TENANT_A, Policy::new().quota(16));
    let extra = conn.submit(0, &read_request(1), &[]).unwrap();

    gate.open();
    assert!(plug.wait().is_ok());
    for t in first.into_iter().chain([extra]) {
        assert!(t.wait().is_ok());
    }
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.counter("tenant.1.admitted"), 9);
    assert_eq!(snap.counter("tenant.1.shed"), 2);
    assert_eq!(snap.counter("tenant.1.policy_swaps"), 2);
    // The plane-level counter tracks swaps *through the plane*; the
    // direct handle swap shows up only on the tenant's own counter.
    assert_eq!(snap.counter("control.swaps"), 1);
    engine.shutdown();
}

/// The anonymous default tenant preserves pre-tenancy behavior: no
/// quota, weight 1, one lane — and the engine policy's high water still
/// sheds as the aggregate backstop.
#[test]
fn default_tenant_keeps_single_queue_semantics() {
    let engine =
        Engine::builder().workers(1).queue_depth(8).policy(Policy::new().high_water(2)).build();
    let gate = Arc::new(Gate::default());
    let clock = Arc::clone(engine.clock());
    let g = Arc::clone(&gate);
    engine
        .register_service(
            "qos",
            fileio_example(),
            "FileIO",
            fileio_presentation(),
            WireFormat::Cdr,
            move |srv| {
                let gate = Arc::clone(&g);
                let clock = Arc::clone(&clock);
                srv.on("read", move |call| {
                    gate.wait();
                    clock.advance(Duration::from_nanos(SERVICE_NS));
                    call.set("return", Value::Bytes(Vec::new())).unwrap();
                    0
                })
                .unwrap();
            },
        )
        .unwrap();
    let conn = engine.connect("qos").establish().unwrap();
    assert_eq!(conn.tenant(), TenantId::DEFAULT);

    let executing = conn.submit(0, &read_request(0), &[]).unwrap();
    settle();
    let queued: Vec<_> = (0..2).map(|_| conn.submit(0, &read_request(0), &[]).unwrap()).collect();
    assert!(matches!(conn.submit(0, &read_request(0), &[]), Err(EngineError::Overloaded)));

    gate.open();
    assert!(executing.wait().is_ok());
    for t in queued {
        assert!(t.wait().is_ok());
    }
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.counter("tenant.0.admitted"), 3);
    assert_eq!(snap.counter("tenant.0.shed"), 1, "backstop sheds charge the submitter");
    assert_eq!(snap.counter("engine.shed"), 1);
    engine.shutdown();
}

/// The deprecated builder knobs still work — they forward into the
/// engine-level `Policy` — so existing callers keep compiling (with a
/// deprecation warning) until they migrate.
#[test]
#[allow(deprecated)]
fn deprecated_knobs_forward_into_the_policy() {
    let builder = Engine::builder()
        .high_water(7)
        .dwell_limit(Duration::from_millis(3))
        .breaker(5, Duration::from_millis(9));
    let engine = builder.build();
    let policy = engine.policy();
    assert_eq!(policy.high_water_value(), Some(7));
    assert_eq!(policy.dwell_limit_ns(), Some(3_000_000));
    assert_eq!(policy.breaker_config(), Some((5, 9_000_000)));
    engine.shutdown();
}
