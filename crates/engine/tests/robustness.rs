//! Robustness-layer acceptance tests for the engine: admission control
//! (shedding at the high-water mark), queue-dwell deadlines, pre-failed
//! tickets for dead-on-arrival deadlines, cancel-on-drain shutdown, and
//! deadline enforcement while a call is stuck *executing*.
//!
//! Every deadline here is measured on the engine's deterministic sim
//! clock: tests advance it explicitly, so expiry is exact, never a race
//! against wall time. Real-time sleeps appear only to sequence threads
//! (letting a worker pick up a job), never to define a deadline.

use flexrpc_core::ir::fileio_example;
use flexrpc_core::present::InterfacePresentation;
use flexrpc_core::value::Value;
use flexrpc_engine::{expose_on_net, ClientInfo, Engine, EngineBuilder, EngineError, Policy};
use flexrpc_marshal::WireFormat;
use flexrpc_net::sunrpc::AcceptStat;
use flexrpc_net::{NetConfig, SimNet};
use flexrpc_runtime::RpcError;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A latch the test holds closed while calls pile up behind it.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

fn fileio_presentation() -> InterfacePresentation {
    let m = fileio_example();
    let iface = m.interface("FileIO").unwrap();
    InterfacePresentation::default_for(&m, iface).unwrap()
}

/// Registers a FileIO service whose `read` blocks on `gate` before
/// answering — a stalled server the tests control precisely.
fn register_gated(engine: &Arc<Engine>, name: &str, gate: &Arc<Gate>) {
    let gate = Arc::clone(gate);
    engine
        .register_service(
            name,
            fileio_example(),
            "FileIO",
            fileio_presentation(),
            WireFormat::Cdr,
            move |srv| {
                let g = Arc::clone(&gate);
                srv.on("read", move |call| {
                    g.wait();
                    let count = call.u32("count").unwrap() as usize;
                    call.set("return", Value::Bytes(vec![0x5A; count])).unwrap();
                    0
                })
                .unwrap();
            },
        )
        .unwrap();
}

/// A CDR-marshalled `read(count)` request.
fn read_request(count: u32) -> Vec<u8> {
    let mut w = flexrpc_runtime::wire::AnyWriter::new(WireFormat::Cdr);
    w.put_u32(count);
    w.into_bytes()
}

fn gated_engine(builder: EngineBuilder) -> (Arc<Engine>, Arc<Gate>) {
    let engine = builder.build();
    let gate = Arc::new(Gate::default());
    register_gated(&engine, "slow", &gate);
    (engine, gate)
}

/// Waits (in real time) for the lone worker to pull the head job off the
/// queue, so later submissions count queue dwell from a known state.
fn settle() {
    thread::sleep(Duration::from_millis(50));
}

#[test]
fn queue_above_high_water_sheds_instead_of_blocking() {
    let (engine, gate) = gated_engine(
        Engine::builder().workers(1).queue_depth(8).policy(Policy::new().high_water(2)),
    );
    let conn = engine.connect("slow").establish().unwrap();
    let req = read_request(4);

    let executing = conn.submit(0, &req, &[]).unwrap();
    settle(); // worker now holds the first call at the gate
    let queued: Vec<_> = (0..2).map(|_| conn.submit(0, &req, &[]).unwrap()).collect();
    // The backlog is at the high-water mark: admission fails fast, the
    // submitter is not blocked, and the engine keeps serving what it has.
    assert!(matches!(conn.submit(0, &req, &[]), Err(EngineError::Overloaded)));
    assert!(matches!(conn.submit(0, &req, &[]), Err(EngineError::Overloaded)));

    gate.open();
    assert!(executing.wait().is_ok());
    for t in queued {
        assert!(t.wait().is_ok(), "admitted calls still complete");
    }
    let stats = engine.stats();
    assert_eq!(stats.calls_shed, 2);
    assert_eq!(stats.calls_served, 3);
    assert_eq!(stats.in_flight, 0);
    assert!(stats.shed_rate() > 0.0);
}

#[test]
fn queued_call_expires_at_the_dwell_limit() {
    let (engine, gate) = gated_engine(
        Engine::builder()
            .workers(1)
            .queue_depth(8)
            .policy(Policy::new().dwell_limit(Duration::from_millis(1))),
    );
    let conn = engine.connect("slow").establish().unwrap();
    let req = read_request(4);

    let executing = conn.submit(0, &req, &[]).unwrap();
    settle(); // the first call is past its dwell check, stalled at the gate
    let stale = conn.submit(0, &req, &[]).unwrap();
    // 2 ms of virtual time pass while the job waits for the lone worker.
    engine.clock().advance(Duration::from_millis(2));
    gate.open();

    assert!(executing.wait().is_ok(), "a started call is never expired retroactively");
    assert!(matches!(stale.wait(), Err(RpcError::DeadlineExceeded)));
    let stats = engine.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.calls_served, 1);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn dead_on_arrival_deadline_never_enters_the_queue() {
    let (engine, gate) = gated_engine(Engine::builder().workers(1).queue_depth(8));
    let conn = engine.connect("slow").establish().unwrap();
    engine.clock().advance(Duration::from_millis(10));
    let past = Some(engine.clock().now_ns() - 1_000_000);
    let ticket = conn.submit_with(0, &read_request(4), &[], past).unwrap();
    assert!(matches!(ticket.wait(), Err(RpcError::DeadlineExceeded)));
    let stats = engine.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.in_flight, 0, "the job was refused at admission, not queued");
    gate.open();
    engine.shutdown();
}

#[test]
fn shutdown_cancels_unstarted_work_and_finishes_started_work() {
    let (engine, gate) = gated_engine(Engine::builder().workers(1).queue_depth(8));
    let conn = engine.connect("slow").establish().unwrap();
    let req = read_request(4);

    let started = conn.submit(0, &req, &[]).unwrap();
    settle(); // the worker owns the first call
    let unstarted = conn.submit(0, &req, &[]).unwrap();

    // Shutdown drains the queue immediately (failing the unstarted call),
    // then blocks joining the worker still stuck at the gate.
    let eng = Arc::clone(&engine);
    let closer = thread::spawn(move || eng.shutdown());
    assert!(
        matches!(unstarted.wait(), Err(RpcError::Cancelled)),
        "a queued-but-unstarted call learns of the drain immediately"
    );
    gate.open();
    assert!(started.wait().is_ok(), "a started call runs to completion");
    closer.join().unwrap();

    let stats = engine.stats();
    assert_eq!(stats.calls_cancelled, 1);
    assert_eq!(stats.calls_served, 1);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn stalled_execution_trips_the_ticket_deadline() {
    let (engine, gate) = gated_engine(Engine::builder().workers(1).queue_depth(8));
    let conn = engine.connect("slow").establish().unwrap();
    let deadline = Some(engine.clock().now_ns() + 1_000_000); // 1 ms
    let ticket = conn.submit_with(0, &read_request(4), &[], deadline).unwrap();
    settle(); // the call is *executing*, stuck inside the handler
    engine.clock().advance(Duration::from_millis(2));
    assert!(
        matches!(ticket.wait_until(deadline), Err(RpcError::DeadlineExceeded)),
        "a deadline fires even while the call is stuck executing"
    );
    gate.open();
    engine.shutdown();
}

#[test]
fn network_clients_see_shed_calls_as_system_err() {
    let (engine, gate) = gated_engine(
        Engine::builder().workers(1).queue_depth(8).policy(Policy::new().high_water(2)),
    );
    let net = SimNet::with_config(NetConfig::default());
    let server = net.add_host("server");
    let client_host = net.add_host("client");
    let pres = fileio_presentation();
    expose_on_net(&engine, &net, server, "slow", 77, 1, ClientInfo::of(&pres)).unwrap();

    // Eight pipelined calls hit a one-worker engine that admits at most
    // two queued jobs: the overflow must come back as SYSTEM_ERR replies,
    // not a torn connection.
    let mut pipe =
        flexrpc_engine::SunRpcPipeline::new(Arc::clone(&net), client_host, server, 77, 1);
    let req = read_request(4);
    for _ in 0..8 {
        pipe.submit(0, &req);
    }
    let g = Arc::clone(&gate);
    let opener = thread::spawn(move || {
        thread::sleep(Duration::from_millis(100));
        g.open();
    });
    let replies = pipe.flush().unwrap();
    opener.join().unwrap();

    assert_eq!(replies.len(), 8, "every call got a reply");
    let served = replies.iter().filter(|(s, _)| *s == AcceptStat::Success).count();
    let shed = replies.iter().filter(|(s, _)| *s == AcceptStat::SystemErr).count();
    assert_eq!(served + shed, 8);
    assert!(served > 0, "the engine kept serving under overload");
    assert!(shed > 0, "the overflow was shed");
    assert_eq!(engine.stats().calls_shed as usize, shed);
}
