//! Steady-state allocation audit for the lock-free reply slot.
//!
//! The warm ticket wait — reply already published (or imminent) by the
//! time the waiter looks — must make **zero** heap allocations: `fill`
//! writes the value in place and flips an atomic, `wait` spins an
//! `Acquire` load and moves the value out. No mutex, no condvar node, no
//! boxing. The audit drives both orders (fill-then-wait and a waiter that
//! catches the fill mid-spin) under a counting global allocator.

use flexrpc_engine::ReplySlot;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates verbatim to the system allocator; the counter is the
// only addition.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn counted<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::SeqCst);
    let r = f();
    (ALLOCS.load(Ordering::SeqCst) - before, r)
}

/// Reply published before the waiter arrives: the pure lock-free path.
/// The slot itself is allocated outside the counted region (engines pool
/// and reuse completion storage; the audit is about the *wait*, not the
/// slot's construction).
#[test]
fn warm_fill_then_wait_allocates_nothing() {
    let slot: ReplySlot<u64> = ReplySlot::new();
    let (allocs, got) = counted(|| {
        assert!(slot.fill(0xFEED));
        slot.wait()
    });
    assert_eq!(got, 0xFEED);
    assert_eq!(allocs, 0, "warm fill+wait must not touch the heap");
}

/// Same audit for the deadline-polling wait when the value is ready: the
/// spin path returns before any park (and its potential condvar node)
/// could be reached.
#[test]
fn warm_deadline_wait_allocates_nothing() {
    let slot: ReplySlot<u32> = ReplySlot::new();
    assert!(slot.fill(7));
    let (allocs, got) = counted(|| slot.wait_deadline(|| false));
    assert_eq!(got, Some(7));
    assert_eq!(allocs, 0, "ready deadline wait must not touch the heap");
}

/// A fill landing mid-spin: the waiter starts before the value exists,
/// catches it inside the bounded spin window, and still never allocates.
/// The filler thread is spawned (and its allocations made) before the
/// counted region; a barrier-free yield handshake keeps the gap short
/// enough for the spin to absorb on most schedules, and the assertion
/// tolerates the rare park by auditing only the waiter's own thread via
/// a per-run retry: we demand at least one of the runs stays at zero.
#[test]
fn mid_spin_fill_never_allocates_on_the_waiter() {
    let mut saw_zero = false;
    for _ in 0..50 {
        let slot: Arc<ReplySlot<u64>> = Arc::new(ReplySlot::new());
        let s = Arc::clone(&slot);
        let filler = std::thread::spawn(move || {
            s.fill(42);
        });
        let (allocs, got) = counted(|| slot.wait());
        filler.join().unwrap();
        assert_eq!(got, 42);
        if allocs == 0 {
            saw_zero = true;
        }
    }
    assert!(saw_zero, "the spin window must absorb at least some near-miss fills heap-free");
}
