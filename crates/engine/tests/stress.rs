//! Multi-threaded stress tests for the invariants the engine leans on:
//! kernel name-table uniqueness under contention, and pipe FIFO ordering
//! through a many-worker engine.

use flexrpc_core::present::InterfacePresentation;
use flexrpc_core::value::Value;
use flexrpc_engine::{ClientInfo, Engine};
use flexrpc_kernel::Kernel;
use flexrpc_marshal::WireFormat;
use flexrpc_pipes::circ::CircBuf;
use flexrpc_pipes::server::{
    register_pipe_handlers, server_presentation, PipeServerStats, ReadPresentation,
};
use flexrpc_pipes::{fileio_module, WOULDBLOCK};
use flexrpc_runtime::{ClientStub, RpcError};
use parking_lot::Mutex;
use std::sync::{Arc, Barrier};

/// Unique-mode name installation stays unique when many threads transfer
/// the same right concurrently: everyone sees one name, the reference
/// count absorbs every transfer, and the name dies only with the last ref.
#[test]
fn name_table_unique_names_survive_contention() {
    const THREADS: usize = 8;
    const TRANSFERS: usize = 100;

    let kernel = Kernel::new();
    let server = kernel.create_task("server", 64).expect("task");
    let client = kernel.create_task("client", 64).expect("task");
    let port = kernel.port_allocate(server).expect("port");

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let kernel = Arc::clone(&kernel);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (0..TRANSFERS)
                    .map(|_| kernel.extract_send_right(server, port, client).expect("transfer"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let names: Vec<_> = handles.into_iter().flat_map(|h| h.join().expect("no panics")).collect();
    assert_eq!(names.len(), THREADS * TRANSFERS);
    let first = names[0];
    assert!(names.iter().all(|&n| n == first), "unique mode must reuse one name per (task, port)");
    assert_eq!(kernel.name_count(client), 1);

    // Every transfer added one send reference; releasing them all (from
    // many threads again) must end with the name gone — no double frees,
    // no leaked references.
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let kernel = Arc::clone(&kernel);
            std::thread::spawn(move || {
                for _ in 0..TRANSFERS {
                    kernel.deallocate_right(client, first).expect("release");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panics");
    }
    assert_eq!(kernel.name_count(client), 0, "last reference removed the name");
    assert!(kernel.deallocate_right(client, first).is_err(), "name is dead");
}

/// Distinct ports transferred concurrently into one task mint distinct
/// names — uniqueness per port never collapses names across ports.
#[test]
fn name_table_distinct_ports_distinct_names() {
    const PORTS: usize = 16;

    let kernel = Kernel::new();
    let server = kernel.create_task("server", 64).expect("task");
    let client = kernel.create_task("client", 64).expect("task");
    let ports: Vec<_> = (0..PORTS).map(|_| kernel.port_allocate(server).expect("port")).collect();

    let barrier = Arc::new(Barrier::new(PORTS));
    let handles: Vec<_> = ports
        .into_iter()
        .map(|port| {
            let kernel = Arc::clone(&kernel);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Transfer the same port a few times from this thread too:
                // self-consistency and cross-port uniqueness at once.
                let names: Vec<_> = (0..4)
                    .map(|_| kernel.extract_send_right(server, port, client).expect("transfer"))
                    .collect();
                assert!(names.windows(2).all(|w| w[0] == w[1]));
                names[0]
            })
        })
        .collect();

    let names: Vec<_> = handles.into_iter().map(|h| h.join().expect("ok")).collect();
    let unique: std::collections::HashSet<_> = names.iter().collect();
    assert_eq!(unique.len(), PORTS, "one distinct name per port");
    assert_eq!(kernel.name_count(client), PORTS);
}

fn pipe_engine(workers: usize, cap: usize) -> (Arc<Engine>, Arc<PipeServerStats>) {
    let engine = Engine::builder().workers(workers).queue_depth(workers * 4).build();
    let ring = Arc::new(Mutex::new(CircBuf::new(cap)));
    let stats = Arc::new(PipeServerStats::default());
    let (r, s) = (Arc::clone(&ring), Arc::clone(&stats));
    engine
        .register_service(
            "pipe",
            fileio_module(),
            "FileIO",
            server_presentation(ReadPresentation::Default),
            WireFormat::Cdr,
            move |srv| register_pipe_handlers(srv, &r, &s, ReadPresentation::Default),
        )
        .expect("service registers");
    (engine, stats)
}

fn pipe_client(engine: &Arc<Engine>) -> ClientStub {
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    let conn = engine.connect("pipe").client(ClientInfo::of(&pres)).establish().expect("connect");
    let compiled =
        flexrpc_core::program::CompiledInterface::compile(&m, iface, &pres).expect("compiles");
    ClientStub::new(compiled, WireFormat::Cdr, Box::new(conn))
}

fn status_of(r: Result<u32, RpcError>) -> u32 {
    match r {
        Ok(s) => s,
        Err(RpcError::Remote(s)) => s,
        Err(e) => panic!("rpc failed: {e}"),
    }
}

/// Pipe bytes stay FIFO when the server runs on a many-worker engine: a
/// writer streams a strictly increasing sequence while a concurrent reader
/// drains it, and the reader must see the exact same sequence.
#[test]
fn pipe_fifo_order_with_many_workers() {
    const CHUNK: usize = 64;
    const CHUNKS: usize = 400;

    let (engine, _) = pipe_engine(8, 4 * CHUNK);

    let written: Vec<u8> = (0..CHUNKS)
        .flat_map(|i| {
            // Per-chunk header then filler: any reordering or tearing of
            // chunks breaks the reassembled stream.
            let mut c = vec![(i >> 8) as u8, (i & 0xFF) as u8];
            c.resize(CHUNK, (i % 251) as u8);
            c
        })
        .collect();

    let writer = {
        let mut client = pipe_client(&engine);
        let data = written.clone();
        std::thread::spawn(move || {
            for chunk in data.chunks(CHUNK) {
                let mut wf = client.new_frame("write").expect("frame");
                loop {
                    wf[0] = Value::Bytes(chunk.to_vec());
                    match status_of(client.call("write", &mut wf)) {
                        0 => break,
                        WOULDBLOCK => std::thread::yield_now(),
                        s => panic!("write failed: {s}"),
                    }
                }
            }
        })
    };

    let mut client = pipe_client(&engine);
    let mut seen = Vec::with_capacity(written.len());
    while seen.len() < written.len() {
        let mut rf = client.new_frame("read").expect("frame");
        rf[0] = Value::U32(CHUNK as u32);
        match status_of(client.call("read", &mut rf)) {
            0 | WOULDBLOCK => {}
            s => panic!("read failed: {s}"),
        }
        let Value::Bytes(data) = &rf[1] else { panic!("read reply is not bytes") };
        seen.extend_from_slice(data);
        if data.is_empty() {
            std::thread::yield_now();
        }
    }
    writer.join().expect("writer ok");

    assert_eq!(seen, written, "pipe reordered or corrupted the stream");
    assert_eq!(engine.stats().dispatch_errors, 0);
    engine.shutdown();
}
