//! End-to-end acceptance tests: one engine, many concurrent clients, mixed
//! program combinations.
//!
//! The headline test drives eight concurrent clients — split across two
//! pipe services (default vs `dealloc(never)` read presentation) and two
//! client trust levels — against a single engine and asserts the three
//! engine guarantees together:
//!
//! 1. every reply is correct (pipe bytes conserved, patterns intact);
//! 2. the program cache compiled fewer programs than connections arrived
//!    (combination reuse, observable through hit counters);
//! 3. the `dealloc(never)` copy savings measured by the seed's single-client
//!    figures still hold with the server shared: zero intermediate copies,
//!    while the default presentation copies every byte read.

use flexrpc_core::present::{InterfacePresentation, Trust};
use flexrpc_core::value::Value;
use flexrpc_engine::{expose_on_net, ClientInfo, Engine, SunRpcPipeline};
use flexrpc_marshal::WireFormat;
use flexrpc_net::sunrpc::AcceptStat;
use flexrpc_net::SimNet;
use flexrpc_pipes::circ::CircBuf;
use flexrpc_pipes::server::{
    register_pipe_handlers, server_presentation, PipeServerStats, ReadPresentation,
};
use flexrpc_pipes::{fileio_module, WOULDBLOCK};
use flexrpc_runtime::{ClientStub, RpcError};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const CHUNK: usize = 256;
const ROUNDS: usize = 32;
const CLIENTS_PER_SERVICE: usize = 4;

/// Registers a pipe service on the engine; returns its ring and stats.
fn register_pipe_service(
    engine: &Arc<Engine>,
    name: &str,
    mode: ReadPresentation,
    cap: usize,
) -> (Arc<Mutex<CircBuf>>, Arc<PipeServerStats>) {
    let ring = Arc::new(Mutex::new(CircBuf::new(cap)));
    let stats = Arc::new(PipeServerStats::default());
    let (r, s) = (Arc::clone(&ring), Arc::clone(&stats));
    engine
        .register_service(
            name,
            fileio_module(),
            "FileIO",
            server_presentation(mode),
            WireFormat::Cdr,
            move |srv| register_pipe_handlers(srv, &r, &s, mode),
        )
        .expect("service registers");
    (ring, stats)
}

/// A default FileIO client presentation with the given trust in the server.
fn client_presentation(trust: Trust) -> InterfacePresentation {
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let mut pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    pres.trust = trust;
    pres
}

/// Builds a client stub over an engine connection for `service`.
fn pipe_client(engine: &Arc<Engine>, service: &str, trust: Trust) -> ClientStub {
    let pres = client_presentation(trust);
    let conn = engine.connect(service).client(ClientInfo::of(&pres)).establish().expect("connect");
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let compiled =
        flexrpc_core::program::CompiledInterface::compile(&m, iface, &pres).expect("compiles");
    ClientStub::new(compiled, WireFormat::Cdr, Box::new(conn))
}

/// Treats a remote status as a value (the pipe protocol's EAGAIN idiom).
fn status_of(r: Result<u32, RpcError>) -> u32 {
    match r {
        Ok(s) => s,
        Err(RpcError::Remote(s)) => s,
        Err(e) => panic!("rpc failed: {e}"),
    }
}

/// Writes `CHUNK` pattern bytes, retrying while the pipe is full. Then
/// tries one read; returns the bytes it got (possibly empty on
/// `WOULDBLOCK`), asserting every byte carries the service's pattern.
fn write_then_read(client: &mut ClientStub, pattern: u8) -> usize {
    let mut wf = client.new_frame("write").expect("frame");
    loop {
        wf[0] = Value::Bytes(vec![pattern; CHUNK]);
        match status_of(client.call("write", &mut wf)) {
            0 => break,
            WOULDBLOCK => std::thread::yield_now(),
            s => panic!("write failed with status {s}"),
        }
    }
    let mut rf = client.new_frame("read").expect("frame");
    rf[0] = Value::U32(CHUNK as u32);
    match status_of(client.call("read", &mut rf)) {
        0 | WOULDBLOCK => {}
        s => panic!("read failed with status {s}"),
    }
    let Value::Bytes(data) = &rf[1] else { panic!("read reply is not bytes") };
    assert!(data.iter().all(|&b| b == pattern), "pipe interleaved foreign bytes");
    data.len()
}

/// Reads until the pipe reports empty, returning the bytes drained.
fn drain(client: &mut ClientStub, pattern: u8) -> usize {
    let mut total = 0;
    loop {
        let mut rf = client.new_frame("read").expect("frame");
        rf[0] = Value::U32(CHUNK as u32);
        let status = status_of(client.call("read", &mut rf));
        let Value::Bytes(data) = &rf[1] else { panic!("read reply is not bytes") };
        assert!(data.iter().all(|&b| b == pattern));
        total += data.len();
        if status == WOULDBLOCK {
            return total;
        }
    }
}

#[test]
fn eight_clients_two_services_two_trusts_one_engine() {
    let engine = Engine::builder().workers(4).queue_depth(32).build();
    // Ring capacity exceeds each service's total traffic, so the
    // dealloc(never) ring never wraps and the paper's "no wrap, no copy"
    // fast path is the one under test.
    let cap = 2 * CLIENTS_PER_SERVICE * ROUNDS * CHUNK;
    let (_, default_stats) =
        register_pipe_service(&engine, "pipe-default", ReadPresentation::Default, cap);
    let (_, never_stats) =
        register_pipe_service(&engine, "pipe-never", ReadPresentation::DeallocNever, cap);

    // 8 connections over 4 combinations: {service} × {trust}.
    let plan: Vec<(&str, Trust, u8)> = (0..CLIENTS_PER_SERVICE)
        .flat_map(|i| {
            let trust = if i % 2 == 0 { Trust::None } else { Trust::Leaky };
            [("pipe-default", trust, 0xAAu8), ("pipe-never", trust, 0x55u8)]
        })
        .collect();
    assert_eq!(plan.len(), 2 * CLIENTS_PER_SERVICE);

    let handles: Vec<_> = plan
        .iter()
        .map(|&(service, trust, pattern)| {
            let mut client = pipe_client(&engine, service, trust);
            std::thread::spawn(move || {
                (0..ROUNDS).map(|_| write_then_read(&mut client, pattern)).sum::<usize>()
            })
        })
        .collect();
    let read_during: usize = handles.into_iter().map(|h| h.join().expect("client ok")).sum();

    // (a) Correctness: every written byte comes back exactly once, carrying
    // its service's pattern (asserted inside the clients), none invented.
    let mut d = pipe_client(&engine, "pipe-default", Trust::None);
    let mut n = pipe_client(&engine, "pipe-never", Trust::None);
    let leftover = drain(&mut d, 0xAA) + drain(&mut n, 0x55);
    let written = plan.len() * ROUNDS * CHUNK;
    assert_eq!(read_during + leftover, written, "pipe bytes conserved");

    // (b) Combination reuse: 10 connections (8 clients + 2 drainers), only
    // 4 distinct combinations, so only 4 compilations.
    let stats = engine.stats();
    assert_eq!(stats.connections, 10);
    assert_eq!(stats.cache.misses, 4, "one compile per combination");
    assert!(
        engine.cache().compilations() < stats.connections,
        "programs ({}) must be shared across connections ({})",
        engine.cache().compilations(),
        stats.connections,
    );
    assert_eq!(stats.cache.hits, 6, "6 of 10 connections reused a program");
    assert_eq!(stats.dispatch_errors, 0);
    assert_eq!(stats.in_flight, 0);

    // (b') Cached programs are specialized: fusion collapsed at least one
    // run of adjacent ops somewhere in the cached compilations, so the
    // engine's serving path runs fewer interpreter dispatches than the
    // threaded op count.
    assert!(stats.cache.source_ops > 0, "op totals are recorded");
    assert!(
        stats.cache.fused_ops < stats.cache.source_ops,
        "cached programs must be fused: {} dispatches vs {} threaded ops",
        stats.cache.fused_ops,
        stats.cache.source_ops,
    );

    // (c) The seed's dealloc(never) copy delta holds under concurrency:
    // the default service copied every byte its readers got; the
    // dealloc(never) service marshalled straight from the ring.
    let default_read = default_stats.intermediate_copy_bytes.load(Ordering::Relaxed);
    assert!(default_read > 0, "default presentation pays the copy");
    assert_eq!(never_stats.intermediate_copy_bytes.load(Ordering::Relaxed), 0);
    assert_eq!(never_stats.wrap_fallbacks.load(Ordering::Relaxed), 0);

    engine.shutdown();
}

/// A pipelined Sun RPC batch executes across workers *concurrently*: four
/// calls whose handler blocks on a 4-way barrier can only complete if all
/// four records of the batch are in flight at once.
#[test]
fn pipelined_batch_executes_concurrently() {
    let engine = Engine::builder().workers(4).queue_depth(16).build();
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let b = Arc::clone(&barrier);
    engine
        .register_service(
            "gate",
            fileio_module(),
            "FileIO",
            server_presentation(ReadPresentation::Default),
            WireFormat::Xdr,
            move |srv| {
                let b = Arc::clone(&b);
                srv.on("write", move |_call| {
                    b.wait();
                    0
                })
                .expect("write registers");
            },
        )
        .expect("service registers");

    let net = SimNet::new();
    let client_host = net.add_host("client");
    let server_host = net.add_host("server");
    let client = ClientInfo::of(&client_presentation(Trust::None));
    expose_on_net(&engine, &net, server_host, "gate", 700, 1, client).expect("exposes");

    let mut pipeline = SunRpcPipeline::new(Arc::clone(&net), client_host, server_host, 700, 1);
    let write_op = 1; // FileIO op order: read, write.
    for _ in 0..4 {
        let mut w = flexrpc_runtime::wire::AnyWriter::new(WireFormat::Xdr);
        w.put_bytes(b"ping");
        pipeline.submit(write_op, &w.into_bytes());
    }
    assert_eq!(pipeline.outstanding(), 4);
    let replies = pipeline.flush().expect("batch completes — proves concurrency");
    assert_eq!(replies.len(), 4);
    assert!(replies.iter().all(|(stat, _)| *stat == AcceptStat::Success));

    let stats = engine.stats();
    assert_eq!(stats.calls_served, 4);
    assert!(stats.peak_in_flight >= 4, "all four XIDs were outstanding together");
}

/// The engine-hosted NFS server is indistinguishable from the seed's
/// dedicated `serve_nfs` loop: the Figure 2 client harness reads a file
/// through it, conventional and `[special]` presentations alike.
#[test]
fn engine_hosted_nfs_serves_the_fig2_clients() {
    use flexrpc_nfs::client::{ClientVariant, NfsClientHarness};
    use flexrpc_nfs::server::{nfs_presentation, register_nfs_handlers, FileStore};
    use flexrpc_nfs::{nfs_module, NFS_PROGRAM, NFS_VERSION};

    let engine = Engine::builder().workers(2).queue_depth(16).build();
    let store = Arc::new(Mutex::new(FileStore::new()));
    let m = nfs_module();
    let iface_name = m.interfaces[0].name.clone();
    let st = Arc::clone(&store);
    engine
        .register_service("nfs", m, &iface_name, nfs_presentation(), WireFormat::Xdr, move |srv| {
            register_nfs_handlers(srv, &st)
        })
        .expect("service registers");

    let len = 20_000;
    let data = flexrpc_nfs::server::test_file(len, 7);
    let fh = store.lock().add_file(data.clone());

    let net = SimNet::new();
    let client_host = net.add_host("client");
    let server_host = net.add_host("server");
    let client = ClientInfo::of(&nfs_presentation());
    expose_on_net(&engine, &net, server_host, "nfs", NFS_PROGRAM, NFS_VERSION, client)
        .expect("exposes");

    let mut harness = NfsClientHarness::new(Arc::clone(&net), client_host, server_host, fh, len);
    for variant in [ClientVariant::ConventionalGenerated, ClientVariant::SpecialGenerated] {
        let attrs = harness.read_file(variant, len, 8192).expect("read succeeds");
        assert_eq!(attrs.size as usize, len);
        assert_eq!(harness.user_buffer(), data, "{variant:?} delivered the file intact");
    }
    assert_eq!(engine.stats().calls_served, 2 * len.div_ceil(8192) as u64);
    assert_eq!(engine.cache().compilations(), 1, "both variants share the server program");
}
