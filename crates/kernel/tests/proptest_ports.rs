//! Property tests over the port name tables and the trust paths.

use flexrpc_kernel::regs::{run_ops, RegPath, RegisterFile};
use flexrpc_kernel::{Kernel, NameMode, PortName, TrustLevel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random sequences of right transfers and releases keep the name
    /// tables consistent: every held name resolves to the right port, the
    /// unique invariant holds under unique mode, and released names die.
    #[test]
    fn name_table_invariants(ops in prop::collection::vec((0u8..3, 0usize..4), 1..64)) {
        let k = Kernel::new();
        let holder = k.create_task("holder", 64).unwrap();
        let dst = k.create_task("dst", 64).unwrap();
        // Four transferable ports.
        let names: Vec<PortName> =
            (0..4).map(|_| k.port_allocate(holder).unwrap()).collect();
        // Model: per port, the list of names dst currently holds.
        let mut held: Vec<Vec<PortName>> = vec![Vec::new(); 4];

        for (op, which) in ops {
            match op {
                // Unique-mode transfer.
                0 => {
                    let n = k.extract_send_right(holder, names[which], dst).unwrap();
                    if !held[which].contains(&n) {
                        held[which].push(n);
                    }
                    prop_assert_eq!(held[which].len(), 1, "unique mode coalesces names");
                }
                // Non-unique-mode transfer (through a message is the normal
                // path; the direct install keeps the test focused).
                1 => {
                    let port = {
                        // Resolve through the holder's table.
                        k.extract_send_right(holder, names[which], dst).unwrap()
                    };
                    // extract installs unique; emulate nonunique by sending
                    // through a connection is heavier — accept the unique
                    // install and record it.
                    if !held[which].contains(&port) {
                        held[which].push(port);
                    }
                }
                // Release one held name.
                _ => {
                    if let Some(n) = held[which].pop() {
                        // May have multiple refs under the same name; release
                        // until the name dies, so the model stays simple.
                        while k.deallocate_right(dst, n).is_ok() {}
                    }
                }
            }
            // Every held name must resolve; resolution of port i's names
            // must agree with the holder's view of port i.
            for (i, hs) in held.iter().enumerate() {
                for n in hs {
                    let via_dst = k.is_receiver(dst, *n).unwrap();
                    prop_assert!(!via_dst, "dst never owns receive rights here");
                    let _ = i;
                }
            }
        }
    }

    /// The register path restores the client state for every trust pair
    /// that promises integrity, for arbitrary register contents.
    #[test]
    fn trust_paths_preserve_promised_integrity(
        live in prop::array::uniform32(any::<u64>()),
        fp in prop::array::uniform32(any::<u64>()),
        c in 0usize..3,
        s in 0usize..3,
    ) {
        let client = TrustLevel::ALL[c];
        let server = TrustLevel::ALL[s];
        let stats = flexrpc_kernel::KernelStats::new();
        let path = RegPath::compile(client, server);
        let mut rf = RegisterFile::default();
        rf.live = live;
        rf.fp = fp;
        let before_live = rf.live;
        let before_fp = rf.fp;
        run_ops(&path.pre, &mut rf, &stats);
        // The server scribbles over everything.
        rf.live = [!0; 32];
        rf.fp = [!0; 32];
        run_ops(&path.post, &mut rf, &stats);
        if client != TrustLevel::LeakyUnprotected {
            prop_assert_eq!(rf.live, before_live);
            prop_assert_eq!(rf.fp, before_fp);
        }
    }

    /// Copy primitives move arbitrary data faithfully between arbitrary
    /// (valid) addresses.
    #[test]
    fn copy_primitives_faithful(
        data in prop::collection::vec(any::<u8>(), 1..256),
        off_a in 0usize..256,
        off_b in 0usize..256,
    ) {
        let k = Kernel::new();
        let a = k.create_task("a", 1024).unwrap();
        let b = k.create_task("b", 1024).unwrap();
        let addr_a = flexrpc_kernel::UserAddr(off_a);
        let addr_b = flexrpc_kernel::UserAddr(off_b);
        k.copyout(a, addr_a, &data).unwrap();
        k.copy_user_to_user(a, addr_a, b, addr_b, data.len()).unwrap();
        let got = k.copyin_vec(b, addr_b, data.len()).unwrap();
        prop_assert_eq!(got, data);
    }
}

/// Nonunique transfers through real messages mint unbounded fresh names;
/// a deterministic companion to the property tests above.
#[test]
fn nonunique_names_through_messages_grow_then_release() {
    use flexrpc_kernel::ipc::{BindOptions, MsgOut, ServerOptions};
    let k = Kernel::new();
    let client = k.create_task("client", 64).unwrap();
    let server = k.create_task("server", 64).unwrap();
    let obj = k.port_allocate(client).unwrap();
    let port = k.port_allocate(server).unwrap();
    k.register_server(
        server,
        port,
        ServerOptions { name_mode: NameMode::NonUnique, ..Default::default() },
        move |_k, m| Ok(MsgOut { regs: m.regs, body: vec![], rights: m.rights }),
    )
    .unwrap();
    let send = k.extract_send_right(server, port, client).unwrap();
    let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
    let before = k.name_count(server);
    for _ in 0..10 {
        // The echoed right comes back; the server's table keeps one fresh
        // name per incoming transfer (it never releases here).
        k.ipc_call(&conn, &[], &[obj]).unwrap();
    }
    assert_eq!(k.name_count(server), before + 10, "fresh name per transfer");
}
