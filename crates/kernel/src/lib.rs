//! A simulated microkernel substrate for the flexrpc reproduction.
//!
//! The paper's measurements ran on Mach 3.0 with a new "streamlined" IPC path
//! (HP730, Lites single server). We cannot reproduce that hardware or kernel,
//! so this crate builds the closest synthetic equivalent in which **all the
//! work the paper measures is real work**:
//!
//! * Every task owns a real byte arena standing in for its address space;
//!   [`Kernel::copyin`]/[`Kernel::copyout`] and the IPC body transfer are
//!   real `memcpy`s between arenas ([`task`]).
//! * Port rights live in real per-task hash tables with Mach's unique-name
//!   rule (reverse lookup + reference counting) and the paper's relaxed
//!   `[nonunique]` fast path ([`ports`]).
//! * Cross-domain control transfer saves/scrubs/restores a real register
//!   file, with the amount of work chosen by the pairwise trust levels the
//!   endpoints declared — compiled at bind time into a threaded-code list of
//!   register ops, the paper's "combination signature" ([`regs`], [`ipc`]).
//!
//! What is *not* simulated: privilege transitions and TLB/cache effects.
//! Those scale absolute numbers but not the relative costs the paper's
//! figures compare (who copies, how many name-table probes, how much
//! register traffic), which is what the reproduction's shape criteria need.
//!
//! # Examples
//!
//! ```
//! use flexrpc_kernel::{Kernel, ipc::{MsgOut, ServerOptions, BindOptions}};
//!
//! let k = Kernel::new();
//! let client = k.create_task("client", 4096).unwrap();
//! let server = k.create_task("server", 4096).unwrap();
//!
//! // The server registers a port and an echo handler.
//! let port = k.port_allocate(server).unwrap();
//! k.register_server(server, port, ServerOptions::default(), move |_k, msg| {
//!     Ok(MsgOut { regs: msg.regs, body: msg.body.to_vec(), rights: vec![] })
//! }).unwrap();
//!
//! // The client gets a send right and binds a connection.
//! let send = k.extract_send_right(server, port, client).unwrap();
//! let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
//! let reply = k.ipc_call(&conn, &[1, 2, 3], &[]).unwrap();
//! assert_eq!(reply.body, vec![1, 2, 3]);
//! ```

pub mod error;
pub mod ipc;
pub mod ports;
pub mod regs;
pub mod stats;
pub mod task;

pub use error::KernelError;
pub use ipc::Connection;
pub use ports::{NameMode, PortName};
pub use regs::TrustLevel;
pub use stats::KernelStats;
pub use task::{TaskId, UserAddr};

use flexrpc_clock::{FaultInjector, SimClock};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

use ipc::ServerEntry;
use ports::{PortId, PortTable};
use task::Task;

/// Result alias for kernel operations.
pub type Result<T> = core::result::Result<T, KernelError>;

/// The simulated kernel: task table, port space, server registry, statistics.
///
/// All methods take `&self`; internal state is guarded by fine-grained locks
/// so server handlers (which run with no kernel lock held) may re-enter the
/// kernel, as real servers do.
pub struct Kernel {
    pub(crate) tasks: RwLock<Vec<Arc<Task>>>,
    pub(crate) ports: Mutex<PortTable>,
    pub(crate) servers: Mutex<HashMap<PortId, ServerEntry>>,
    stats: KernelStats,
    clock: Arc<SimClock>,
    faults: FaultInjector,
}

impl Kernel {
    /// Creates a fresh kernel with no tasks or ports.
    pub fn new() -> Arc<Kernel> {
        Self::with_clock(SimClock::new())
    }

    /// Creates a kernel sharing a [`SimClock`] with other substrates.
    ///
    /// The kernel itself charges no virtual time for IPC (its work is real
    /// CPU work) but induced [`flexrpc_clock::Fault::Delay`] faults advance
    /// this clock, and deadline checks on calls through this kernel measure
    /// against it.
    pub fn with_clock(clock: Arc<SimClock>) -> Arc<Kernel> {
        Arc::new(Kernel {
            tasks: RwLock::new(Vec::new()),
            ports: Mutex::new(PortTable::new()),
            servers: Mutex::new(HashMap::new()),
            stats: KernelStats::new(),
            clock,
            faults: FaultInjector::new(),
        })
    }

    /// Global event counters (copies, probes, messages).
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The simulated clock deadlines on this kernel's IPC measure against.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The fault-injection plan consulted once per IPC call.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    pub(crate) fn task(&self, id: TaskId) -> Result<Arc<Task>> {
        self.tasks.read().get(id.0).cloned().ok_or(KernelError::NoSuchTask(id))
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("tasks", &self.tasks.read().len()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_debug_is_printable() {
        let k = Kernel::new();
        k.create_task("t", 128).unwrap();
        let s = format!("{k:?}");
        assert!(s.contains("Kernel"));
    }
}
