//! Ports, port rights, and per-task name tables.
//!
//! Mach enforces that every reference a task holds to a given port appears
//! under a *single name* in that task. Keeping the invariant makes right
//! transfer expensive: for every incoming right the kernel must probe a
//! reverse map (port → existing name), then either bump a reference count or
//! install a new name in two maps — "many layers of function calls", as the
//! paper puts it. The invariant is genuinely needed for things like
//! authentication (comparing two names tells you whether they are the same
//! port), but it is *presentation*: it only affects how the port appears
//! locally. The paper's `[nonunique]` annotation relaxes it, and the kernel
//! then takes the fast path: allocate a fresh name, one insert, done.
//!
//! This module implements both paths with real hash tables and counts every
//! probe in [`crate::KernelStats::name_table_probes`], so the `[nonunique]`
//! experiment (§4.5, 32.4 µs → 24.7 µs in the paper) measures honest work.

use crate::error::KernelError;
use crate::stats::KernelStats;
use crate::task::TaskId;
use crate::{Kernel, Result};
use std::collections::HashMap;

/// Global identity of a port (kernel-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub(crate) u64);

/// A task-local name for a port right (what user code holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortName(pub u32);

/// How incoming rights are installed in the receiving task's name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NameMode {
    /// Mach's invariant: one name per port per task (reverse probe + refcount).
    #[default]
    Unique,
    /// The `[nonunique]` presentation: always mint a fresh name.
    NonUnique,
}

#[derive(Debug)]
struct Entry {
    port: PortId,
    /// Number of send references held under this name.
    send_refs: u32,
    /// Whether this name also carries the receive right.
    is_receive: bool,
}

#[derive(Debug, Default)]
struct NameSpace {
    names: HashMap<u32, Entry>,
    /// Reverse map maintained only for the unique-name invariant.
    reverse: HashMap<PortId, u32>,
    next_name: u32,
}

#[derive(Debug)]
struct PortState {
    receiver: TaskId,
    alive: bool,
}

/// The kernel's port space: all ports plus every task's name table.
#[derive(Debug, Default)]
pub(crate) struct PortTable {
    ports: HashMap<u64, PortState>,
    spaces: HashMap<TaskId, NameSpace>,
    next_port: u64,
}

impl PortTable {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn space(&mut self, task: TaskId) -> &mut NameSpace {
        self.spaces.entry(task).or_default()
    }

    fn mint_name(space: &mut NameSpace) -> u32 {
        // Names start at 1; 0 is reserved as the null name, like MACH_PORT_NULL.
        space.next_name += 1;
        space.next_name
    }

    /// Unique-mode installation: probe the reverse map, then bump or insert.
    ///
    /// Split into layered non-inlined helpers to model the call-depth cost
    /// the paper attributes to this path.
    fn insert_unique(&mut self, task: TaskId, port: PortId, stats: &KernelStats) -> PortName {
        let space = self.space(task);
        if let Some(existing) = probe_reverse(space, port, stats) {
            bump_send_ref(space, existing, stats);
            PortName(existing)
        } else {
            PortName(install_with_reverse(space, port, stats))
        }
    }

    /// Non-unique-mode installation: fresh name, single insert.
    fn insert_nonunique(&mut self, task: TaskId, port: PortId, stats: &KernelStats) -> PortName {
        let space = self.space(task);
        let name = Self::mint_name(space);
        KernelStats::add(&stats.name_table_probes, 1);
        space.names.insert(name, Entry { port, send_refs: 1, is_receive: false });
        PortName(name)
    }
}

/// Layer 1 of the unique path: reverse-map probe.
#[inline(never)]
fn probe_reverse(space: &mut NameSpace, port: PortId, stats: &KernelStats) -> Option<u32> {
    KernelStats::add(&stats.name_table_probes, 1);
    space.reverse.get(&port).copied().and_then(|n| validate_name(space, n, port, stats))
}

/// Layer 2: validate that the reverse entry still matches the forward table.
#[inline(never)]
fn validate_name(space: &NameSpace, name: u32, port: PortId, stats: &KernelStats) -> Option<u32> {
    KernelStats::add(&stats.name_table_probes, 1);
    match space.names.get(&name) {
        Some(e) if e.port == port => Some(name),
        _ => None,
    }
}

/// Layer 3a: bump the send-reference count under an existing name.
#[inline(never)]
fn bump_send_ref(space: &mut NameSpace, name: u32, stats: &KernelStats) {
    KernelStats::add(&stats.name_table_probes, 1);
    if let Some(e) = space.names.get_mut(&name) {
        e.send_refs += 1;
    }
}

/// Layer 3b: install a new name in both the forward and reverse maps.
#[inline(never)]
fn install_with_reverse(space: &mut NameSpace, port: PortId, stats: &KernelStats) -> u32 {
    let name = PortTable::mint_name(space);
    KernelStats::add(&stats.name_table_probes, 2);
    space.names.insert(name, Entry { port, send_refs: 1, is_receive: false });
    space.reverse.insert(port, name);
    name
}

impl Kernel {
    /// Allocates a new port whose receive right belongs to `task`.
    pub fn port_allocate(&self, task: TaskId) -> Result<PortName> {
        self.task(task)?;
        let mut pt = self.ports.lock();
        pt.next_port += 1;
        let id = PortId(pt.next_port);
        pt.ports.insert(id.0, PortState { receiver: task, alive: true });
        let space = pt.space(task);
        let name = PortTable::mint_name(space);
        space.names.insert(name, Entry { port: id, send_refs: 0, is_receive: true });
        space.reverse.insert(id, name);
        Ok(PortName(name))
    }

    /// Resolves `name` in `task` to the underlying port, requiring a send or
    /// receive right (a receive right implies the ability to send in this
    /// simplified model, as servers message themselves in tests).
    pub(crate) fn resolve_port(&self, task: TaskId, name: PortName) -> Result<PortId> {
        let mut pt = self.ports.lock();
        let space = pt.space(task);
        match space.names.get(&name.0) {
            Some(e) if e.send_refs > 0 || e.is_receive => Ok(e.port),
            Some(_) => Err(KernelError::InsufficientRights(name)),
            None => Err(KernelError::InvalidName(name)),
        }
    }

    /// Installs a send right for `port` into `dst` using `mode`, returning
    /// the name minted (or reused) in `dst`'s table.
    pub(crate) fn install_send_right(
        &self,
        dst: TaskId,
        port: PortId,
        mode: NameMode,
    ) -> Result<PortName> {
        self.task(dst)?;
        let mut pt = self.ports.lock();
        if !pt.ports.get(&port.0).is_some_and(|p| p.alive) {
            return Err(KernelError::InvalidName(PortName(0)));
        }
        KernelStats::add(&self.stats().rights_transferred, 1);
        Ok(match mode {
            NameMode::Unique => pt.insert_unique(dst, port, self.stats()),
            NameMode::NonUnique => pt.insert_nonunique(dst, port, self.stats()),
        })
    }

    /// Copies a send right held by `holder` under `name` into `dst`'s name
    /// table (unique mode). This is the bootstrap operation a name server
    /// would provide; rights can also travel inside IPC messages.
    pub fn extract_send_right(
        &self,
        holder: TaskId,
        name: PortName,
        dst: TaskId,
    ) -> Result<PortName> {
        let port = self.resolve_port(holder, name)?;
        self.install_send_right(dst, port, NameMode::Unique)
    }

    /// True if `task` holds the receive right for the port named `name`.
    pub fn is_receiver(&self, task: TaskId, name: PortName) -> Result<bool> {
        let port = self.resolve_port(task, name)?;
        let pt = self.ports.lock();
        Ok(pt.ports.get(&port.0).is_some_and(|p| p.receiver == task))
    }

    /// Releases one send reference held under `name`; removes the name when
    /// the last reference (and no receive right) is gone.
    pub fn deallocate_right(&self, task: TaskId, name: PortName) -> Result<()> {
        let mut pt = self.ports.lock();
        let space = pt.space(task);
        let entry = space.names.get_mut(&name.0).ok_or(KernelError::InvalidName(name))?;
        if entry.send_refs == 0 {
            return Err(KernelError::InsufficientRights(name));
        }
        entry.send_refs -= 1;
        if entry.send_refs == 0 && !entry.is_receive {
            let port = entry.port;
            space.names.remove(&name.0);
            if space.reverse.get(&port) == Some(&name.0) {
                space.reverse.remove(&port);
            }
        }
        Ok(())
    }

    /// Number of distinct names `task` holds (test/diagnostic aid).
    pub fn name_count(&self, task: TaskId) -> usize {
        let mut pt = self.ports.lock();
        pt.space(task).names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;

    fn setup() -> (std::sync::Arc<Kernel>, TaskId, TaskId, PortName) {
        let k = Kernel::new();
        let a = k.create_task("a", 64).unwrap();
        let b = k.create_task("b", 64).unwrap();
        let p = k.port_allocate(a).unwrap();
        (k, a, b, p)
    }

    #[test]
    fn allocate_gives_receive_right() {
        let (k, a, _b, p) = setup();
        assert!(k.is_receiver(a, p).unwrap());
    }

    #[test]
    fn extract_send_right_names_port_in_destination() {
        let (k, a, b, p) = setup();
        let n = k.extract_send_right(a, p, b).unwrap();
        assert!(!k.is_receiver(b, n).unwrap());
        // Both names refer to the same port.
        assert_eq!(k.resolve_port(a, p).unwrap(), k.resolve_port(b, n).unwrap());
    }

    #[test]
    fn unique_mode_reuses_the_name() {
        let (k, a, b, p) = setup();
        let n1 = k.extract_send_right(a, p, b).unwrap();
        let n2 = k.extract_send_right(a, p, b).unwrap();
        assert_eq!(n1, n2, "unique-name invariant must coalesce");
        assert_eq!(k.name_count(b), 1);
    }

    #[test]
    fn nonunique_mode_mints_fresh_names() {
        let (k, a, b, p) = setup();
        let port = k.resolve_port(a, p).unwrap();
        let n1 = k.install_send_right(b, port, NameMode::NonUnique).unwrap();
        let n2 = k.install_send_right(b, port, NameMode::NonUnique).unwrap();
        assert_ne!(n1, n2, "[nonunique] presentation mints a new name per transfer");
        assert_eq!(k.name_count(b), 2);
        // Both still resolve to the same port.
        assert_eq!(k.resolve_port(b, n1).unwrap(), k.resolve_port(b, n2).unwrap());
    }

    #[test]
    fn unique_mode_costs_more_probes_than_nonunique() {
        let (k, a, b, p) = setup();
        let port = k.resolve_port(a, p).unwrap();

        let before = k.stats().snapshot();
        k.install_send_right(b, port, NameMode::Unique).unwrap();
        let unique_first = k.stats().snapshot().since(&before).name_table_probes;

        let before = k.stats().snapshot();
        k.install_send_right(b, port, NameMode::Unique).unwrap();
        let unique_again = k.stats().snapshot().since(&before).name_table_probes;

        let before = k.stats().snapshot();
        k.install_send_right(b, port, NameMode::NonUnique).unwrap();
        let nonunique = k.stats().snapshot().since(&before).name_table_probes;

        assert!(unique_first > nonunique);
        assert!(unique_again > nonunique);
        assert_eq!(nonunique, 1);
    }

    #[test]
    fn invalid_name_rejected() {
        let (k, a, _b, _p) = setup();
        assert!(matches!(
            k.resolve_port(a, PortName(999)),
            Err(KernelError::InvalidName(PortName(999)))
        ));
    }

    #[test]
    fn deallocate_drops_refs_then_name() {
        let (k, a, b, p) = setup();
        let n = k.extract_send_right(a, p, b).unwrap();
        let n2 = k.extract_send_right(a, p, b).unwrap();
        assert_eq!(n, n2); // Two refs under one name.
        k.deallocate_right(b, n).unwrap();
        assert!(k.resolve_port(b, n).is_ok(), "one ref remains");
        k.deallocate_right(b, n).unwrap();
        assert!(k.resolve_port(b, n).is_err(), "name removed after last ref");
        // After removal, a fresh unique insert installs a new name.
        let n3 = k.extract_send_right(a, p, b).unwrap();
        assert!(k.resolve_port(b, n3).is_ok());
    }

    #[test]
    fn deallocate_receive_right_refused() {
        let (k, a, _b, p) = setup();
        assert!(matches!(k.deallocate_right(a, p), Err(KernelError::InsufficientRights(_))));
    }

    #[test]
    fn rights_transfer_counter() {
        let (k, a, b, p) = setup();
        let before = k.stats().snapshot();
        k.extract_send_right(a, p, b).unwrap();
        k.extract_send_right(a, p, b).unwrap();
        assert_eq!(k.stats().snapshot().since(&before).rights_transferred, 2);
    }
}
