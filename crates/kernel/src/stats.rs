//! Kernel-wide event counters.
//!
//! The reproduction separates *correctness of an optimization* from *timing*:
//! tests assert these counters (e.g. "the `dealloc(never)` presentation
//! removed exactly one payload-sized copy per read"), while the Criterion
//! benches measure wall-clock time. Counters are monotonically increasing
//! atomics so they can be read concurrently with IPC activity.

use flexrpc_trace::{Counter, MetricsRegistry};

/// Monotonic counters of simulated-kernel events. Each is a
/// registry-adoptable [`Counter`] handle, so a metrics plane can absorb
/// them under `kernel.*` names ([`KernelStats::register_metrics`]) while
/// the kernel keeps updating the same cells.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Bytes moved from a user arena into kernel space (`copyin`).
    pub bytes_copied_in: Counter,
    /// Bytes moved from kernel space into a user arena (`copyout`).
    pub bytes_copied_out: Counter,
    /// Bytes moved directly between two user arenas (the streamlined path).
    pub bytes_copied_user_to_user: Counter,
    /// IPC messages sent over the streamlined path.
    pub messages: Counter,
    /// Port rights transferred between tasks.
    pub rights_transferred: Counter,
    /// Hash-table probes performed by port-name translation (the cost the
    /// `[nonunique]` presentation removes).
    pub name_table_probes: Counter,
    /// Individual register save/restore/scrub operations performed by the
    /// trust-parameterized path.
    pub register_ops: Counter,
}

impl KernelStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }

    /// Adopts every counter into `registry` under its `kernel.*` name.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("kernel.bytes_copied_in", &self.bytes_copied_in);
        registry.adopt_counter("kernel.bytes_copied_out", &self.bytes_copied_out);
        registry.adopt_counter("kernel.bytes_copied_user_to_user", &self.bytes_copied_user_to_user);
        registry.adopt_counter("kernel.message", &self.messages);
        registry.adopt_counter("kernel.rights_transferred", &self.rights_transferred);
        registry.adopt_counter("kernel.name_table_probe", &self.name_table_probes);
        registry.adopt_counter("kernel.register_op", &self.register_ops);
    }

    /// Snapshot of all counters, for before/after deltas in tests.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_copied_in: self.bytes_copied_in.get(),
            bytes_copied_out: self.bytes_copied_out.get(),
            bytes_copied_user_to_user: self.bytes_copied_user_to_user.get(),
            messages: self.messages.get(),
            rights_transferred: self.rights_transferred.get(),
            name_table_probes: self.name_table_probes.get(),
            register_ops: self.register_ops.get(),
        }
    }
}

/// A point-in-time copy of [`KernelStats`], supporting subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// See [`KernelStats::bytes_copied_in`].
    pub bytes_copied_in: u64,
    /// See [`KernelStats::bytes_copied_out`].
    pub bytes_copied_out: u64,
    /// See [`KernelStats::bytes_copied_user_to_user`].
    pub bytes_copied_user_to_user: u64,
    /// See [`KernelStats::messages`].
    pub messages: u64,
    /// See [`KernelStats::rights_transferred`].
    pub rights_transferred: u64,
    /// See [`KernelStats::name_table_probes`].
    pub name_table_probes: u64,
    /// See [`KernelStats::register_ops`].
    pub register_ops: u64,
}

impl StatsSnapshot {
    /// Total bytes copied by the kernel in any direction.
    pub fn total_bytes_copied(&self) -> u64 {
        self.bytes_copied_in + self.bytes_copied_out + self.bytes_copied_user_to_user
    }

    /// Counter deltas since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is a later snapshot (counters are
    /// monotonic, so that is always a caller bug).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            bytes_copied_in: self.bytes_copied_in - earlier.bytes_copied_in,
            bytes_copied_out: self.bytes_copied_out - earlier.bytes_copied_out,
            bytes_copied_user_to_user: self.bytes_copied_user_to_user
                - earlier.bytes_copied_user_to_user,
            messages: self.messages - earlier.messages,
            rights_transferred: self.rights_transferred - earlier.rights_transferred,
            name_table_probes: self.name_table_probes - earlier.name_table_probes,
            register_ops: self.register_ops - earlier.register_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let s = KernelStats::new();
        KernelStats::add(&s.messages, 2);
        let a = s.snapshot();
        KernelStats::add(&s.messages, 3);
        KernelStats::add(&s.bytes_copied_in, 100);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.messages, 3);
        assert_eq!(d.bytes_copied_in, 100);
        assert_eq!(d.total_bytes_copied(), 100);
    }
}
