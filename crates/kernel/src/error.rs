//! Kernel error codes.

use crate::ports::PortName;
use crate::task::{TaskId, UserAddr};
use core::fmt;

/// An error returned by a simulated kernel operation.
///
/// Mirrors the flavor of Mach `kern_return_t` codes for the operations this
/// substrate supports; every user-triggerable failure is a value, never a
/// panic, because RPC endpoints are untrusted relative to each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The referenced task does not exist.
    NoSuchTask(TaskId),
    /// A user-space access fell outside the task's address space.
    BadAddress {
        /// Task whose space was accessed.
        task: TaskId,
        /// Faulting address.
        addr: UserAddr,
        /// Length of the attempted access.
        len: usize,
    },
    /// The task's address space has no room for the requested allocation.
    NoSpace(TaskId),
    /// The port name is not valid in the task's name table.
    InvalidName(PortName),
    /// The name exists but does not carry the required right.
    InsufficientRights(PortName),
    /// The port has no registered server.
    NoServer,
    /// A server is already registered on the port.
    ServerExists,
    /// The caller does not hold the receive right for the port.
    NotReceiver,
    /// Bind-time type signatures of client and server are incompatible:
    /// presentation may vary per endpoint, the network contract may not.
    SignatureMismatch {
        /// Hash the client registered.
        client: u64,
        /// Hash the server registered.
        server: u64,
    },
    /// The message body exceeds the streamlined path's size limit.
    MsgTooLarge(usize),
    /// The message was lost in the IPC path (induced by fault injection).
    /// Transient by construction: a retry sends a fresh message.
    Dropped,
    /// The connection was shut down.
    ConnectionDead,
    /// The server handler reported an application-level failure.
    ServerFailure(u32),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchTask(t) => write!(f, "no such task {t:?}"),
            KernelError::BadAddress { task, addr, len } => {
                write!(f, "bad address in {task:?}: {addr:?}+{len}")
            }
            KernelError::NoSpace(t) => write!(f, "address space exhausted in {t:?}"),
            KernelError::InvalidName(n) => write!(f, "invalid port name {n:?}"),
            KernelError::InsufficientRights(n) => write!(f, "insufficient rights on {n:?}"),
            KernelError::NoServer => write!(f, "no server registered on port"),
            KernelError::ServerExists => write!(f, "server already registered on port"),
            KernelError::NotReceiver => write!(f, "caller does not hold the receive right"),
            KernelError::SignatureMismatch { client, server } => {
                write!(f, "type signature mismatch: client {client:#x} vs server {server:#x}")
            }
            KernelError::MsgTooLarge(n) => write!(f, "message body of {n} bytes too large"),
            KernelError::Dropped => write!(f, "message dropped in IPC path"),
            KernelError::ConnectionDead => write!(f, "connection is dead"),
            KernelError::ServerFailure(code) => write!(f, "server failure code {code}"),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_payload() {
        let e = KernelError::SignatureMismatch { client: 0xAB, server: 0xCD };
        let s = e.to_string();
        assert!(s.contains("0xab") && s.contains("0xcd"));
    }
}
