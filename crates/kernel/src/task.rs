//! Tasks and simulated address spaces.
//!
//! A task's "address space" is a real, privately owned byte arena. Crossing
//! it costs a real `memcpy`, which is the entire point: the paper's
//! presentation optimizations are about *removing copies across protection
//! boundaries*, so the substrate must charge for them honestly.
//!
//! Addresses are arena offsets wrapped in [`UserAddr`] so they cannot be
//! confused with kernel-side slices, and every access is bounds-checked —
//! the moral equivalent of the MMU fault the real kernel would take.

use crate::error::KernelError;
use crate::stats::KernelStats;
use crate::{Kernel, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifier of a task (index into the kernel's task table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Raw index, for diagnostics.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An address inside some task's simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UserAddr(pub usize);

impl UserAddr {
    /// Address arithmetic with overflow checking.
    pub fn offset(self, n: usize) -> UserAddr {
        UserAddr(self.0.checked_add(n).expect("user address overflow"))
    }
}

/// A simulated task: name, memory arena, allocation cursor.
pub(crate) struct Task {
    pub(crate) id: TaskId,
    pub(crate) name: String,
    /// The task's entire address space. `Mutex` rather than `RwLock`:
    /// accesses are short memcpys and writers dominate.
    pub(crate) mem: Mutex<Vec<u8>>,
    /// Bump-allocation cursor for [`Kernel::user_alloc`].
    pub(crate) brk: AtomicUsize,
}

impl Task {
    fn check(&self, mem: &[u8], addr: UserAddr, len: usize) -> Result<()> {
        if addr.0.checked_add(len).is_none_or(|end| end > mem.len()) {
            return Err(KernelError::BadAddress { task: self.id, addr, len });
        }
        Ok(())
    }
}

impl Kernel {
    /// Creates a task whose address space holds `mem_size` bytes.
    pub fn create_task(&self, name: &str, mem_size: usize) -> Result<TaskId> {
        let mut tasks = self.tasks.write();
        let id = TaskId(tasks.len());
        tasks.push(Arc::new(Task {
            id,
            name: name.to_owned(),
            mem: Mutex::new(vec![0; mem_size]),
            brk: AtomicUsize::new(0),
        }));
        Ok(id)
    }

    /// The task's human-readable name.
    pub fn task_name(&self, task: TaskId) -> Result<String> {
        Ok(self.task(task)?.name.clone())
    }

    /// Allocates `len` bytes in the task's address space (bump allocator —
    /// the substrate never needs to free user memory mid-experiment).
    pub fn user_alloc(&self, task: TaskId, len: usize) -> Result<UserAddr> {
        let t = self.task(task)?;
        let size = t.mem.lock().len();
        // Allocations are 16-byte aligned, like a conventional malloc.
        let mut cur = t.brk.load(Ordering::Relaxed);
        loop {
            let base = (cur + 15) & !15;
            let end = base.checked_add(len).ok_or(KernelError::NoSpace(task))?;
            if end > size {
                return Err(KernelError::NoSpace(task));
            }
            match t.brk.compare_exchange(cur, end, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Ok(UserAddr(base)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copies bytes from the task's space into a kernel-side buffer
    /// (Mach `copyin` / Linux `memcpy_fromfs`).
    pub fn copyin(&self, task: TaskId, addr: UserAddr, dst: &mut [u8]) -> Result<()> {
        let t = self.task(task)?;
        let mem = t.mem.lock();
        t.check(&mem, addr, dst.len())?;
        dst.copy_from_slice(&mem[addr.0..addr.0 + dst.len()]);
        KernelStats::add(&self.stats().bytes_copied_in, dst.len() as u64);
        Ok(())
    }

    /// Copies bytes from the task's space into a fresh kernel vector.
    pub fn copyin_vec(&self, task: TaskId, addr: UserAddr, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0; len];
        self.copyin(task, addr, &mut v)?;
        Ok(v)
    }

    /// Copies kernel-side bytes into the task's space
    /// (Mach `copyout` / Linux `memcpy_tofs`).
    pub fn copyout(&self, task: TaskId, addr: UserAddr, src: &[u8]) -> Result<()> {
        let t = self.task(task)?;
        let mut mem = t.mem.lock();
        t.check(&mem, addr, src.len())?;
        mem[addr.0..addr.0 + src.len()].copy_from_slice(src);
        KernelStats::add(&self.stats().bytes_copied_out, src.len() as u64);
        Ok(())
    }

    /// Copies directly between two tasks' address spaces — the streamlined
    /// IPC path's single-copy body transfer.
    pub fn copy_user_to_user(
        &self,
        from: TaskId,
        from_addr: UserAddr,
        to: TaskId,
        to_addr: UserAddr,
        len: usize,
    ) -> Result<()> {
        if from == to {
            // Same task: one arena, plain memmove within it.
            let t = self.task(from)?;
            let mut mem = t.mem.lock();
            t.check(&mem, from_addr, len)?;
            t.check(&mem, to_addr, len)?;
            mem.copy_within(from_addr.0..from_addr.0 + len, to_addr.0);
        } else {
            let src_t = self.task(from)?;
            let dst_t = self.task(to)?;
            // Lock in task-id order to avoid deadlock between concurrent
            // transfers in opposite directions.
            let (src_mem, mut dst_mem) = if from.0 < to.0 {
                let a = src_t.mem.lock();
                let b = dst_t.mem.lock();
                (a, b)
            } else {
                let b = dst_t.mem.lock();
                let a = src_t.mem.lock();
                (a, b)
            };
            src_t.check(&src_mem, from_addr, len)?;
            dst_t.check(&dst_mem, to_addr, len)?;
            dst_mem[to_addr.0..to_addr.0 + len]
                .copy_from_slice(&src_mem[from_addr.0..from_addr.0 + len]);
        }
        KernelStats::add(&self.stats().bytes_copied_user_to_user, len as u64);
        Ok(())
    }

    /// Runs `f` over a read-only view of task memory (used by transports
    /// that marshal straight out of user buffers).
    pub fn with_user_slice<R>(
        &self,
        task: TaskId,
        addr: UserAddr,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let t = self.task(task)?;
        let mem = t.mem.lock();
        t.check(&mem, addr, len)?;
        Ok(f(&mem[addr.0..addr.0 + len]))
    }

    /// Runs `f` over a mutable view of task memory.
    pub fn with_user_slice_mut<R>(
        &self,
        task: TaskId,
        addr: UserAddr,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let t = self.task(task)?;
        let mut mem = t.mem.lock();
        t.check(&mem, addr, len)?;
        Ok(f(&mut mem[addr.0..addr.0 + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copyin_copyout_roundtrip() {
        let k = Kernel::new();
        let t = k.create_task("t", 1024).unwrap();
        let a = k.user_alloc(t, 16).unwrap();
        k.copyout(t, a, b"hello kernel!!!!").unwrap();
        let mut buf = [0u8; 16];
        k.copyin(t, a, &mut buf).unwrap();
        assert_eq!(&buf, b"hello kernel!!!!");
    }

    #[test]
    fn copy_counters_accumulate() {
        let k = Kernel::new();
        let t = k.create_task("t", 1024).unwrap();
        let a = k.user_alloc(t, 64).unwrap();
        let before = k.stats().snapshot();
        k.copyout(t, a, &[1; 64]).unwrap();
        let mut b = [0u8; 32];
        k.copyin(t, a, &mut b).unwrap();
        let d = k.stats().snapshot().since(&before);
        assert_eq!(d.bytes_copied_out, 64);
        assert_eq!(d.bytes_copied_in, 32);
    }

    #[test]
    fn out_of_bounds_access_faults() {
        let k = Kernel::new();
        let t = k.create_task("t", 64).unwrap();
        let err = k.copyout(t, UserAddr(60), &[0; 8]).unwrap_err();
        assert!(matches!(err, KernelError::BadAddress { len: 8, .. }));
        let mut buf = [0u8; 4];
        assert!(k.copyin(t, UserAddr(usize::MAX), &mut buf).is_err());
    }

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let k = Kernel::new();
        let t = k.create_task("t", 100).unwrap();
        let a = k.user_alloc(t, 10).unwrap();
        let b = k.user_alloc(t, 10).unwrap();
        assert_eq!(a.0 % 16, 0);
        assert_eq!(b.0 % 16, 0);
        assert!(b.0 >= a.0 + 10);
        assert!(matches!(k.user_alloc(t, 100), Err(KernelError::NoSpace(_))));
    }

    #[test]
    fn user_to_user_copy_moves_bytes() {
        let k = Kernel::new();
        let src = k.create_task("src", 256).unwrap();
        let dst = k.create_task("dst", 256).unwrap();
        let sa = k.user_alloc(src, 32).unwrap();
        let da = k.user_alloc(dst, 32).unwrap();
        k.copyout(src, sa, &[7; 32]).unwrap();
        k.copy_user_to_user(src, sa, dst, da, 32).unwrap();
        let mut got = [0u8; 32];
        k.copyin(dst, da, &mut got).unwrap();
        assert_eq!(got, [7; 32]);
    }

    #[test]
    fn user_to_user_same_task_overlapping() {
        let k = Kernel::new();
        let t = k.create_task("t", 64).unwrap();
        k.copyout(t, UserAddr(0), &[1, 2, 3, 4]).unwrap();
        k.copy_user_to_user(t, UserAddr(0), t, UserAddr(2), 4).unwrap();
        let mut got = [0u8; 6];
        k.copyin(t, UserAddr(0), &mut got).unwrap();
        assert_eq!(got, [1, 2, 1, 2, 3, 4]);
    }

    #[test]
    fn user_to_user_reverse_id_order() {
        let k = Kernel::new();
        let a = k.create_task("a", 64).unwrap();
        let b = k.create_task("b", 64).unwrap();
        k.copyout(b, UserAddr(0), &[9; 8]).unwrap();
        // Copy from the higher-id task to the lower-id one.
        k.copy_user_to_user(b, UserAddr(0), a, UserAddr(8), 8).unwrap();
        let mut got = [0u8; 8];
        k.copyin(a, UserAddr(8), &mut got).unwrap();
        assert_eq!(got, [9; 8]);
    }

    #[test]
    fn missing_task_reported() {
        let k = Kernel::new();
        let ghost = TaskId(42);
        assert_eq!(
            k.copyin_vec(ghost, UserAddr(0), 1).unwrap_err(),
            KernelError::NoSuchTask(ghost)
        );
    }

    #[test]
    fn with_user_slice_views() {
        let k = Kernel::new();
        let t = k.create_task("t", 64).unwrap();
        k.with_user_slice_mut(t, UserAddr(4), 4, |s| s.copy_from_slice(&[1, 2, 3, 4])).unwrap();
        let sum =
            k.with_user_slice(t, UserAddr(4), 4, |s| s.iter().map(|&b| b as u32).sum::<u32>());
        assert_eq!(sum.unwrap(), 10);
        assert!(k.with_user_slice(t, UserAddr(63), 2, |_| ()).is_err());
    }

    #[test]
    fn task_name_lookup() {
        let k = Kernel::new();
        let t = k.create_task("pipe-server", 16).unwrap();
        assert_eq!(k.task_name(t).unwrap(), "pipe-server");
    }
}
