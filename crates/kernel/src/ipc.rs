//! The streamlined synchronous IPC path.
//!
//! Models the paper's "new, streamlined low-level Mach IPC mechanism":
//! messages travel through processor registers and/or a simple buffer copied
//! directly between address spaces; there is no copy-on-write machinery.
//! Control transfer is synchronous — the server's handler runs on the
//! caller's (simulated) thread, the migrating-threads model of the authors'
//! earlier work.
//!
//! *Binding* is where flexible presentation meets the kernel: both sides
//! register type signatures and presentation attributes, the kernel checks
//! the signatures against each other (a PDL can never change the network
//! contract, so compatible interfaces always bind), and compiles a
//! *combination signature*: the [`RegPath`] threaded code for the declared
//! trust pair plus the name-translation mode for transferred port rights.

use crate::error::KernelError;
use crate::ports::{NameMode, PortId, PortName};
use crate::regs::{run_ops, RegPath, RegisterFile, TrustLevel, MSG_REGS};
use crate::stats::KernelStats;
use crate::task::TaskId;
use crate::{Kernel, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// Maximum body size accepted by the streamlined path.
///
/// The real path existed for small control transfers; bulk data goes through
/// fbufs or the network. 256 KiB comfortably covers every experiment.
pub const MAX_BODY: usize = 256 * 1024;

/// Nominal one-hop transfer time charged when a [`flexrpc_clock::Fault::SlowLink`]
/// fires on an IPC call: kernel IPC has no wire model, so a degraded link
/// costs `factor` of these stand-in hops.
pub const SLOW_HOP_NS: u64 = 1_000;

/// A server handler: runs with no kernel locks held and may re-enter the
/// kernel. Returns the reply message or an application-defined failure code.
pub type Handler = Box<dyn FnMut(&Kernel, MsgIn<'_>) -> core::result::Result<MsgOut, u32> + Send>;

/// The request as seen by a server handler.
#[derive(Debug)]
pub struct MsgIn<'a> {
    /// Inline register words (first [`MSG_REGS`] registers of the caller).
    pub regs: [u64; MSG_REGS],
    /// Message body in the server's receive buffer.
    pub body: &'a [u8],
    /// Port rights, already translated into the server's name table.
    pub rights: Vec<PortName>,
}

/// The reply produced by a server handler.
#[derive(Debug, Default)]
pub struct MsgOut {
    /// Inline register words returned to the caller.
    pub regs: [u64; MSG_REGS],
    /// Reply body (server-side buffer; the kernel copies it to the client).
    pub body: Vec<u8>,
    /// Port rights to transfer, named in the server's table.
    pub rights: Vec<PortName>,
}

/// The reply as seen by the client.
#[derive(Debug, Default)]
pub struct Reply {
    /// Inline register words from the server.
    pub regs: [u64; MSG_REGS],
    /// Reply body, copied into client-side memory.
    pub body: Vec<u8>,
    /// Port rights, translated into the client's name table.
    pub rights: Vec<PortName>,
}

/// Presentation attributes a server declares when registering
/// (its half of the combination signature).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOptions {
    /// How far the server trusts its clients.
    pub trust_of_client: TrustLevel,
    /// How incoming rights are installed in the server's name table.
    pub name_mode: NameMode,
    /// Interface type signature; `None` opts out of checking (tests only).
    pub signature: Option<u64>,
    /// Direct receive: the handler reads the sender's message in place
    /// instead of through a copied receive buffer. Sound in the migrating-
    /// threads model (the sender is blocked for the call's duration); this
    /// is the "slight enhancement to the underlying IPC mechanism" §4.2.1
    /// says would delete one more copy from the pipe write path.
    pub direct_receive: bool,
}

/// Presentation attributes a client declares at bind time.
#[derive(Debug, Clone, Copy, Default)]
pub struct BindOptions {
    /// How far the client trusts the server.
    pub trust_of_server: TrustLevel,
    /// How reply rights are installed in the client's name table.
    pub name_mode: NameMode,
    /// Interface type signature; `None` opts out of checking (tests only).
    pub signature: Option<u64>,
}

pub(crate) struct ServerEntry {
    pub(crate) task: TaskId,
    pub(crate) options: ServerOptions,
    pub(crate) handler: Arc<Mutex<Handler>>,
}

/// A bound client↔server connection with its compiled combination signature.
///
/// Cheap to call through repeatedly; all bind-time decisions (register path,
/// name modes, signature check) are already baked in.
pub struct Connection {
    pub(crate) client: TaskId,
    pub(crate) server: TaskId,
    /// The port this connection was bound through (kept for diagnostics and
    /// future rebinding support).
    pub(crate) port: PortId,
    handler: Arc<Mutex<Handler>>,
    reg_path: RegPath,
    /// Name mode for rights moving client → server.
    req_name_mode: NameMode,
    /// Name mode for rights moving server → client.
    reply_name_mode: NameMode,
    direct_receive: bool,
    regs: Mutex<RegisterFile>,
    /// The server-side receive buffer for this connection, reused across
    /// calls (the streamlined path pre-registers receive windows).
    recv: Mutex<Vec<u8>>,
}

impl Connection {
    /// The client task of this connection.
    pub fn client_task(&self) -> TaskId {
        self.client
    }

    /// The server task of this connection.
    pub fn server_task(&self) -> TaskId {
        self.server
    }

    /// The compiled register path (diagnostics: its length is the register
    /// cost the trust pair bought).
    pub fn reg_path(&self) -> &RegPath {
        &self.reg_path
    }

    /// Kernel-wide identity of the port this connection targets.
    pub fn port_id(&self) -> u64 {
        self.port.0
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("client", &self.client)
            .field("server", &self.server)
            .field("reg_ops", &self.reg_path.len())
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// Registers `handler` as the server on the port `task` names `port_name`.
    ///
    /// Requires the receive right. The `options` are the server's half of the
    /// combination signature built later by [`Kernel::ipc_bind`].
    pub fn register_server(
        &self,
        task: TaskId,
        port_name: PortName,
        options: ServerOptions,
        handler: impl FnMut(&Kernel, MsgIn<'_>) -> core::result::Result<MsgOut, u32> + Send + 'static,
    ) -> Result<()> {
        if !self.is_receiver(task, port_name)? {
            return Err(KernelError::NotReceiver);
        }
        let port = self.resolve_port(task, port_name)?;
        let mut servers = self.servers.lock();
        if servers.contains_key(&port) {
            return Err(KernelError::ServerExists);
        }
        servers.insert(
            port,
            ServerEntry { task, options, handler: Arc::new(Mutex::new(Box::new(handler))) },
        );
        Ok(())
    }

    /// Binds `client_task` (holding a send right named `send_name`) to the
    /// server registered on that port, compiling the combination signature.
    ///
    /// Fails with [`KernelError::SignatureMismatch`] if both sides declared
    /// type signatures and they differ — the "network contract" check that
    /// presentation annotations can never influence.
    pub fn ipc_bind(
        &self,
        client_task: TaskId,
        send_name: PortName,
        options: BindOptions,
    ) -> Result<Connection> {
        let port = self.resolve_port(client_task, send_name)?;
        let servers = self.servers.lock();
        let entry = servers.get(&port).ok_or(KernelError::NoServer)?;
        if let (Some(c), Some(s)) = (options.signature, entry.options.signature) {
            if c != s {
                return Err(KernelError::SignatureMismatch { client: c, server: s });
            }
        }
        let reg_path = RegPath::compile(options.trust_of_server, entry.options.trust_of_client);
        Ok(Connection {
            client: client_task,
            server: entry.task,
            port,
            handler: Arc::clone(&entry.handler),
            reg_path,
            req_name_mode: entry.options.name_mode,
            reply_name_mode: options.name_mode,
            direct_receive: entry.options.direct_receive,
            regs: Mutex::new(RegisterFile::default()),
            recv: Mutex::new(Vec::new()),
        })
    }

    /// Performs a synchronous RPC over `conn` with empty register words.
    pub fn ipc_call(&self, conn: &Connection, body: &[u8], rights: &[PortName]) -> Result<Reply> {
        self.ipc_call_regs(conn, [0; MSG_REGS], body, rights)
    }

    /// Performs a synchronous RPC carrying register words and a body.
    pub fn ipc_call_regs(
        &self,
        conn: &Connection,
        regs: [u64; MSG_REGS],
        body: &[u8],
        rights: &[PortName],
    ) -> Result<Reply> {
        let mut reply_body = Vec::new();
        let out = self.call_inner(conn, regs, body, rights, &mut reply_body)?;
        Ok(Reply { regs: out.0, body: reply_body, rights: out.1 })
    }

    /// Like [`Kernel::ipc_call_regs`] but writes the reply body into a
    /// caller-provided buffer, so steady-state calls allocate nothing on the
    /// client side (used by the throughput benches).
    pub fn ipc_call_into(
        &self,
        conn: &Connection,
        regs: [u64; MSG_REGS],
        body: &[u8],
        rights: &[PortName],
        reply_body: &mut Vec<u8>,
    ) -> Result<([u64; MSG_REGS], Vec<PortName>)> {
        self.call_inner(conn, regs, body, rights, reply_body)
    }

    fn call_inner(
        &self,
        conn: &Connection,
        regs: [u64; MSG_REGS],
        body: &[u8],
        rights: &[PortName],
        reply_body: &mut Vec<u8>,
    ) -> Result<([u64; MSG_REGS], Vec<PortName>)> {
        if body.len() > MAX_BODY {
            return Err(KernelError::MsgTooLarge(body.len()));
        }
        let stats = self.stats();
        KernelStats::add(&stats.messages, 1);

        // Consult the kernel's fault plan: drops lose the message before any
        // transfer, delays model a stalled receiver by advancing the sim
        // clock (deadline checks upstream see the time pass), duplicates
        // deliver the message twice (the handler runs again below). Crashes
        // kill the server task before it receives (the port is dead until
        // the scheduled restart); closes shut the connection down after the
        // handler ran but before the reply message is sent.
        let fault = self.faults().next_call_at(self.clock().now_ns());
        match fault {
            Some(flexrpc_clock::Fault::Drop) => return Err(KernelError::Dropped),
            Some(flexrpc_clock::Fault::Delay(ns)) => {
                self.clock().advance_ns(ns);
            }
            Some(flexrpc_clock::Fault::Crash { .. }) => return Err(KernelError::ConnectionDead),
            // A partitioned connection looks like a dead one from the
            // caller's side, except the server never saw the message.
            Some(flexrpc_clock::Fault::Partition { .. }) => {
                return Err(KernelError::ConnectionDead)
            }
            Some(flexrpc_clock::Fault::SlowLink { factor }) => {
                // Degraded transfer: the message still lands, but the copy
                // costs `factor` nominal hops of sim time.
                self.clock().advance_ns(SLOW_HOP_NS.saturating_mul(factor.max(1)));
            }
            Some(flexrpc_clock::Fault::Duplicate | flexrpc_clock::Fault::Close) | None => {}
        }

        // Translate request rights into the server's name table.
        let mut server_rights = Vec::with_capacity(rights.len());
        for &name in rights {
            let port = self.resolve_port(conn.client, name)?;
            server_rights.push(self.install_send_right(conn.server, port, conn.req_name_mode)?);
        }

        // Single direct copy of the body into the connection's (reused)
        // server-side receive buffer — unless the server opted into direct
        // receive, in which case the handler reads the sender's message in
        // place and the copy disappears. The buffer lock is held across the
        // handler; that cannot deadlock because synchronous RPC never
        // re-enters the *same* connection (its caller is blocked inside
        // it), and calls out on other connections take other locks.
        let mut recv_buf = conn.recv.lock();
        if !conn.direct_receive {
            recv_buf.clear();
            recv_buf.extend_from_slice(body);
            KernelStats::add(&stats.bytes_copied_user_to_user, body.len() as u64);
        }

        // Register half of the combination signature: call path.
        {
            let mut rf = conn.regs.lock();
            rf.live[..MSG_REGS].copy_from_slice(&regs);
            run_ops(&conn.reg_path.pre, &mut rf, stats);
        }

        // Enter the server. No kernel locks are held here.
        let served_body: &[u8] = if conn.direct_receive { body } else { &recv_buf };
        let msg = MsgIn { regs, body: served_body, rights: server_rights };
        let out = {
            let mut handler = conn.handler.lock();
            if fault == Some(flexrpc_clock::Fault::Duplicate) {
                // At-least-once delivery: the duplicate arrives first (rights
                // travel only once — on the copy whose reply the caller
                // sees). Its reply is lost; a failure is the server's answer
                // to the duplicate, not to the call, so it is ignored too.
                let dup = MsgIn { regs, body: served_body, rights: Vec::new() };
                let _ = (handler)(self, dup);
            }
            (handler)(self, msg).map_err(KernelError::ServerFailure)?
        };

        // Register half: reply path.
        {
            let mut rf = conn.regs.lock();
            run_ops(&conn.reg_path.post, &mut rf, stats);
        }

        if fault == Some(flexrpc_clock::Fault::Close) {
            // The connection was torn down between the handler completing
            // and the reply send: the server's work (and any reply-cache
            // entry) survives, but this caller never hears back.
            return Err(KernelError::ConnectionDead);
        }

        if out.body.len() > MAX_BODY {
            return Err(KernelError::MsgTooLarge(out.body.len()));
        }

        // Translate reply rights into the client's name table.
        let mut client_rights = Vec::with_capacity(out.rights.len());
        for name in out.rights {
            let port = self.resolve_port(conn.server, name)?;
            client_rights.push(self.install_send_right(conn.client, port, conn.reply_name_mode)?);
        }

        // Single direct copy of the reply body back to the client.
        reply_body.clear();
        reply_body.extend_from_slice(&out.body);
        KernelStats::add(&stats.bytes_copied_user_to_user, out.body.len() as u64);

        Ok((out.regs, client_rights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup_echo(
        server_opts: ServerOptions,
    ) -> (std::sync::Arc<Kernel>, TaskId, TaskId, PortName) {
        let k = Kernel::new();
        let client = k.create_task("client", 4096).unwrap();
        let server = k.create_task("server", 4096).unwrap();
        let port = k.port_allocate(server).unwrap();
        k.register_server(server, port, server_opts, |_k, m| {
            Ok(MsgOut { regs: m.regs, body: m.body.to_vec(), rights: m.rights })
        })
        .unwrap();
        let send = k.extract_send_right(server, port, client).unwrap();
        (k, client, server, send)
    }

    #[test]
    fn echo_roundtrip() {
        let (k, client, _server, send) = setup_echo(ServerOptions::default());
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        let mut regs = [0u64; MSG_REGS];
        regs[0] = 7;
        let reply = k.ipc_call_regs(&conn, regs, b"payload", &[]).unwrap();
        assert_eq!(reply.regs[0], 7);
        assert_eq!(reply.body, b"payload");
    }

    #[test]
    fn body_copied_twice_total() {
        // One direct copy per direction — the streamlined path's contract.
        let (k, client, _server, send) = setup_echo(ServerOptions::default());
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        let before = k.stats().snapshot();
        k.ipc_call(&conn, &[9; 100], &[]).unwrap();
        let d = k.stats().snapshot().since(&before);
        assert_eq!(d.bytes_copied_user_to_user, 200);
        assert_eq!(d.messages, 1);
    }

    #[test]
    fn reply_into_reuses_buffer() {
        let (k, client, _server, send) = setup_echo(ServerOptions::default());
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        let mut reply = Vec::new();
        for i in 0..3u8 {
            k.ipc_call_into(&conn, [0; MSG_REGS], &[i; 16], &[], &mut reply).unwrap();
            assert_eq!(reply, vec![i; 16]);
        }
    }

    #[test]
    fn signature_mismatch_refused_at_bind() {
        let (k, client, _server, send) =
            setup_echo(ServerOptions { signature: Some(0xAAAA), ..Default::default() });
        let err = k
            .ipc_bind(client, send, BindOptions { signature: Some(0xBBBB), ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, KernelError::SignatureMismatch { .. }));
        // Matching signatures bind fine.
        k.ipc_bind(client, send, BindOptions { signature: Some(0xAAAA), ..Default::default() })
            .unwrap();
        // A client that does not declare a signature also binds (wildcard).
        k.ipc_bind(client, send, BindOptions::default()).unwrap();
    }

    #[test]
    fn no_server_registered_reported() {
        let k = Kernel::new();
        let a = k.create_task("a", 64).unwrap();
        let b = k.create_task("b", 64).unwrap();
        let p = k.port_allocate(a).unwrap();
        let send = k.extract_send_right(a, p, b).unwrap();
        assert!(matches!(k.ipc_bind(b, send, BindOptions::default()), Err(KernelError::NoServer)));
    }

    #[test]
    fn register_requires_receive_right() {
        let k = Kernel::new();
        let a = k.create_task("a", 64).unwrap();
        let b = k.create_task("b", 64).unwrap();
        let p = k.port_allocate(a).unwrap();
        let send = k.extract_send_right(a, p, b).unwrap();
        let err = k
            .register_server(b, send, ServerOptions::default(), |_k, _m| Ok(MsgOut::default()))
            .unwrap_err();
        assert_eq!(err, KernelError::NotReceiver);
    }

    #[test]
    fn double_register_refused() {
        let (k, _client, server, _send) = setup_echo(ServerOptions::default());
        // `setup_echo` registered on the server's port name 1; find it again.
        let err = k
            .register_server(server, PortName(1), ServerOptions::default(), |_k, _m| {
                Ok(MsgOut::default())
            })
            .unwrap_err();
        assert_eq!(err, KernelError::ServerExists);
    }

    #[test]
    fn oversized_body_refused() {
        let (k, client, _server, send) = setup_echo(ServerOptions::default());
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        let big = vec![0u8; MAX_BODY + 1];
        assert!(matches!(k.ipc_call(&conn, &big, &[]), Err(KernelError::MsgTooLarge(_))));
    }

    #[test]
    fn server_failure_code_propagates() {
        let k = Kernel::new();
        let client = k.create_task("client", 64).unwrap();
        let server = k.create_task("server", 64).unwrap();
        let port = k.port_allocate(server).unwrap();
        k.register_server(server, port, ServerOptions::default(), |_k, _m| Err(42)).unwrap();
        let send = k.extract_send_right(server, port, client).unwrap();
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        assert_eq!(k.ipc_call(&conn, &[], &[]).unwrap_err(), KernelError::ServerFailure(42));
    }

    #[test]
    fn rights_travel_in_messages() {
        // Client sends the server a send right to a third port; the server
        // sends it back; the client ends up holding it under some name.
        let k = Kernel::new();
        let client = k.create_task("client", 64).unwrap();
        let server = k.create_task("server", 64).unwrap();
        let third = k.create_task("third", 64).unwrap();
        let third_port = k.port_allocate(third).unwrap();
        let client_third = k.extract_send_right(third, third_port, client).unwrap();

        let port = k.port_allocate(server).unwrap();
        k.register_server(server, port, ServerOptions::default(), |_k, m| {
            Ok(MsgOut { regs: m.regs, body: vec![], rights: m.rights })
        })
        .unwrap();
        let send = k.extract_send_right(server, port, client).unwrap();
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();

        let before = k.stats().snapshot();
        let reply = k.ipc_call(&conn, &[], &[client_third]).unwrap();
        assert_eq!(reply.rights.len(), 1);
        let d = k.stats().snapshot().since(&before);
        assert_eq!(d.rights_transferred, 2, "client→server and server→client");
        // The returned right resolves to the third task's port.
        let got = k.resolve_port(client, reply.rights[0]).unwrap();
        let orig = k.resolve_port(client, client_third).unwrap();
        assert_eq!(got, orig);
    }

    #[test]
    fn nonunique_bindings_mint_fresh_reply_names() {
        let k = Kernel::new();
        let client = k.create_task("client", 64).unwrap();
        let server = k.create_task("server", 64).unwrap();
        let obj = k.port_allocate(server).unwrap();
        let port = k.port_allocate(server).unwrap();
        // Server hands out a right to `obj` on every call.
        k.register_server(server, port, ServerOptions::default(), move |_k, m| {
            Ok(MsgOut { regs: m.regs, body: vec![], rights: vec![obj] })
        })
        .unwrap();
        let send = k.extract_send_right(server, port, client).unwrap();

        let unique_conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        let r1 = k.ipc_call(&unique_conn, &[], &[]).unwrap().rights[0];
        let r2 = k.ipc_call(&unique_conn, &[], &[]).unwrap().rights[0];
        assert_eq!(r1, r2, "unique mode coalesces to one name");

        let nonunique_conn = k
            .ipc_bind(
                client,
                send,
                BindOptions { name_mode: NameMode::NonUnique, ..Default::default() },
            )
            .unwrap();
        let r3 = k.ipc_call(&nonunique_conn, &[], &[]).unwrap().rights[0];
        let r4 = k.ipc_call(&nonunique_conn, &[], &[]).unwrap().rights[0];
        assert_ne!(r3, r4, "[nonunique] mints a fresh name per transfer");
    }

    #[test]
    fn trust_pair_compiles_into_connection() {
        let (k, client, _server, send) =
            setup_echo(ServerOptions { trust_of_client: TrustLevel::Leaky, ..Default::default() });
        let strict = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        let trusting = k
            .ipc_bind(
                client,
                send,
                BindOptions { trust_of_server: TrustLevel::LeakyUnprotected, ..Default::default() },
            )
            .unwrap();
        assert!(strict.reg_path().len() > trusting.reg_path().len());
        // Both still function.
        assert_eq!(k.ipc_call(&strict, b"x", &[]).unwrap().body, b"x");
        assert_eq!(k.ipc_call(&trusting, b"x", &[]).unwrap().body, b"x");
    }

    #[test]
    fn register_ops_counter_scales_with_trust() {
        let (k, client, _server, send) = setup_echo(ServerOptions::default());
        let strict = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        let before = k.stats().snapshot();
        k.ipc_call(&strict, &[], &[]).unwrap();
        let strict_ops = k.stats().snapshot().since(&before).register_ops;
        assert_eq!(strict_ops, strict.reg_path().len() as u64);
    }

    #[test]
    fn drop_fault_loses_one_call() {
        let (k, client, _server, send) = setup_echo(ServerOptions::default());
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        k.faults().on_next_call(flexrpc_clock::Fault::Drop);
        assert_eq!(k.ipc_call(&conn, b"x", &[]).unwrap_err(), KernelError::Dropped);
        assert_eq!(k.ipc_call(&conn, b"x", &[]).unwrap().body, b"x");
    }

    #[test]
    fn delay_fault_advances_kernel_clock() {
        let (k, client, _server, send) = setup_echo(ServerOptions::default());
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        k.faults().on_next_call(flexrpc_clock::Fault::Delay(2_000_000));
        let t0 = k.clock().now_ns();
        k.ipc_call(&conn, b"x", &[]).unwrap();
        assert_eq!(k.clock().now_ns(), t0 + 2_000_000);
    }

    #[test]
    fn duplicate_fault_runs_handler_twice() {
        let k = Kernel::new();
        let client = k.create_task("client", 64).unwrap();
        let server = k.create_task("server", 64).unwrap();
        let port = k.port_allocate(server).unwrap();
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let h = std::sync::Arc::clone(&hits);
        k.register_server(server, port, ServerOptions::default(), move |_k, m| {
            h.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(MsgOut { regs: m.regs, body: m.body.to_vec(), rights: vec![] })
        })
        .unwrap();
        let send = k.extract_send_right(server, port, client).unwrap();
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        k.faults().on_next_call(flexrpc_clock::Fault::Duplicate);
        assert_eq!(k.ipc_call(&conn, b"dup", &[]).unwrap().body, b"dup");
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn handler_may_reenter_kernel() {
        // The pipe server allocates user memory and copies inside handlers;
        // make sure no lock is held across the handler call.
        let k = Kernel::new();
        let client = k.create_task("client", 4096).unwrap();
        let server = k.create_task("server", 4096).unwrap();
        let port = k.port_allocate(server).unwrap();
        k.register_server(server, port, ServerOptions::default(), move |kk, m| {
            let addr = kk.user_alloc(server, m.body.len()).map_err(|_| 1u32)?;
            kk.copyout(server, addr, m.body).map_err(|_| 2u32)?;
            let copy = kk.copyin_vec(server, addr, m.body.len()).map_err(|_| 3u32)?;
            Ok(MsgOut { regs: m.regs, body: copy, rights: vec![] })
        })
        .unwrap();
        let send = k.extract_send_right(server, port, client).unwrap();
        let conn = k.ipc_bind(client, send, BindOptions::default()).unwrap();
        assert_eq!(k.ipc_call(&conn, b"reenter", &[]).unwrap().body, b"reenter");
    }
}
