//! Trust levels and the trust-parameterized register path.
//!
//! On the paper's streamlined IPC path, a large share of a null RPC is
//! register traffic: saving the caller's registers, scrubbing what must not
//! leak into the other domain, and restoring on return. §4.5 observes that
//! how much of this is *necessary* depends on a presentation attribute — the
//! degree to which each endpoint trusts the other:
//!
//! * no trust (default) — protect both confidentiality (scrub) and integrity
//!   (save/restore);
//! * `[leaky]` — the peer may *see* our registers (no scrub) but must not be
//!   able to corrupt them (still save/restore);
//! * `[leaky, unprotected]` — full trust; no register protection at all.
//!
//! At bind time the kernel compiles both sides' declared levels into a
//! *combination signature*: two threaded-code sequences of [`RegOp`]s run
//! before entering the server and before returning to the client. A server's
//! `unprotected` adds nothing beyond its `leaky` (trusting the client's
//! *correctness* requires no kernel work once its frame is dead), which is
//! why the paper's Figure 12 shows two equal columns on the server axis —
//! an equality this module reproduces and tests.

use crate::stats::KernelStats;
use std::hint::black_box;

/// Number of simulated general-purpose registers (PA-RISC has 32).
pub const NREGS: usize = 32;
/// Registers that carry inline message data and are therefore never scrubbed.
pub const MSG_REGS: usize = 8;

/// How far one endpoint trusts the other (a presentation attribute: it never
/// affects the network contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum TrustLevel {
    /// No trust: protect confidentiality and integrity (the default).
    #[default]
    None,
    /// `[leaky]`: information may leak to the peer, corruption is prevented.
    Leaky,
    /// `[leaky, unprotected]`: full trust of confidentiality and integrity.
    LeakyUnprotected,
}

impl TrustLevel {
    /// All levels, in the order the paper's Figure 12 axes use.
    pub const ALL: [TrustLevel; 3] =
        [TrustLevel::None, TrustLevel::Leaky, TrustLevel::LeakyUnprotected];

    /// The PDL spelling of this level (empty for the default).
    pub fn pdl_attrs(self) -> &'static str {
        match self {
            TrustLevel::None => "",
            TrustLevel::Leaky => "leaky",
            TrustLevel::LeakyUnprotected => "leaky, unprotected",
        }
    }

    /// Short label used in reports and bench IDs.
    pub fn label(self) -> &'static str {
        match self {
            TrustLevel::None => "none",
            TrustLevel::Leaky => "leaky",
            TrustLevel::LeakyUnprotected => "leaky+unprot",
        }
    }
}

/// A simulated register file plus its kernel-side save frame.
///
/// Covers both the general-purpose file and the floating-point file
/// (PA-RISC has 32 of each); FP registers never carry message words, so
/// the confidentiality scrub covers all of them.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    /// Live general registers (first [`MSG_REGS`] carry message words).
    pub live: [u64; NREGS],
    /// Live floating-point registers (bit patterns).
    pub fp: [u64; NREGS],
    /// Kernel save area for the general file.
    saved: [u64; NREGS],
    /// Kernel save area for the FP file.
    fp_saved: [u64; NREGS],
}

impl Default for RegisterFile {
    fn default() -> Self {
        RegisterFile { live: [0; NREGS], fp: [0; NREGS], saved: [0; NREGS], fp_saved: [0; NREGS] }
    }
}

impl RegisterFile {
    /// A register file with deterministic non-zero contents (tests).
    pub fn seeded() -> Self {
        let mut rf = RegisterFile::default();
        for (i, r) in rf.live.iter_mut().enumerate() {
            *r = 0x1111_1111_0000_0000 + i as u64;
        }
        for (i, r) in rf.fp.iter_mut().enumerate() {
            *r = 0x2222_2222_0000_0000 + i as u64;
        }
        rf
    }
}

/// One threaded-code block of the combination signature's register path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOp {
    /// Save every live register into the kernel frame.
    SaveAll,
    /// Restore every live register from the kernel frame.
    RestoreAll,
    /// Zero every non-message register (confidentiality scrub).
    ScrubNonMessage,
}

/// The register-path halves of a bind-time combination signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegPath {
    /// Ops run after copying the request, before entering the server.
    pub pre: Vec<RegOp>,
    /// Ops run after the server returns, before resuming the client.
    pub post: Vec<RegOp>,
}

impl RegPath {
    /// Compiles the pairwise trust declaration into threaded register code.
    ///
    /// The *client's* trust of the server decides how the client's state is
    /// protected while the server runs: scrub on entry unless at least
    /// `Leaky`, save/restore unless `LeakyUnprotected`. The *server's* trust
    /// of the client decides whether its registers are scrubbed before the
    /// reply resumes the client; its `LeakyUnprotected` is deliberately
    /// identical to `Leaky` (see module docs).
    pub fn compile(client_trust: TrustLevel, server_trust: TrustLevel) -> RegPath {
        let mut pre = Vec::new();
        let mut post = Vec::new();
        if client_trust != TrustLevel::LeakyUnprotected {
            // Integrity: preserve the client's registers across the server.
            pre.push(RegOp::SaveAll);
            post.push(RegOp::RestoreAll);
        }
        if client_trust == TrustLevel::None {
            // Confidentiality: hide the client's registers from the server.
            pre.push(RegOp::ScrubNonMessage);
        }
        if server_trust == TrustLevel::None {
            // Confidentiality: hide the server's registers from the client.
            post.insert(0, RegOp::ScrubNonMessage);
        }
        RegPath { pre, post }
    }

    /// Total number of ops in both halves (reported by bind diagnostics).
    pub fn len(&self) -> usize {
        self.pre.len() + self.post.len()
    }

    /// True if this path does no register work at all (full mutual trust).
    pub fn is_empty(&self) -> bool {
        self.pre.is_empty() && self.post.is_empty()
    }
}

/// Executes one half of a register path over `rf`.
///
/// The loop is a classic threaded interpreter: each op dispatches to a
/// non-inlined block so the cost structure resembles the paper's chained
/// code fragments rather than one fused memcpy the optimizer could elide.
pub fn run_ops(ops: &[RegOp], rf: &mut RegisterFile, stats: &KernelStats) {
    for op in ops {
        match op {
            RegOp::SaveAll => save_all(rf),
            RegOp::RestoreAll => restore_all(rf),
            RegOp::ScrubNonMessage => scrub_non_message(rf),
        }
    }
    KernelStats::add(&stats.register_ops, ops.len() as u64);
    // Defeat dead-store elimination: the register file is "hardware state".
    black_box(&mut rf.live);
}

#[inline(never)]
fn save_all(rf: &mut RegisterFile) {
    rf.saved.copy_from_slice(black_box(&rf.live));
    rf.fp_saved.copy_from_slice(black_box(&rf.fp));
}

#[inline(never)]
fn restore_all(rf: &mut RegisterFile) {
    rf.live.copy_from_slice(black_box(&rf.saved));
    rf.fp.copy_from_slice(black_box(&rf.fp_saved));
}

#[inline(never)]
fn scrub_non_message(rf: &mut RegisterFile) {
    for r in rf.live[MSG_REGS..].iter_mut() {
        *r = 0;
    }
    for r in rf.fp.iter_mut() {
        *r = 0;
    }
    black_box(&mut rf.live);
    black_box(&mut rf.fp);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(client: TrustLevel, server: TrustLevel) -> usize {
        RegPath::compile(client, server).len()
    }

    #[test]
    fn no_trust_is_most_expensive() {
        let base = work(TrustLevel::None, TrustLevel::None);
        for c in TrustLevel::ALL {
            for s in TrustLevel::ALL {
                assert!(work(c, s) <= base, "({c:?},{s:?}) exceeded the no-trust cost");
            }
        }
    }

    #[test]
    fn full_trust_is_free() {
        let p = RegPath::compile(TrustLevel::LeakyUnprotected, TrustLevel::LeakyUnprotected);
        assert!(p.is_empty());
    }

    #[test]
    fn server_unprotected_equals_server_leaky() {
        // The paper's footnote: the two right-most columns of Figure 12 are
        // equal because server-side `unprotected` adds nothing.
        for c in TrustLevel::ALL {
            assert_eq!(
                RegPath::compile(c, TrustLevel::Leaky),
                RegPath::compile(c, TrustLevel::LeakyUnprotected)
            );
        }
    }

    #[test]
    fn trust_monotonically_reduces_work() {
        for s in TrustLevel::ALL {
            assert!(work(TrustLevel::None, s) >= work(TrustLevel::Leaky, s));
            assert!(work(TrustLevel::Leaky, s) >= work(TrustLevel::LeakyUnprotected, s));
        }
        for c in TrustLevel::ALL {
            assert!(work(c, TrustLevel::None) >= work(c, TrustLevel::Leaky));
        }
    }

    #[test]
    fn save_restore_preserves_client_registers() {
        let stats = KernelStats::new();
        let path = RegPath::compile(TrustLevel::None, TrustLevel::None);
        let mut rf = RegisterFile::seeded();
        let before = rf.live;
        let fp_before = rf.fp;
        run_ops(&path.pre, &mut rf, &stats);
        // Server trashes everything.
        rf.live = [0xDEAD_BEEF; NREGS];
        rf.fp = [0xDEAD_BEEF; NREGS];
        run_ops(&path.post, &mut rf, &stats);
        assert_eq!(rf.live, before, "no-trust path must restore the client state");
        assert_eq!(rf.fp, fp_before, "FP registers restored too");
    }

    #[test]
    fn scrub_hides_non_message_registers() {
        let stats = KernelStats::new();
        let path = RegPath::compile(TrustLevel::None, TrustLevel::Leaky);
        let mut rf = RegisterFile::seeded();
        run_ops(&path.pre, &mut rf, &stats);
        for (i, r) in rf.live.iter().enumerate() {
            if i < MSG_REGS {
                assert_ne!(*r, 0, "message registers must survive the scrub");
            } else {
                assert_eq!(*r, 0, "non-message register {i} leaked");
            }
        }
    }

    #[test]
    fn unprotected_client_keeps_whatever_server_left() {
        let stats = KernelStats::new();
        let path = RegPath::compile(TrustLevel::LeakyUnprotected, TrustLevel::Leaky);
        assert!(path.pre.is_empty() && path.post.is_empty());
        let mut rf = RegisterFile::seeded();
        run_ops(&path.pre, &mut rf, &stats);
        rf.live[MSG_REGS] = 42;
        run_ops(&path.post, &mut rf, &stats);
        assert_eq!(rf.live[MSG_REGS], 42, "full trust performs no restore");
    }

    #[test]
    fn register_op_counter_tracks_ops() {
        let stats = KernelStats::new();
        let path = RegPath::compile(TrustLevel::None, TrustLevel::None);
        let mut rf = RegisterFile::seeded();
        run_ops(&path.pre, &mut rf, &stats);
        run_ops(&path.post, &mut rf, &stats);
        assert_eq!(stats.snapshot().register_ops, path.len() as u64);
    }

    #[test]
    fn pdl_spellings() {
        assert_eq!(TrustLevel::None.pdl_attrs(), "");
        assert_eq!(TrustLevel::Leaky.pdl_attrs(), "leaky");
        assert_eq!(TrustLevel::LeakyUnprotected.pdl_attrs(), "leaky, unprotected");
    }
}
