//! Deterministic time and fault injection for the simulated substrates.
//!
//! Every blocking point in the stack (kernel IPC receive, simulated-net
//! reply wait, engine queue dwell, same-domain call tickets) measures
//! deadlines against a [`SimClock`]: a virtual nanosecond counter that
//! only moves when the simulation charges it. Tests advance it by hand,
//! the net substrate advances it per packet, and fault plans advance it
//! to model a stalled peer — so a "1 ms deadline against a dead server"
//! test is exact, not a race against the host scheduler.
//!
//! [`FaultInjector`] holds an ordered plan of per-call faults
//! (drop / delay / duplicate the nth call) that the kernel and net
//! transports consult on every message, letting retry and deadline
//! policies be tested against induced failures deterministically.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A virtual clock counting simulated nanoseconds since start.
///
/// Shared (via `Arc`) by every substrate participating in one simulated
/// world. It never advances on its own: `advance` is called by the
/// simulation (wire charges, fault delays, retry backoff) or by tests.
#[derive(Debug, Default)]
pub struct SimClock {
    ns: AtomicU64,
}

impl SimClock {
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock { ns: AtomicU64::new(0) })
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }

    /// Advance the virtual clock by `ns` nanoseconds and return the new time.
    pub fn advance_ns(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::SeqCst) + ns
    }

    /// Advance by a [`std::time::Duration`] (saturating at u64 ns).
    pub fn advance(&self, d: std::time::Duration) -> u64 {
        self.advance_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// True if an absolute deadline (in sim-ns) has passed.
    pub fn expired(&self, deadline_ns: u64) -> bool {
        self.now_ns() > deadline_ns
    }
}

/// One induced failure, applied to a single call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The message is lost: the transport reports a retryable drop error.
    Drop,
    /// The peer stalls: the sim clock advances by this many nanoseconds
    /// before the call proceeds (deadlines may expire meanwhile).
    Delay(u64),
    /// The message is delivered twice (at-least-once delivery): the
    /// server handler runs twice; the caller sees the second reply.
    Duplicate,
    /// The server crashes *before* executing the call: the request is
    /// lost, the connection reports [`Disconnected`], and the injector
    /// enters a down state — every subsequent call fails the same way
    /// until the scheduled restart time passes on the [`SimClock`]
    /// (or [`FaultInjector::restore`] is called). `restart_after_ns`
    /// is relative to the crash instant; `None` means no restart.
    ///
    /// [`Disconnected`]: Fault::Crash
    Crash {
        /// Sim-time delay until the server comes back, if ever.
        restart_after_ns: Option<u64>,
    },
    /// The connection closes *after* the server executed the call but
    /// before the reply reaches the client: the handler ran (and an
    /// at-most-once server cached the reply), yet the caller sees a
    /// disconnect. A retry against a reply cache must be suppressed;
    /// without one it would re-execute. One-shot — the connection
    /// itself stays usable for the next call.
    Close,
    /// The network partitions between endpoints `a` and `b` (abstract
    /// endpoint ids — host indices on a simulated net, the conventional
    /// `(0, 1)` pair on point-to-point transports; [`FaultInjector::ANY`]
    /// is a wildcard matching every endpoint). The call that consumed the
    /// fault and every later call between the pair fail as disconnects
    /// until the sim clock passes `now + heal_after_ns` — the peers are
    /// alive, only the link between them is gone, so no restart is
    /// involved. `heal_after_ns == u64::MAX` partitions until
    /// [`FaultInjector::heal`].
    Partition {
        /// One side of the severed link.
        a: u64,
        /// The other side.
        b: u64,
        /// Sim-time until the link heals, relative to the cut.
        heal_after_ns: u64,
    },
    /// The link degrades: the transport charges `factor`× its normal
    /// wire/hop time for this call (one-shot; for a degradation *window*
    /// see [`FaultInjector::set_slow_link`]). The call still completes —
    /// a slow link loses time, not messages.
    SlowLink {
        /// Multiplier on the transport's per-call time charge.
        factor: u64,
    },
}

/// A deterministic per-call fault plan: "on the nth call, do X".
///
/// Calls are numbered from 0 in arrival order at the transport that owns
/// the injector. Each planned fault fires exactly once.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: Mutex<Vec<(u64, Fault)>>,
    calls: AtomicU64,
    /// Crash down-state: `Some(restart_at)` while the peer is down.
    /// `restart_at = Some(t)` schedules a restart once the sim clock
    /// passes `t`; `None` means down until [`FaultInjector::restore`].
    down: Mutex<Option<Option<u64>>>,
    /// Active partitions as `(a, b, heal_at)` — unordered endpoint pairs
    /// (either id may be [`FaultInjector::ANY`]) severed until the sim
    /// clock passes `heal_at`. Healed entries are dropped lazily on the
    /// next pair check.
    partitions: Mutex<Vec<(u64, u64, u64)>>,
    /// Link-degradation window: `(factor, until_ns)` — every call before
    /// `until_ns` charges `factor`× its normal wire time.
    slow: Mutex<Option<(u64, u64)>>,
}

impl FaultInjector {
    /// Wildcard endpoint id for [`Fault::Partition`]: matches any endpoint,
    /// so `(ANY, h)` isolates `h` from the whole network.
    pub const ANY: u64 = u64::MAX;

    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Schedule `fault` for the `nth` call (0-based) seen after now.
    pub fn on_nth_call(&self, nth: u64, fault: Fault) {
        self.plan.lock().push((self.calls.load(Ordering::SeqCst) + nth, fault));
    }

    /// Schedule `fault` for the next call.
    pub fn on_next_call(&self, fault: Fault) {
        self.on_nth_call(0, fault);
    }

    /// Record one call and return the fault planned for it, if any.
    pub fn next_call(&self) -> Option<Fault> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        let mut plan = self.plan.lock();
        let at = plan.iter().position(|(when, _)| *when == n)?;
        Some(plan.swap_remove(at).1)
    }

    /// Record one call with crash bookkeeping: while the injector is in
    /// the down state every call fails with [`Fault::Crash`] (restart
    /// pending), and a planned crash entering the down state schedules
    /// its restart at `now_ns + restart_after_ns`. Transports that model
    /// a killable peer call this instead of [`FaultInjector::next_call`],
    /// passing the current sim time.
    pub fn next_call_at(&self, now_ns: u64) -> Option<Fault> {
        self.next_call_between(now_ns, 0, 1)
    }

    /// Like [`FaultInjector::next_call_at`], but for a call between the
    /// endpoint pair `(a, b)`: while an active partition covers the pair
    /// the call fails with that [`Fault::Partition`] (no plan entry is
    /// consumed — the message never reached the link), and a planned
    /// partition firing here enters the pair-keyed partition state with
    /// its heal scheduled at `now_ns + heal_after_ns`. Point-to-point
    /// transports use the conventional `(0, 1)` pair.
    pub fn next_call_between(&self, now_ns: u64, a: u64, b: u64) -> Option<Fault> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        {
            let mut down = self.down.lock();
            match *down {
                Some(Some(restart_at)) if now_ns >= restart_at => *down = None,
                Some(_) => return Some(Fault::Crash { restart_after_ns: None }),
                None => {}
            }
        }
        if let Some((pa, pb, heal_at)) = self.active_partition(a, b, now_ns) {
            let heal_after_ns = if heal_at == u64::MAX { u64::MAX } else { heal_at - now_ns };
            return Some(Fault::Partition { a: pa, b: pb, heal_after_ns });
        }
        let fault = {
            let mut plan = self.plan.lock();
            let at = plan.iter().position(|(when, _)| *when == n)?;
            plan.swap_remove(at).1
        };
        match fault {
            Fault::Crash { restart_after_ns } => {
                *self.down.lock() = Some(restart_after_ns.map(|d| now_ns + d));
            }
            Fault::Partition { a: pa, b: pb, heal_after_ns } => {
                let heal_at = now_ns.saturating_add(heal_after_ns);
                self.partition(pa, pb, heal_at);
                // The cut severs the link mid-call only if this call
                // crosses the partitioned pair; an unrelated call proceeds.
                if !pair_matches(pa, pb, a, b) {
                    return None;
                }
            }
            _ => {}
        }
        Some(fault)
    }

    /// Enters the partition state directly: the link between `a` and `b`
    /// (either may be [`FaultInjector::ANY`]) is severed until the sim
    /// clock passes `heal_at_ns` (absolute; `u64::MAX` = until
    /// [`FaultInjector::heal`]). Schedule compilers use this to apply
    /// partition events at absolute sim times without burning plan slots.
    pub fn partition(&self, a: u64, b: u64, heal_at_ns: u64) {
        self.partitions.lock().push((a, b, heal_at_ns));
    }

    /// True while an active partition covers the pair `(a, b)` as of
    /// `now_ns`. Healed entries are dropped. Does not consume a call.
    pub fn is_partitioned(&self, a: u64, b: u64, now_ns: u64) -> bool {
        self.active_partition(a, b, now_ns).is_some()
    }

    fn active_partition(&self, a: u64, b: u64, now_ns: u64) -> Option<(u64, u64, u64)> {
        let mut parts = self.partitions.lock();
        parts.retain(|&(_, _, heal_at)| now_ns < heal_at);
        parts.iter().copied().find(|&(pa, pb, _)| pair_matches(pa, pb, a, b))
    }

    /// Heals every partition touching the pair `(a, b)` immediately
    /// (wildcards match both ways).
    pub fn heal(&self, a: u64, b: u64) {
        self.partitions.lock().retain(|&(pa, pb, _)| !pair_matches(pa, pb, a, b));
    }

    /// Heals every partition immediately (an operator reconnecting the
    /// fabric, or a restart wave).
    pub fn heal_all(&self) {
        self.partitions.lock().clear();
    }

    /// Degrades the link until the sim clock passes `until_ns`: every call
    /// in the window charges `factor`× its normal wire time (transports
    /// read the factor via [`FaultInjector::slow_factor`]). A later window
    /// replaces the current one.
    pub fn set_slow_link(&self, factor: u64, until_ns: u64) {
        *self.slow.lock() = Some((factor.max(1), until_ns));
    }

    /// The current wire-time multiplier (1 when the link is healthy).
    /// Expired windows are cleared. Does not consume a call.
    pub fn slow_factor(&self, now_ns: u64) -> u64 {
        let mut slow = self.slow.lock();
        match *slow {
            Some((factor, until_ns)) if now_ns < until_ns => factor,
            Some(_) => {
                *slow = None;
                1
            }
            None => 1,
        }
    }

    /// True while the injector's peer is crashed and has not restarted
    /// (as of `now_ns`). Does not consume a call.
    pub fn is_down(&self, now_ns: u64) -> bool {
        match *self.down.lock() {
            Some(Some(restart_at)) => now_ns < restart_at,
            Some(None) => true,
            None => false,
        }
    }

    /// Enters the crash down-state directly: the peer is down until the
    /// sim clock passes `restart_at_ns` (absolute; `None` = until
    /// [`FaultInjector::restore`]). Schedule compilers use this to apply
    /// crash events at absolute sim times without burning plan slots.
    pub fn crash(&self, restart_at_ns: Option<u64>) {
        *self.down.lock() = Some(restart_at_ns);
    }

    /// Clear the crash down-state immediately (an operator restart).
    pub fn restore(&self) {
        *self.down.lock() = None;
    }

    /// Number of calls observed so far.
    pub fn calls_seen(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

/// True if the stored partition pair `(pa, pb)` covers the call pair
/// `(a, b)`: pairs are unordered and [`FaultInjector::ANY`] on either
/// stored side matches any endpoint.
fn pair_matches(pa: u64, pb: u64, a: u64, b: u64) -> bool {
    let end_matches = |p: u64, e: u64| p == FaultInjector::ANY || p == e;
    (end_matches(pa, a) && end_matches(pb, b)) || (end_matches(pa, b) && end_matches(pb, a))
}

/// SplitMix64: a tiny, high-quality deterministic bit mixer.
///
/// Used for retry jitter — the backoff sequence for a given
/// `(seed, attempt)` pair is a pure function, so tests can assert exact
/// schedules and two clients with different seeds still de-correlate.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance_ns(5), 5);
        assert_eq!(c.advance(std::time::Duration::from_micros(1)), 1005);
        assert!(c.expired(1004));
        assert!(!c.expired(1005), "deadline at exactly now has not passed");
    }

    #[test]
    fn fault_plan_fires_once_on_the_right_call() {
        let f = FaultInjector::new();
        f.on_nth_call(1, Fault::Drop);
        assert_eq!(f.next_call(), None);
        assert_eq!(f.next_call(), Some(Fault::Drop));
        assert_eq!(f.next_call(), None);
        assert_eq!(f.calls_seen(), 3);
    }

    #[test]
    fn fault_plan_is_relative_to_calls_already_seen() {
        let f = FaultInjector::new();
        f.next_call();
        f.on_next_call(Fault::Duplicate);
        assert_eq!(f.next_call(), Some(Fault::Duplicate));
    }

    #[test]
    fn crash_enters_down_state_until_scheduled_restart() {
        let f = FaultInjector::new();
        f.on_next_call(Fault::Crash { restart_after_ns: Some(1_000) });
        // Call 0 at t=100: crash fires, restart scheduled for t=1100.
        assert_eq!(f.next_call_at(100), Some(Fault::Crash { restart_after_ns: Some(1_000) }));
        assert!(f.is_down(500));
        // Still down before the restart time: every call crashes.
        assert!(matches!(f.next_call_at(1_099), Some(Fault::Crash { .. })));
        // Past the restart: back up, plan empty, calls succeed.
        assert!(!f.is_down(1_100));
        assert_eq!(f.next_call_at(1_100), None);
        assert_eq!(f.calls_seen(), 3);
    }

    #[test]
    fn crash_without_restart_stays_down_until_restored() {
        let f = FaultInjector::new();
        f.on_next_call(Fault::Crash { restart_after_ns: None });
        assert!(matches!(f.next_call_at(0), Some(Fault::Crash { .. })));
        assert!(matches!(f.next_call_at(u64::MAX), Some(Fault::Crash { .. })));
        f.restore();
        assert_eq!(f.next_call_at(0), None);
    }

    #[test]
    fn close_is_one_shot_and_leaves_the_injector_up() {
        let f = FaultInjector::new();
        f.on_nth_call(1, Fault::Close);
        assert_eq!(f.next_call_at(0), None);
        assert_eq!(f.next_call_at(0), Some(Fault::Close));
        assert!(!f.is_down(0));
        assert_eq!(f.next_call_at(0), None);
    }

    #[test]
    fn splitmix64_is_a_pure_function() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn planned_partition_severs_the_pair_until_heal_time() {
        let f = FaultInjector::new();
        f.on_next_call(Fault::Partition { a: 0, b: 1, heal_after_ns: 1_000 });
        // The cut fires at t=100 and severs the consuming call's link.
        assert!(matches!(f.next_call_between(100, 0, 1), Some(Fault::Partition { .. })));
        // Every later call on the pair fails too, without burning plan
        // entries, until the heal time passes; order is irrelevant.
        assert!(matches!(f.next_call_between(500, 1, 0), Some(Fault::Partition { .. })));
        assert!(f.is_partitioned(0, 1, 1_099));
        // An unrelated pair is unaffected.
        assert_eq!(f.next_call_between(500, 2, 3), None);
        // Healed: the link carries calls again.
        assert!(!f.is_partitioned(0, 1, 1_100));
        assert_eq!(f.next_call_between(1_100, 0, 1), None);
    }

    #[test]
    fn planned_partition_for_another_pair_installs_state_without_failing_the_call() {
        let f = FaultInjector::new();
        f.on_next_call(Fault::Partition { a: 5, b: 6, heal_after_ns: 1_000 });
        // The consuming call crosses (0, 1): it proceeds, but (5, 6) is cut.
        assert_eq!(f.next_call_between(0, 0, 1), None);
        assert!(f.is_partitioned(5, 6, 500));
        assert!(matches!(f.next_call_between(500, 6, 5), Some(Fault::Partition { .. })));
    }

    #[test]
    fn wildcard_partition_isolates_one_endpoint_from_everyone() {
        let f = FaultInjector::new();
        f.partition(FaultInjector::ANY, 7, 2_000);
        assert!(f.is_partitioned(0, 7, 0));
        assert!(f.is_partitioned(7, 123, 0));
        assert!(!f.is_partitioned(0, 1, 0), "pairs not touching 7 still carry");
        f.heal(FaultInjector::ANY, 7);
        assert!(!f.is_partitioned(0, 7, 0));
    }

    #[test]
    fn direct_partition_uses_absolute_heal_time_and_heal_all_clears() {
        let f = FaultInjector::new();
        f.partition(1, 2, 5_000);
        f.partition(3, 4, u64::MAX);
        assert!(f.is_partitioned(1, 2, 4_999));
        assert!(!f.is_partitioned(1, 2, 5_000), "healed exactly at the heal time");
        assert!(f.is_partitioned(3, 4, u64::MAX - 1), "MAX heals only by hand");
        f.heal_all();
        assert!(!f.is_partitioned(3, 4, 0));
    }

    #[test]
    fn crash_dominates_partition() {
        let f = FaultInjector::new();
        f.crash(Some(1_000));
        f.partition(0, 1, u64::MAX);
        assert!(matches!(f.next_call_between(0, 0, 1), Some(Fault::Crash { .. })));
        // Restarted but still partitioned.
        assert!(matches!(f.next_call_between(1_000, 0, 1), Some(Fault::Partition { .. })));
    }

    #[test]
    fn slow_link_window_multiplies_until_expiry() {
        let f = FaultInjector::new();
        assert_eq!(f.slow_factor(0), 1, "healthy link");
        f.set_slow_link(8, 1_000);
        assert_eq!(f.slow_factor(999), 8);
        assert_eq!(f.slow_factor(1_000), 1, "window expired");
        assert_eq!(f.slow_factor(0), 1, "expiry cleared the window");
    }

    #[test]
    fn planned_slow_link_is_one_shot() {
        let f = FaultInjector::new();
        f.on_next_call(Fault::SlowLink { factor: 4 });
        assert_eq!(f.next_call_at(0), Some(Fault::SlowLink { factor: 4 }));
        assert_eq!(f.next_call_at(0), None);
        assert_eq!(f.slow_factor(0), 1, "a one-shot fault opens no window");
    }
}
