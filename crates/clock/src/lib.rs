//! Deterministic time and fault injection for the simulated substrates.
//!
//! Every blocking point in the stack (kernel IPC receive, simulated-net
//! reply wait, engine queue dwell, same-domain call tickets) measures
//! deadlines against a [`SimClock`]: a virtual nanosecond counter that
//! only moves when the simulation charges it. Tests advance it by hand,
//! the net substrate advances it per packet, and fault plans advance it
//! to model a stalled peer — so a "1 ms deadline against a dead server"
//! test is exact, not a race against the host scheduler.
//!
//! [`FaultInjector`] holds an ordered plan of per-call faults
//! (drop / delay / duplicate the nth call) that the kernel and net
//! transports consult on every message, letting retry and deadline
//! policies be tested against induced failures deterministically.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A virtual clock counting simulated nanoseconds since start.
///
/// Shared (via `Arc`) by every substrate participating in one simulated
/// world. It never advances on its own: `advance` is called by the
/// simulation (wire charges, fault delays, retry backoff) or by tests.
#[derive(Debug, Default)]
pub struct SimClock {
    ns: AtomicU64,
}

impl SimClock {
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock { ns: AtomicU64::new(0) })
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }

    /// Advance the virtual clock by `ns` nanoseconds and return the new time.
    pub fn advance_ns(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::SeqCst) + ns
    }

    /// Advance by a [`std::time::Duration`] (saturating at u64 ns).
    pub fn advance(&self, d: std::time::Duration) -> u64 {
        self.advance_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// True if an absolute deadline (in sim-ns) has passed.
    pub fn expired(&self, deadline_ns: u64) -> bool {
        self.now_ns() > deadline_ns
    }
}

/// One induced failure, applied to a single call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The message is lost: the transport reports a retryable drop error.
    Drop,
    /// The peer stalls: the sim clock advances by this many nanoseconds
    /// before the call proceeds (deadlines may expire meanwhile).
    Delay(u64),
    /// The message is delivered twice (at-least-once delivery): the
    /// server handler runs twice; the caller sees the second reply.
    Duplicate,
    /// The server crashes *before* executing the call: the request is
    /// lost, the connection reports [`Disconnected`], and the injector
    /// enters a down state — every subsequent call fails the same way
    /// until the scheduled restart time passes on the [`SimClock`]
    /// (or [`FaultInjector::restore`] is called). `restart_after_ns`
    /// is relative to the crash instant; `None` means no restart.
    ///
    /// [`Disconnected`]: Fault::Crash
    Crash {
        /// Sim-time delay until the server comes back, if ever.
        restart_after_ns: Option<u64>,
    },
    /// The connection closes *after* the server executed the call but
    /// before the reply reaches the client: the handler ran (and an
    /// at-most-once server cached the reply), yet the caller sees a
    /// disconnect. A retry against a reply cache must be suppressed;
    /// without one it would re-execute. One-shot — the connection
    /// itself stays usable for the next call.
    Close,
}

/// A deterministic per-call fault plan: "on the nth call, do X".
///
/// Calls are numbered from 0 in arrival order at the transport that owns
/// the injector. Each planned fault fires exactly once.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: Mutex<Vec<(u64, Fault)>>,
    calls: AtomicU64,
    /// Crash down-state: `Some(restart_at)` while the peer is down.
    /// `restart_at = Some(t)` schedules a restart once the sim clock
    /// passes `t`; `None` means down until [`FaultInjector::restore`].
    down: Mutex<Option<Option<u64>>>,
}

impl FaultInjector {
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Schedule `fault` for the `nth` call (0-based) seen after now.
    pub fn on_nth_call(&self, nth: u64, fault: Fault) {
        self.plan.lock().push((self.calls.load(Ordering::SeqCst) + nth, fault));
    }

    /// Schedule `fault` for the next call.
    pub fn on_next_call(&self, fault: Fault) {
        self.on_nth_call(0, fault);
    }

    /// Record one call and return the fault planned for it, if any.
    pub fn next_call(&self) -> Option<Fault> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        let mut plan = self.plan.lock();
        let at = plan.iter().position(|(when, _)| *when == n)?;
        Some(plan.swap_remove(at).1)
    }

    /// Record one call with crash bookkeeping: while the injector is in
    /// the down state every call fails with [`Fault::Crash`] (restart
    /// pending), and a planned crash entering the down state schedules
    /// its restart at `now_ns + restart_after_ns`. Transports that model
    /// a killable peer call this instead of [`FaultInjector::next_call`],
    /// passing the current sim time.
    pub fn next_call_at(&self, now_ns: u64) -> Option<Fault> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        {
            let mut down = self.down.lock();
            match *down {
                Some(Some(restart_at)) if now_ns >= restart_at => *down = None,
                Some(_) => return Some(Fault::Crash { restart_after_ns: None }),
                None => {}
            }
        }
        let fault = {
            let mut plan = self.plan.lock();
            let at = plan.iter().position(|(when, _)| *when == n)?;
            plan.swap_remove(at).1
        };
        if let Fault::Crash { restart_after_ns } = fault {
            *self.down.lock() = Some(restart_after_ns.map(|d| now_ns + d));
        }
        Some(fault)
    }

    /// True while the injector's peer is crashed and has not restarted
    /// (as of `now_ns`). Does not consume a call.
    pub fn is_down(&self, now_ns: u64) -> bool {
        match *self.down.lock() {
            Some(Some(restart_at)) => now_ns < restart_at,
            Some(None) => true,
            None => false,
        }
    }

    /// Clear the crash down-state immediately (an operator restart).
    pub fn restore(&self) {
        *self.down.lock() = None;
    }

    /// Number of calls observed so far.
    pub fn calls_seen(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

/// SplitMix64: a tiny, high-quality deterministic bit mixer.
///
/// Used for retry jitter — the backoff sequence for a given
/// `(seed, attempt)` pair is a pure function, so tests can assert exact
/// schedules and two clients with different seeds still de-correlate.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance_ns(5), 5);
        assert_eq!(c.advance(std::time::Duration::from_micros(1)), 1005);
        assert!(c.expired(1004));
        assert!(!c.expired(1005), "deadline at exactly now has not passed");
    }

    #[test]
    fn fault_plan_fires_once_on_the_right_call() {
        let f = FaultInjector::new();
        f.on_nth_call(1, Fault::Drop);
        assert_eq!(f.next_call(), None);
        assert_eq!(f.next_call(), Some(Fault::Drop));
        assert_eq!(f.next_call(), None);
        assert_eq!(f.calls_seen(), 3);
    }

    #[test]
    fn fault_plan_is_relative_to_calls_already_seen() {
        let f = FaultInjector::new();
        f.next_call();
        f.on_next_call(Fault::Duplicate);
        assert_eq!(f.next_call(), Some(Fault::Duplicate));
    }

    #[test]
    fn crash_enters_down_state_until_scheduled_restart() {
        let f = FaultInjector::new();
        f.on_next_call(Fault::Crash { restart_after_ns: Some(1_000) });
        // Call 0 at t=100: crash fires, restart scheduled for t=1100.
        assert_eq!(f.next_call_at(100), Some(Fault::Crash { restart_after_ns: Some(1_000) }));
        assert!(f.is_down(500));
        // Still down before the restart time: every call crashes.
        assert!(matches!(f.next_call_at(1_099), Some(Fault::Crash { .. })));
        // Past the restart: back up, plan empty, calls succeed.
        assert!(!f.is_down(1_100));
        assert_eq!(f.next_call_at(1_100), None);
        assert_eq!(f.calls_seen(), 3);
    }

    #[test]
    fn crash_without_restart_stays_down_until_restored() {
        let f = FaultInjector::new();
        f.on_next_call(Fault::Crash { restart_after_ns: None });
        assert!(matches!(f.next_call_at(0), Some(Fault::Crash { .. })));
        assert!(matches!(f.next_call_at(u64::MAX), Some(Fault::Crash { .. })));
        f.restore();
        assert_eq!(f.next_call_at(0), None);
    }

    #[test]
    fn close_is_one_shot_and_leaves_the_injector_up() {
        let f = FaultInjector::new();
        f.on_nth_call(1, Fault::Close);
        assert_eq!(f.next_call_at(0), None);
        assert_eq!(f.next_call_at(0), Some(Fault::Close));
        assert!(!f.is_down(0));
        assert_eq!(f.next_call_at(0), None);
    }

    #[test]
    fn splitmix64_is_a_pure_function() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
