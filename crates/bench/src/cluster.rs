//! CLUSTER experiment: the thousand-host deterministic cluster sim.
//!
//! Drives [`flexrpc_cluster`] over a fixed seed matrix at full scale —
//! ~a thousand simulated client hosts against a three-replica engine
//! group sharing one at-most-once reply cache — and exposes the pieces
//! the `report cluster` figure needs: the matrix runner, the replay
//! verifier (same seed, byte-identical trace), and the latency bound the
//! `--check` gate holds p99 to.

pub use flexrpc_cluster::{percentile, run_seed, ClusterConfig, ClusterRun, Schedule};

/// The seed matrix `report cluster` sweeps: 1..=SEEDS.
pub const SEEDS: u64 = 16;

/// Client hosts / replicas / calls at full scale (the acceptance bar is
/// ≥1000 hosts and a ≥3-replica group).
pub const CLIENTS: usize = 1024;
pub const REPLICAS: usize = 3;
pub const CALLS: usize = 4096;

/// The recorded p99 dwell bound, sim ns. A healthy small call on the
/// gigabit profile round-trips in ~30 µs; storms add failover walks
/// (each a wire round-trip per probed replica) and slow-link windows
/// multiply wire time up to 8×. The worst p99 across the fixed matrix is
/// 65,536 ns (one log2 bucket above healthy), and the matrix is
/// deterministic, so 1 ms is ~15× headroom while still catching any
/// change that introduces an unbounded retry or a runaway stall.
pub const P99_BOUND_NS: u64 = 1_000_000;

/// The full-scale configuration every `report cluster` run uses.
pub fn config() -> ClusterConfig {
    ClusterConfig { clients: CLIENTS, replicas: REPLICAS, calls: CALLS, ..ClusterConfig::default() }
}

/// Runs one seed at full scale.
pub fn run(seed: u64) -> ClusterRun {
    run_seed(&config(), seed)
}

/// Replays `seed` from scratch and reports whether the second fleet
/// reproduced the first run exactly — metrics ledger equal and trace
/// bytes identical. The tuple is (metrics_equal, trace_identical).
pub fn replay(first: &ClusterRun) -> (bool, bool) {
    let second = run_seed(&config(), first.seed);
    (second == *first, second.trace.as_bytes() == first.trace.as_bytes())
}

/// The command line that reproduces one seed, printed when a seed fails
/// so the failure is one copy-paste away from a debugger.
pub fn replay_command(seed: u64) -> String {
    format!("cargo run --release -p flexrpc-bench --bin report -- cluster --seed {seed}")
}

#[cfg(test)]
mod tests {
    use super::*;

    // SEEDS is a const, but the assertion documents the acceptance floor
    // the matrix must keep clearing if anyone retunes it.
    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn full_scale_config_meets_the_acceptance_floor() {
        let cfg = config();
        assert!(cfg.clients >= 1000, "at least a thousand simulated hosts");
        assert!(cfg.replicas >= 3, "at least a three-replica group");
        assert!(SEEDS >= 16, "at least sixteen seeded schedules");
    }
}
