//! Experiment drivers for every measured figure in the paper.
//!
//! Each module builds one experiment's setup and exposes a `run`-shaped
//! entry point used both by the Criterion benches (`benches/fig*.rs`) and
//! by the `report` binary that prints paper-style rows for EXPERIMENTS.md.
//! Keeping the drivers here guarantees the two measure the same code.

pub mod ablate;
pub mod cluster;
pub mod failover;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fuse;
pub mod port;
pub mod qos;
pub mod scale;
pub mod serve;
pub mod shed;
pub mod stream;
pub mod trace;

/// Measures `f` with a simple best-of-trimmed-mean loop (the `report`
/// binary's clock; Criterion is used for the statically-defined benches).
///
/// Runs `iters` iterations `rounds` times and returns the median round's
/// mean nanoseconds per iteration.
pub fn measure_ns(rounds: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    assert!(rounds >= 1 && iters >= 1);
    let mut per_round = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        per_round.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_round.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    per_round[rounds / 2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn measure_ns_returns_positive() {
        let ns = super::measure_ns(3, 10, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(ns > 0.0);
    }
}
