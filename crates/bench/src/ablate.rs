//! Ablations: the design knobs DESIGN.md calls out, measured.
//!
//! * The pipe read/write path, presentation by presentation: default →
//!   `dealloc(never)` (Figure 6) → plus the wrap-around optimization the
//!   paper skipped → plus the §4.2.1 write-path enhancement (kernel direct
//!   receive).
//! * Parameter-size sweeps: how the same-domain mutability result
//!   (Figure 10) and the trust result (Figure 12) scale with payload size —
//!   the paper's closing observation that presentation matters most when
//!   everything else is fast.

use crate::fig10;
use flexrpc_kernel::ipc::{BindOptions, MsgOut, ServerOptions};
use flexrpc_kernel::regs::MSG_REGS;
use flexrpc_kernel::{Connection, Kernel, TrustLevel};
use flexrpc_pipes::ipc::PipeIpcHarness;
use flexrpc_pipes::server::ReadPresentation;
use std::sync::Arc;

/// The pipe-path ablation ladder, in cumulative order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeStep {
    /// Default presentation everywhere (the Figure 6 baseline).
    Baseline,
    /// `[dealloc(never)]` read replies (the Figure 6 optimization).
    DeallocNever,
    /// Plus the wrap-around gather the paper left unimplemented.
    WrapOptimized,
    /// Plus the §4.2.1 write-path enhancement (direct receive).
    DirectWrite,
}

impl PipeStep {
    /// All steps in ladder order.
    pub const ALL: [PipeStep; 4] = [
        PipeStep::Baseline,
        PipeStep::DeallocNever,
        PipeStep::WrapOptimized,
        PipeStep::DirectWrite,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            PipeStep::Baseline => "baseline",
            PipeStep::DeallocNever => "+dealloc(never)",
            PipeStep::WrapOptimized => "+wrap-gather",
            PipeStep::DirectWrite => "+direct-write",
        }
    }

    /// Builds the harness for this step.
    pub fn harness(self, pipe_cap: usize) -> PipeIpcHarness {
        match self {
            PipeStep::Baseline => {
                PipeIpcHarness::with_options(pipe_cap, ReadPresentation::Default, false)
            }
            PipeStep::DeallocNever => {
                PipeIpcHarness::with_options(pipe_cap, ReadPresentation::DeallocNever, false)
            }
            PipeStep::WrapOptimized => PipeIpcHarness::with_options(
                pipe_cap,
                ReadPresentation::DeallocNeverWrapOptimized,
                false,
            ),
            PipeStep::DirectWrite => PipeIpcHarness::with_options(
                pipe_cap,
                ReadPresentation::DeallocNeverWrapOptimized,
                true,
            ),
        }
    }
}

/// A null-vs-payload RPC cell for the size sweeps: echoes `size` bytes over
/// the kernel path under a trust pair.
pub struct SweepCell {
    kernel: Arc<Kernel>,
    conn: Connection,
    payload: Vec<u8>,
    reply: Vec<u8>,
}

impl SweepCell {
    /// Builds the cell.
    pub fn new(client_trust: TrustLevel, server_trust: TrustLevel, size: usize) -> SweepCell {
        let kernel = Kernel::new();
        let client = kernel.create_task("client", 4096).expect("task");
        let server = kernel.create_task("server", 4096).expect("task");
        let port = kernel.port_allocate(server).expect("port");
        kernel
            .register_server(
                server,
                port,
                ServerOptions { trust_of_client: server_trust, ..Default::default() },
                |_k, m| Ok(MsgOut { regs: m.regs, body: m.body.to_vec(), rights: vec![] }),
            )
            .expect("register");
        let send = kernel.extract_send_right(server, port, client).expect("right");
        let conn = kernel
            .ipc_bind(
                client,
                send,
                BindOptions { trust_of_server: client_trust, ..Default::default() },
            )
            .expect("bind");
        SweepCell { kernel, conn, payload: vec![0xEE; size], reply: Vec::new() }
    }

    /// One echo RPC.
    pub fn call(&mut self) {
        self.kernel
            .ipc_call_into(&self.conn, [0; MSG_REGS], &self.payload, &[], &mut self.reply)
            .expect("call");
    }
}

/// Builds the Figure 10 flexible-vs-fixed-copy pair at a given size (for
/// the crossover sweep: where does copy elision stop mattering?).
pub fn fig10_pair(size: usize) -> (fig10::Runner, fig10::Runner) {
    let group = fig10::Group { client_needs_buffer: false, server_modifies: true };
    (
        fig10::Runner::new(fig10::System::FixedCopy, group, size),
        fig10::Runner::new(fig10::System::Flexible, group, size),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_all_run() {
        for step in PipeStep::ALL {
            let mut h = step.harness(4096);
            h.transfer(32 * 1024, 2048).expect("transfer");
        }
    }

    #[test]
    fn direct_write_removes_the_kernel_receive_copy() {
        let total = 32 * 1024;
        let mut base = PipeStep::WrapOptimized.harness(4096);
        let before = base.kernel().stats().snapshot();
        base.transfer(total, 2048).expect("transfer");
        let base_copies = base.kernel().stats().snapshot().since(&before).bytes_copied_user_to_user;

        let mut direct = PipeStep::DirectWrite.harness(4096);
        let before = direct.kernel().stats().snapshot();
        direct.transfer(total, 2048).expect("transfer");
        let direct_copies =
            direct.kernel().stats().snapshot().since(&before).bytes_copied_user_to_user;

        assert!(
            direct_copies + total as u64 <= base_copies,
            "direct receive must save at least the write-payload volume: {direct_copies} vs {base_copies}"
        );
    }

    #[test]
    fn sweep_cells_echo() {
        let mut c = SweepCell::new(TrustLevel::None, TrustLevel::None, 256);
        c.call();
        assert_eq!(c.reply, vec![0xEE; 256]);
    }

    #[test]
    fn fig10_pair_builds() {
        let (mut a, mut b) = fig10_pair(512);
        a.call();
        b.call();
    }
}
