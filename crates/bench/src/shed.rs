//! Admission control under overload — shed rate and tail latency as the
//! offered load sweeps past engine capacity.
//!
//! An open-loop generator submits calls at a fixed rate (it does not wait
//! for replies before sending the next, so queueing cannot throttle the
//! arrival process — the regime where overload actually hurts). The
//! engine runs with a high-water mark: submissions that find the queue at
//! the mark are refused immediately with `Overloaded` instead of waiting.
//! The experiment reports the shed rate and the p99 latency of *admitted*
//! calls: with shedding, p99 stays near queue-bound even at 2× capacity;
//! without it, latency would grow with the backlog.

use flexrpc_core::present::{InterfacePresentation, Trust};
use flexrpc_core::value::Value;
use flexrpc_engine::{ClientInfo, Engine, EngineError, Policy};
use flexrpc_marshal::WireFormat;
use flexrpc_pipes::fileio_module;
use flexrpc_runtime::wire::AnyWriter;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker-pool size used by the report binary.
pub const WORKERS: usize = 4;
/// Per-call service time (the handler holds a worker this long) in µs.
pub const SERVICE_US: u64 = 200;
/// Calls offered per load point (report binary).
pub const OFFERED: usize = 1500;
/// Offered-load factors swept, as multiples of engine capacity.
pub const LOADS: [f64; 3] = [0.5, 1.0, 2.0];

/// One load point's results.
#[derive(Debug, Clone, Copy)]
pub struct ShedRun {
    /// Calls the generator offered.
    pub offered: usize,
    /// Calls admitted past the high-water mark.
    pub admitted: usize,
    /// Calls refused with `Overloaded` at submission.
    pub shed: u64,
    /// shed / offered.
    pub shed_rate: f64,
    /// 99th-percentile latency of admitted calls, microseconds
    /// (submission to reply).
    pub p99_us: f64,
}

fn presentation() -> InterfacePresentation {
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let mut pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    pres.trust = Trust::None;
    pres
}

/// Starts an engine whose `read` handler sleeps for `service_us` before
/// replying — a stand-in for per-call work that holds a worker without
/// monopolizing the CPU (the harness may run on a single core).
fn build_engine(workers: usize, service_us: u64) -> Arc<Engine> {
    let engine = Engine::builder()
        .workers(workers)
        .queue_depth(16 * workers.max(1))
        .policy(Policy::new().high_water(8 * workers.max(1)))
        .build();
    engine
        .register_service("shed", fileio_module(), "FileIO", presentation(), WireFormat::Cdr, {
            move |srv| {
                srv.on("read", move |call| {
                    std::thread::sleep(Duration::from_micros(service_us));
                    call.set("return", Value::Bytes(vec![0u8; 16])).expect("set");
                    0
                })
                .expect("read registers");
            }
        })
        .expect("service registers");
    engine
}

/// Offers `offered` calls at `load` × capacity (capacity = workers /
/// service time) and reports what was admitted, what was shed, and the
/// admitted calls' p99 latency.
pub fn run(workers: usize, service_us: u64, load: f64, offered: usize) -> ShedRun {
    let engine = build_engine(workers, service_us);
    let conn = engine
        .connect("shed")
        .client(ClientInfo::of(&presentation()))
        .establish()
        .expect("connect");
    let op_index = conn.program().op("read").expect("read op").index;
    let mut w = AnyWriter::new(WireFormat::Cdr);
    w.put_u32(16);
    let request = w.into_bytes();

    // The reply collector runs alongside the generator so waiting on
    // tickets never throttles the arrival process. Jobs finish in queue
    // order, so FIFO waits return at (approximately) completion time.
    let (tx, rx) = mpsc::channel::<(flexrpc_engine::CallTicket, Instant)>();
    let collector = std::thread::spawn(move || {
        let mut latencies_us: Vec<f64> = Vec::new();
        while let Ok((ticket, t0)) = rx.recv() {
            ticket.wait().expect("admitted call succeeds");
            latencies_us.push(t0.elapsed().as_nanos() as f64 / 1e3);
        }
        latencies_us
    });

    // Open-loop pacing: targets are fixed offsets from the start, so a
    // late wake-up is answered by a burst that restores the offered rate
    // rather than quietly lowering it.
    let period = Duration::from_nanos(service_us * 1000 / workers as u64).div_f64(load);
    let mut shed = 0u64;
    let start = Instant::now();
    for i in 0..offered {
        let target = start + period * i as u32;
        if let Some(lead) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(lead);
        }
        match conn.submit(op_index, &request, &[]) {
            Ok(ticket) => tx.send((ticket, Instant::now())).expect("collector alive"),
            Err(EngineError::Overloaded) => shed += 1,
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    }
    drop(tx);
    let mut latencies_us = collector.join().expect("collector ok");

    let stats = engine.stats();
    assert_eq!(stats.calls_shed, shed, "engine and generator agree on sheds");
    engine.shutdown();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let admitted = latencies_us.len();
    let p99_us = if admitted == 0 { 0.0 } else { latencies_us[(admitted - 1) * 99 / 100] };
    ShedRun { offered, admitted, shed, shed_rate: shed as f64 / offered as f64, p99_us }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_sheds_and_admitted_calls_complete() {
        let r = run(2, 500, 3.0, 300);
        assert_eq!(r.admitted + r.shed as usize, r.offered, "every call is accounted for");
        assert!(r.shed > 0, "3x capacity must shed: {r:?}");
        assert!(r.p99_us > 0.0);
    }

    #[test]
    fn light_load_is_admitted_nearly_whole() {
        let r = run(2, 500, 0.3, 300);
        // Scheduling noise may shed a stray call; wholesale shedding at
        // a third of capacity would mean admission is miscalibrated.
        assert!(r.shed_rate < 0.2, "light load mostly admitted: {r:?}");
    }
}
