//! Failure-model experiment: duplicate suppression under a reply-loss
//! storm, and the recovery latency of a supervised failover — both on
//! deterministic sim time, so the numbers are exact and CI can gate on
//! them.
//!
//! Two scenarios:
//!
//! * **Storm** — a non-idempotent counter behind an at-most-once reply
//!   cache, with every `close_every`-th reply lost after execution. The
//!   tagged retries must all be answered from the cache: the handler runs
//!   exactly once per logical call, and the suppression hit rate over the
//!   injected faults is 1.0.
//! * **Recovery** — a supervised same-domain client whose serving engine
//!   crashes after `crash_at` healthy calls. The supervisor rebinds to a
//!   Sun RPC standby and replays; the disconnect-to-reply latency is pure
//!   sim-clock wire time, identical on every run.

use flexrpc_clock::{Fault, SimClock};
use flexrpc_core::ir::Module;
use flexrpc_core::present::InterfacePresentation;
use flexrpc_core::program::CompiledInterface;
use flexrpc_core::value::Value;
use flexrpc_engine::Engine;
use flexrpc_marshal::WireFormat;
use flexrpc_net::{NetConfig, SimNet};
use flexrpc_runtime::replycache::ReplyCache;
use flexrpc_runtime::transport::{serve_on_net, Loopback, SunRpc};
use flexrpc_runtime::{CallOptions, ClientStub, Error, RetryPolicy, ServerInterface, Supervisor};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Logical calls offered in the storm scenario (report binary).
pub const STORM_CALLS: usize = 200;
/// Every n-th reply is lost after the server executed.
pub const CLOSE_EVERY: usize = 3;
/// Healthy-call counts after which the recovery scenario crashes the
/// primary.
pub const CRASH_POINTS: [usize; 4] = [0, 1, 4, 16];
/// Recovery must complete within this much sim time (one rebind plus one
/// replayed call over the simulated net — generous headroom above it).
pub const RECOVERY_BOUND_NS: u64 = 50_000_000;

/// Storm results. With the cache doing its job, `executions == calls` and
/// `hit_rate == 1.0` exactly.
#[derive(Debug, Clone, Copy)]
pub struct StormRun {
    /// Logical calls the client made (every one succeeded).
    pub calls: usize,
    /// Replies lost in transit (faults injected).
    pub faults: usize,
    /// Handler executions observed server-side.
    pub executions: u64,
    /// Resends answered from the reply cache.
    pub suppressions: u64,
    /// suppressions / faults.
    pub hit_rate: f64,
}

/// One recovery measurement.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryRun {
    /// Healthy calls served by the primary before it crashed.
    pub crash_at: usize,
    /// Disconnect-to-recovered-reply latency, sim-clock nanoseconds.
    pub recovery_ns: u64,
    /// Handler executions beyond one per logical call (must be 0: the
    /// crashed call never executed on the primary, and the replay ran
    /// exactly once on the standby).
    pub duplicate_executions: i64,
}

fn counter_module() -> Module {
    flexrpc_idl::corba::parse(
        "counter",
        r#"
        interface Counter {
            unsigned long add(in unsigned long x);
        };
        "#,
    )
    .expect("IDL parses")
}

fn compiled(m: &Module) -> CompiledInterface {
    let iface = m.interface("Counter").expect("declared");
    let pres = InterfacePresentation::default_for(m, iface).expect("defaults");
    CompiledInterface::compile(m, iface, &pres).expect("compiles")
}

fn counter_handler(
    executions: &Arc<AtomicU64>,
    total: &Arc<AtomicU64>,
) -> impl FnMut(&mut flexrpc_runtime::server::ServerCall<'_, '_>) -> u32 + Send + 'static {
    let (ex, tot) = (Arc::clone(executions), Arc::clone(total));
    move |call| {
        ex.fetch_add(1, Ordering::SeqCst);
        let x = call.u32("x").expect("x") as u64;
        let new = tot.fetch_add(x, Ordering::SeqCst) + x;
        call.set("return", Value::U32(new as u32)).expect("return");
        0
    }
}

fn add(stub: &mut ClientStub, x: u32, opts: &CallOptions) -> Result<u32, Error> {
    let mut frame = stub.new_frame("add").expect("frame");
    frame[0] = Value::U32(x);
    stub.call_with("add", &mut frame, opts)?;
    Ok(frame[1].as_u32().expect("return"))
}

/// Runs the reply-loss storm: `calls` tagged calls against a cached
/// non-idempotent server, losing every `close_every`-th reply after the
/// handler ran.
pub fn storm(calls: usize, close_every: usize) -> StormRun {
    let m = counter_module();
    let clock = SimClock::new();
    let cache = ReplyCache::new(Arc::clone(&clock), Duration::from_secs(60));
    let executions = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));

    let mut srv = ServerInterface::new(compiled(&m), WireFormat::Cdr);
    srv.set_reply_cache(Arc::clone(&cache));
    srv.on("add", counter_handler(&executions, &total)).expect("registers");

    let transport = Loopback::with_clock(Arc::new(Mutex::new(srv)), Arc::clone(&clock));
    let faults = Arc::clone(transport.faults());
    let mut client = ClientStub::new(compiled(&m), WireFormat::Cdr, Box::new(transport));
    client.enable_at_most_once();
    let opts =
        CallOptions::default().retry(RetryPolicy::new(3).backoff(Duration::from_millis(1)).seed(7));

    let mut injected = 0usize;
    let mut expected = 0u64;
    for i in 0..calls {
        if close_every > 0 && i % close_every == 0 {
            faults.on_next_call(Fault::Close);
            injected += 1;
        }
        let x = (i % 50 + 1) as u32;
        expected += x as u64;
        let got = add(&mut client, x, &opts).expect("storm call recovers");
        assert_eq!(got as u64, expected & 0xFFFF_FFFF, "running total is exact");
    }
    assert_eq!(total.load(Ordering::SeqCst), expected, "no double execution corrupted state");

    let s = cache.stats();
    StormRun {
        calls,
        faults: injected,
        executions: executions.load(Ordering::SeqCst),
        suppressions: s.suppressions,
        hit_rate: if injected == 0 { 1.0 } else { s.suppressions as f64 / injected as f64 },
    }
}

/// Crashes a same-domain primary after `crash_at` healthy calls and
/// measures the supervised failover to a Sun RPC standby.
pub fn failover_once(crash_at: usize) -> RecoveryRun {
    let m = counter_module();
    let clock = SimClock::new();
    let net = SimNet::with_clock(NetConfig::default(), Arc::clone(&clock));
    let client_host = net.add_host("client");
    let standby_host = net.add_host("standby");

    let engine = Engine::builder().workers(2).clock(Arc::clone(&clock)).build();
    let executions = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    {
        let (ex, tot) = (Arc::clone(&executions), Arc::clone(&total));
        let iface = m.interface("Counter").expect("declared");
        let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
        engine
            .register_service(
                "counter",
                counter_module(),
                "Counter",
                pres,
                WireFormat::Cdr,
                move |srv| {
                    srv.on("add", counter_handler(&ex, &tot)).expect("registers");
                },
            )
            .expect("service registers");
    }

    let standby = {
        let mut srv = ServerInterface::new(compiled(&m), WireFormat::Cdr);
        srv.on("add", counter_handler(&executions, &total)).expect("registers");
        Arc::new(Mutex::new(srv))
    };
    serve_on_net(&net, standby_host, standby, 300_001, 1).expect("standby serves");

    let eng = Arc::clone(&engine);
    let (net2, ch) = (Arc::clone(&net), client_host);
    let mut sup = Supervisor::builder()
        .endpoint(move || {
            let conn = eng.connect("counter").establish().map_err(Error::from)?;
            Ok(ClientStub::new(compiled(&counter_module()), WireFormat::Cdr, Box::new(conn)))
        })
        .endpoint(move || {
            let t = SunRpc::new(Arc::clone(&net2), ch, standby_host, 300_001, 1);
            Ok(ClientStub::new(compiled(&counter_module()), WireFormat::Cdr, Box::new(t)))
        })
        .connect()
        .expect("primary binds");
    sup.stub_mut().enable_at_most_once();

    let opts = CallOptions::default();
    for i in 0..crash_at {
        let x = (i + 1) as u32;
        let mut frame = sup.new_frame("add").expect("frame");
        frame[0] = Value::U32(x);
        sup.call_with("add", &mut frame, &opts).expect("healthy call");
    }

    engine.faults().on_next_call(Fault::Crash { restart_after_ns: None });
    let mut frame = sup.new_frame("add").expect("frame");
    frame[0] = Value::U32(99);
    sup.call_with("add", &mut frame, &opts).expect("failover completes");
    assert_eq!(sup.current_endpoint(), 1, "now bound to the standby");

    let logical = crash_at as u64 + 1;
    let run = RecoveryRun {
        crash_at,
        recovery_ns: sup.stats().recovery_ns_last,
        duplicate_executions: executions.load(Ordering::SeqCst) as i64 - logical as i64,
    };
    engine.shutdown();
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_suppresses_every_lost_reply() {
        let r = storm(60, 3);
        assert_eq!(r.executions, r.calls as u64, "one execution per logical call: {r:?}");
        assert_eq!(r.suppressions, r.faults as u64, "every resend was a cache hit: {r:?}");
        assert_eq!(r.hit_rate, 1.0);
    }

    #[test]
    fn recovery_is_bounded_and_duplicate_free() {
        for crash_at in [0, 2] {
            let r = failover_once(crash_at);
            assert_eq!(r.duplicate_executions, 0, "{r:?}");
            assert!(r.recovery_ns > 0, "replay wire time is charged: {r:?}");
            assert!(r.recovery_ns <= RECOVERY_BOUND_NS, "{r:?}");
        }
    }

    #[test]
    fn recovery_latency_is_deterministic() {
        let a = failover_once(1);
        let b = failover_once(1);
        assert_eq!(a.recovery_ns, b.recovery_ns, "sim time has no noise");
    }
}
