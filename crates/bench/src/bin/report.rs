//! Prints paper-style result rows for every measured figure.
//!
//! Usage: `report [figure...] [--json PATH] [--check] [--seed N]`
//! where figure ∈ {fig2, fig6, fig7, fig10, fig11, fig12, port, ablate,
//! serve, shed, fuse, failover, trace, stream, qos, scale, cluster}; no
//! arguments runs everything. `--seed N` restricts `cluster` to one
//! seeded schedule (the replay handle `scripts/chaos.sh` prints). `--json` additionally writes the numbers as
//! JSON (schema 2; used to refresh EXPERIMENTS.md), together with a
//! snapshot of the metrics registry the experiments populated (counters
//! and log2 histograms). `--check` exits nonzero if a
//! figure's acceptance bar is missed (used by CI for `fuse` — the fused
//! path must not lose to the unfused one — for `failover`: exact duplicate
//! suppression and bounded, deterministic recovery — for `trace`:
//! byte-identical deterministic exports and a bounded tracing overhead —
//! for `stream`: deterministic credit stalls that hit their closed-form
//! prediction and zero lost or duplicated frames under injected `Close` —
//! and for `qos`: per-tenant isolation under a 10× noisy-neighbor storm
//! and exactly-once execution across a live policy swap + rebind —
//! and for `cluster`: zero lost and zero duplicated non-idempotent
//! executions across the seed matrix, p99 dwell under the recorded
//! bound, and a byte-identical deterministic replay).

use flexrpc_bench::{
    ablate, cluster, failover, fig10, fig11, fig12, fig2, fig6, fig7, fuse, measure_ns, port, qos,
    scale, serve, shed, stream, trace,
};
use flexrpc_core::fuse::SpecializeOptions;
use flexrpc_kernel::{NameMode, TrustLevel};
use flexrpc_marshal::WireFormat;
use flexrpc_nfs::client::ClientVariant;
use flexrpc_pipes::fbuf::FbufMode;
use flexrpc_pipes::server::ReadPresentation;
use flexrpc_trace::{MetricsRegistry, MetricsSnapshot};
use std::collections::BTreeMap;

#[derive(Default)]
struct Report {
    /// figure → row label → value (ns or MB/s as noted per figure).
    figures: BTreeMap<String, BTreeMap<String, f64>>,
    /// Snapshot of the metrics registry the experiments populated.
    metrics: Option<MetricsSnapshot>,
}

impl Report {
    fn put(&mut self, fig: &str, row: &str, value: f64) {
        self.figures.entry(fig.into()).or_default().insert(row.into(), value);
    }

    /// Serializes as pretty-printed JSON. Keys are plain ASCII figure/row
    /// labels and values finite f64s, so escaping only needs the basics.
    fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        // Schema 2: adds the top-level version marker and the `qos`
        // figure; metric counter names moved to the unified
        // `<component>.<event>` registry naming.
        let mut out = String::from("{\n  \"schema\": 2,\n  \"figures\": {");
        for (fi, (fig, rows)) in self.figures.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {{", esc(fig)));
            for (ri, (row, value)) in rows.iter().enumerate() {
                if ri > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      \"{}\": {}", esc(row), value));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }");
        if let Some(snap) = &self.metrics {
            out.push_str(",\n  \"metrics\": {\n    \"counters\": {");
            for (i, (name, value)) in snap.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      \"{}\": {}", esc(name), value));
            }
            out.push_str("\n    },\n    \"histograms\": {");
            for (i, (name, h)) in snap.histograms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let buckets: Vec<String> =
                    h.buckets.iter().map(|(lo, n)| format!("[{lo}, {n}]")).collect();
                out.push_str(&format!(
                    "\n      \"{}\": {{ \"count\": {}, \"sum\": {}, \"buckets\": [{}] }}",
                    esc(name),
                    h.count,
                    h.sum,
                    buckets.join(", ")
                ));
            }
            out.push_str("\n    }\n  }");
        }
        out.push_str("\n}\n");
        out
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1).cloned());
    let selected: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|s| {
            s.starts_with("fig")
                || [
                    "port", "ablate", "serve", "shed", "fuse", "failover", "trace", "stream",
                    "qos", "scale", "cluster",
                ]
                .contains(s)
        })
        .collect();
    let check = args.iter().any(|a| a == "--check");
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    let mut report = Report::default();
    let metrics = MetricsRegistry::new();
    if want("fig2") {
        run_fig2(&mut report);
    }
    if want("fig6") {
        run_fig6(&mut report);
    }
    if want("fig7") {
        run_fig7(&mut report);
    }
    if want("fig10") {
        run_fig10(&mut report);
    }
    if want("fig11") {
        run_fig11(&mut report);
    }
    if want("fig12") {
        run_fig12(&mut report);
    }
    if want("port") {
        run_port(&mut report);
    }
    if want("ablate") {
        run_ablate(&mut report);
    }
    if want("serve") {
        run_serve(&mut report);
    }
    if want("shed") {
        run_shed(&mut report);
    }
    if want("fuse") {
        run_fuse(&mut report, check);
    }
    if want("failover") {
        run_failover(&mut report, check);
    }
    if want("trace") {
        run_trace(&mut report, check);
    }
    if want("stream") {
        run_stream(&mut report, &metrics, check);
    }
    if want("qos") {
        run_qos(&mut report, check);
    }
    if want("scale") {
        run_scale(&mut report, check);
    }
    if want("cluster") {
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok());
        run_cluster(&mut report, check, seed);
    }

    let snap = metrics.snapshot();
    if !snap.counters.is_empty() || !snap.histograms.is_empty() {
        report.metrics = Some(snap);
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("json written");
        println!("\nwrote {path}");
    }
}

fn run_fuse(report: &mut Report, check: bool) {
    println!("\n== Specialization: op fusion + presize, fused vs unfused ==");
    let fused_ci = fuse::compile(SpecializeOptions::default());
    let plain_ci = fuse::compile(SpecializeOptions::none());
    let mut failures = Vec::new();

    println!("  dispatches per call (all four stub programs):");
    for op in &plain_ci.ops {
        let (ops, _) = fuse::dispatches_per_call(op);
        let (_, dispatches) =
            fuse::dispatches_per_call(fused_ci.op(&op.name).expect("same interface"));
        let reduction = (ops - dispatches) as f64 / ops as f64 * 100.0;
        println!(
            "    {:12} {ops:>3} ops → {dispatches:>3} dispatches  ({reduction:+.1}%)",
            op.name
        );
        report.put("fuse", &format!("{}-ops", op.name), ops as f64);
        report.put("fuse", &format!("{}-dispatches", op.name), dispatches as f64);
        if op.name == "read" && reduction < 30.0 {
            failures.push(format!("read dispatch reduction {reduction:.1}% < 30%"));
        }
    }

    println!("  calls/s, read({}B reply), CDR:", fuse::READ_SIZE);
    type Build = fn(SpecializeOptions, WireFormat) -> fuse::FuseRunner;
    let cells: [(&str, Build); 2] = [
        ("same-domain", fuse::FuseRunner::same_domain),
        ("kernel-ipc", fuse::FuseRunner::kernel_ipc),
    ];
    for (label, build) in cells {
        let mut fused = build(SpecializeOptions::default(), WireFormat::Cdr);
        let mut plain = build(SpecializeOptions::none(), WireFormat::Cdr);
        // Warm-up: fault buffers in and reach the steady-state (reused
        // frame and message buffers) that both variants are measured at.
        for _ in 0..200 {
            fused.call();
            plain.call();
        }
        let (mut ns_fused, mut ns_plain, mut speedup) =
            measure_paired_ratio(41, 2000, || fused.call(), || plain.call());
        if speedup < 1.0 {
            // The kernel-IPC win is a few percent; one noisy measurement
            // shouldn't fail the gate. Re-measure once with more rounds —
            // the longer median-of-ratios is what gets reported.
            (ns_fused, ns_plain, speedup) =
                measure_paired_ratio(81, 3000, || fused.call(), || plain.call());
        }
        let (cps_fused, cps_plain) = (1e9 / ns_fused, 1e9 / ns_plain);
        println!(
            "    {label:12} fused {cps_fused:>9.0}  unfused {cps_plain:>9.0}  ({speedup:.3}x)"
        );
        report.put("fuse", &format!("{label}-fused-calls-per-sec"), cps_fused);
        report.put("fuse", &format!("{label}-unfused-calls-per-sec"), cps_plain);
        if speedup < 1.0 {
            failures.push(format!("{label} fused path slower than unfused: {speedup:.3}x"));
        }
    }

    println!("  cache lookups/s (sharded read-mostly cache, 16 programs):");
    let cache = fuse::filled_cache(16);
    for threads in fuse::CACHE_THREADS {
        let r = fuse::scale_run(&cache, threads, 200_000);
        println!(
            "    {threads} thread(s)  {:>12.0} lookups/s   ({} contended reads)",
            r.lookups_per_sec, r.contended
        );
        report.put("fuse", &format!("cache-{threads}t-lookups-per-sec"), r.lookups_per_sec);
    }

    if check {
        if failures.is_empty() {
            println!("  check: ok");
        } else {
            for f in &failures {
                eprintln!("  check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

fn run_failover(report: &mut Report, check: bool) {
    let mut failures = Vec::new();

    println!("\n== Failure model: reply-loss storm under at-most-once ==");
    let s = failover::storm(failover::STORM_CALLS, failover::CLOSE_EVERY);
    println!(
        "  {} calls, every {}rd reply lost: {} executions, {} suppressions (hit rate {:.3})",
        s.calls,
        failover::CLOSE_EVERY,
        s.executions,
        s.suppressions,
        s.hit_rate
    );
    report.put("failover", "storm-calls", s.calls as f64);
    report.put("failover", "storm-faults", s.faults as f64);
    report.put("failover", "storm-suppressions", s.suppressions as f64);
    report.put("failover", "storm-hit-rate", s.hit_rate);
    report.put("failover", "storm-duplicate-executions", s.executions as f64 - s.calls as f64);
    if s.executions != s.calls as u64 {
        failures.push(format!(
            "storm executed {} times for {} logical calls (duplicates slipped the cache)",
            s.executions, s.calls
        ));
    }
    if s.suppressions != s.faults as u64 {
        failures.push(format!("storm suppressed {} of {} lost replies", s.suppressions, s.faults));
    }

    println!("\n== Failure model: supervised failover, same-domain -> Sun RPC standby ==");
    println!("  {:>10} {:>14} {:>12}", "crash-at", "recovery(ns)", "dup-execs");
    for crash_at in failover::CRASH_POINTS {
        let r = failover::failover_once(crash_at);
        println!("  {:>10} {:>14} {:>12}", r.crash_at, r.recovery_ns, r.duplicate_executions);
        report.put("failover", &format!("recovery-ns-crash-at-{crash_at}"), r.recovery_ns as f64);
        if r.duplicate_executions != 0 {
            failures.push(format!(
                "crash at {} caused {} duplicate executions",
                crash_at, r.duplicate_executions
            ));
        }
        if r.recovery_ns == 0 || r.recovery_ns > failover::RECOVERY_BOUND_NS {
            failures.push(format!(
                "crash at {} recovered in {} ns (bound {} ns)",
                crash_at,
                r.recovery_ns,
                failover::RECOVERY_BOUND_NS
            ));
        }
    }
    println!("  (sim-time numbers: deterministic, so the bound is exact, not statistical)");

    if check {
        if failures.is_empty() {
            println!("  check: ok");
        } else {
            for f in &failures {
                eprintln!("  check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

fn run_trace(report: &mut Report, check: bool) {
    use flexrpc_trace::Stage;
    let mut failures = Vec::new();

    println!("\n== Observability: per-stage breakdown, read({}B reply), CDR ==", trace::READ_SIZE);
    println!(
        "  {:12} {:>10} {:>10} {:>10} {:>14}",
        "transport", "marshal", "wire", "unmarshal", "marshal-share"
    );
    for path in [trace::Path::SameDomain, trace::Path::SunRpc] {
        let b = trace::wall_breakdown(path);
        let per_call = |stage: Stage| b.totals[stage as usize] as f64 / trace::CALLS as f64;
        println!(
            "  {:12} {:>8.0}ns {:>8.0}ns {:>8.0}ns {:>13.1}%",
            path.label(),
            per_call(Stage::Marshal),
            per_call(Stage::Transport),
            per_call(Stage::Unmarshal),
            b.marshal_share * 100.0
        );
        for stage in [Stage::Marshal, Stage::Transport, Stage::Unmarshal] {
            report.put(
                "trace",
                &format!("{}-{}-ns-per-call", path.label(), stage.name()),
                per_call(stage),
            );
        }
        report.put(
            "trace",
            &format!("{}-marshal-share-pct", path.label()),
            b.marshal_share * 100.0,
        );
    }
    println!("  (wall-clock spans; the wire column includes the far side's dispatch)");

    // Determinism: the same sim-clock workload, twice, must export the
    // exact same bytes — and its wire time is a number, not a measurement.
    let (stream_a, wire_ns) = trace::sim_run(64);
    let (stream_b, _) = trace::sim_run(64);
    let identical = stream_a == stream_b && !stream_a.is_empty();
    println!(
        "  sunrpc sim wire time {wire_ns:.0} ns/call (exact); runs byte-identical: {identical}"
    );
    report.put("trace", "sunrpc-sim-wire-ns-per-call", wire_ns);
    if !identical {
        failures.push("two identical sim runs exported different trace streams".to_string());
    }

    println!("\n== Observability: tracing overhead, same-domain read ==");
    let mut traced = trace::TraceRunner::new(trace::Path::SameDomain, true);
    let mut plain = trace::TraceRunner::new(trace::Path::SameDomain, false);
    for _ in 0..200 {
        traced.call();
        plain.call();
    }
    let (mut ns_plain, mut ns_traced, mut overhead) =
        measure_paired_ratio(41, 2000, || plain.call(), || traced.call());
    if overhead > trace::OVERHEAD_BOUND {
        // The true cost is a few nanoseconds per span; one noisy run
        // shouldn't fail the gate. Re-measure once with more rounds.
        (ns_plain, ns_traced, overhead) =
            measure_paired_ratio(81, 3000, || plain.call(), || traced.call());
    }
    println!(
        "  untraced {ns_plain:>8.0} ns/call   traced {ns_traced:>8.0} ns/call   overhead {:.3}x (bound {:.2}x)",
        overhead,
        trace::OVERHEAD_BOUND
    );
    report.put("trace", "samedomain-untraced-ns-per-call", ns_plain);
    report.put("trace", "samedomain-traced-ns-per-call", ns_traced);
    report.put("trace", "samedomain-overhead-ratio", overhead);
    if overhead > trace::OVERHEAD_BOUND {
        failures.push(format!(
            "tracing overhead {overhead:.3}x exceeds the {:.2}x bound",
            trace::OVERHEAD_BOUND
        ));
    }

    if check {
        if failures.is_empty() {
            println!("  check: ok");
        } else {
            for f in &failures {
                eprintln!("  check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

fn run_stream(report: &mut Report, metrics: &MetricsRegistry, check: bool) {
    let mut failures = Vec::new();

    let cfg = stream::feed_config();
    println!("\n== Streams: broadcast edit feed — [stream] publisher, [oneway] fan-out ==");
    let t0 = std::time::Instant::now();
    let r = stream::edit_feed(Some(metrics));
    let wall_ms = t0.elapsed().as_nanos() as f64 / 1e6;
    println!(
        "  {} subscribers × {} edits (window {} = min({}, {}), reply lost every {}th frame)",
        r.subscribers, r.edits, r.window, cfg.client_window, cfg.server_window, cfg.close_every
    );
    println!(
        "  {} callbacks in {:.3} sim-ms: {:.0} callbacks/sim-s  ({:.0}/wall-s, {wall_ms:.1} ms)",
        r.callbacks_delivered,
        r.sim_ns as f64 / 1e6,
        r.callbacks_per_sec,
        r.callbacks_delivered as f64 / (wall_ms / 1e3)
    );
    println!(
        "  lost {}  duplicated {}  executions {}  credit stalls {} ({} sim-ns waited)",
        r.lost, r.duplicated, r.executions, r.credit_stalls, r.credits_waited_ns
    );
    report.put("stream", "editfeed-subscribers", r.subscribers as f64);
    report.put("stream", "editfeed-window", r.window as f64);
    report.put("stream", "editfeed-callbacks-delivered", r.callbacks_delivered as f64);
    report.put("stream", "editfeed-callbacks-per-sim-sec", r.callbacks_per_sec);
    report.put(
        "stream",
        "editfeed-callbacks-per-wall-sec",
        r.callbacks_delivered as f64 / (wall_ms / 1e3),
    );
    report.put("stream", "editfeed-lost", r.lost as f64);
    report.put("stream", "editfeed-duplicated", r.duplicated as f64);
    report.put("stream", "editfeed-credit-stalls", r.credit_stalls as f64);
    report.put("stream", "editfeed-credits-waited-ns", r.credits_waited_ns as f64);
    if r.lost != 0 || r.duplicated != 0 {
        failures.push(format!("edit feed lost {} / duplicated {} frames", r.lost, r.duplicated));
    }
    if r.executions != r.edits as u64 {
        failures.push(format!("edit feed executed {} times for {} edits", r.executions, r.edits));
    }
    if r.callbacks_delivered != (r.edits * r.subscribers) as u64 {
        failures.push(format!(
            "edit feed delivered {} callbacks, expected {}",
            r.callbacks_delivered,
            r.edits * r.subscribers
        ));
    }
    if r.window != cfg.client_window.min(cfg.server_window) {
        failures.push(format!("edit feed negotiated window {}, expected the minimum", r.window));
    }
    let rerun = stream::edit_feed(None);
    let deterministic = rerun == r;
    println!("  rerun identical: {deterministic}  (sim-time numbers, no noise)");
    if !deterministic {
        failures.push("two identical edit-feed runs disagreed".to_string());
    }

    println!("\n== Streams: remote file service — credit stalls and at-most-once writes ==");
    let e = stream::file_exact();
    println!(
        "  fault-free: {} frames, window {}, drain {} ns — stalled {} sim-ns (predicted {})",
        e.frames,
        e.window,
        stream::FILE_DRAIN_NS,
        e.credits_waited_ns,
        e.predicted_stall_ns
    );
    report.put("stream", "file-exact-waited-ns", e.credits_waited_ns as f64);
    report.put("stream", "file-exact-predicted-ns", e.predicted_stall_ns as f64);
    if e.credits_waited_ns != e.predicted_stall_ns {
        failures.push(format!(
            "fault-free stall {} ns missed the closed form {} ns",
            e.credits_waited_ns, e.predicted_stall_ns
        ));
    }
    if e.sim_ns != e.frames as u64 * stream::FILE_DRAIN_NS {
        failures.push(format!(
            "drained stream occupied {} sim-ns, expected frames*drain = {}",
            e.sim_ns,
            e.frames as u64 * stream::FILE_DRAIN_NS
        ));
    }
    let f = stream::file_faulted();
    println!(
        "  reply-loss: {} Close faults over {} frames — contents identical: {}, {} executions",
        f.faults, f.frames, f.contents_ok, f.executions
    );
    report.put("stream", "file-faulted-close-faults", f.faults as f64);
    report.put("stream", "file-faulted-executions", f.executions as f64);
    if !f.contents_ok || f.executions != f.frames as u64 {
        failures.push(format!(
            "faulted file stream: contents_ok={}, {} executions for {} frames",
            f.contents_ok, f.executions, f.frames
        ));
    }

    if check {
        if failures.is_empty() {
            println!("  check: ok");
        } else {
            for fail in &failures {
                eprintln!("  check FAILED: {fail}");
            }
            std::process::exit(1);
        }
    }
}

fn run_qos(report: &mut Report, check: bool) {
    let mut failures = Vec::new();

    println!("\n== Multi-tenant QoS: noisy neighbor at 10x, weighted-fair drain ==");
    let r = qos::noisy_neighbor();
    println!(
        "  A offered {} against quota {}: admitted {}, shed {} (charged to A)",
        r.offered_a,
        qos::QUOTA_A,
        r.admitted_a,
        r.shed_a
    );
    println!(
        "  B offered {}: admitted {}, shed {}, served {}",
        qos::OFFERED_B,
        r.admitted_b,
        r.shed_b,
        r.served_b
    );
    println!(
        "  dwell (sim-ns): A mean {}  B mean {}  B p99 ceiling {} (bound {})",
        r.a_dwell_mean_ns,
        r.b_dwell_mean_ns,
        r.b_dwell_p99_ns,
        qos::DWELL_BOUND_NS
    );
    report.put("qos", "a-offered", r.offered_a as f64);
    report.put("qos", "a-admitted", r.admitted_a as f64);
    report.put("qos", "a-shed", r.shed_a as f64);
    report.put("qos", "b-admitted", r.admitted_b as f64);
    report.put("qos", "b-shed", r.shed_b as f64);
    report.put("qos", "b-served", r.served_b as f64);
    report.put("qos", "a-dwell-mean-ns", r.a_dwell_mean_ns as f64);
    report.put("qos", "b-dwell-mean-ns", r.b_dwell_mean_ns as f64);
    report.put("qos", "b-dwell-p99-ns", r.b_dwell_p99_ns as f64);
    report.put("qos", "b-dwell-bound-ns", qos::DWELL_BOUND_NS as f64);
    if r.b_dwell_p99_ns > qos::DWELL_BOUND_NS {
        failures.push(format!(
            "B's p99 dwell {} sim-ns exceeds the bound {}",
            r.b_dwell_p99_ns,
            qos::DWELL_BOUND_NS
        ));
    }
    if r.shed_b != 0 {
        failures.push(format!("A's storm shed {} of B's calls", r.shed_b));
    }
    if r.shed_a != (qos::OFFERED_A - qos::QUOTA_A) as u64 || r.engine_shed != r.shed_a {
        failures.push(format!(
            "A shed {} (engine {}), expected exactly its overflow {}",
            r.shed_a,
            r.engine_shed,
            qos::OFFERED_A - qos::QUOTA_A
        ));
    }
    if r.served_b != qos::OFFERED_B as u64 {
        failures.push(format!("B had {} of {} calls served", r.served_b, qos::OFFERED_B));
    }
    let rerun = qos::noisy_neighbor();
    let deterministic = rerun == r;
    println!("  rerun identical: {deterministic}  (sim-time numbers, no noise)");
    if !deterministic {
        failures.push("two identical noisy-neighbor runs disagreed".to_string());
    }

    println!("\n== Multi-tenant QoS: live policy swap + rebind under load ==");
    println!(
        "  {:>10} {:>12} {:>6} {:>11} {:>8}",
        "rebind-at", "executions", "lost", "duplicated", "rebinds"
    );
    for rebind_at in qos::REBIND_POINTS {
        let r = qos::rebind_under_load(rebind_at, qos::REBIND_CALLS);
        println!(
            "  {:>10} {:>12} {:>6} {:>11} {:>8}",
            r.rebind_at, r.executions, r.lost, r.duplicated, r.rebinds
        );
        report.put("qos", &format!("rebind-at-{rebind_at}-lost"), r.lost as f64);
        report.put("qos", &format!("rebind-at-{rebind_at}-duplicated"), r.duplicated as f64);
        if r.lost != 0 || r.duplicated != 0 || r.executions != qos::REBIND_CALLS as u64 {
            failures.push(format!(
                "rebind at {} executed {} of {} calls ({} lost, {} duplicated)",
                r.rebind_at,
                r.executions,
                qos::REBIND_CALLS,
                r.lost,
                r.duplicated
            ));
        }
        if r.rebinds != 1 {
            failures.push(format!("rebind at {} counted {} rebinds", r.rebind_at, r.rebinds));
        }
    }
    println!("  (a swapped tenant policy and a renegotiated combination, mid-backlog,");
    println!("   cost zero lost and zero duplicated non-idempotent executions)");

    if check {
        if failures.is_empty() {
            println!("  check: ok");
        } else {
            for f in &failures {
                eprintln!("  check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

fn run_fig2(report: &mut Report) {
    println!("== Figure 2: NFS 8MB read — client processing per variant ==");
    println!("(wire+server time is the deterministic clock, identical per variant)");
    let file_len = fig2::FILE_LEN;
    // Interleave rounds across variants so CPU-frequency drift and cache
    // state cannot systematically favor whichever variant runs last.
    const ROUNDS: usize = 9;
    let mut harnesses: Vec<fig2::Fig2> =
        ClientVariant::ALL.iter().map(|_| fig2::Fig2::new(file_len)).collect();
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); ClientVariant::ALL.len()];
    // Warm-up pass.
    for (i, v) in ClientVariant::ALL.iter().enumerate() {
        harnesses[i].run(*v, file_len);
    }
    for _ in 0..ROUNDS {
        for (i, v) in ClientVariant::ALL.iter().enumerate() {
            // Client processing = measured total minus the far side's real
            // CPU time, matching the figure's bar decomposition.
            let service0 = harnesses[i].service_ns();
            let t0 = std::time::Instant::now();
            harnesses[i].run(*v, file_len);
            let total = t0.elapsed().as_nanos() as f64;
            let service = (harnesses[i].service_ns() - service0) as f64;
            samples[i].push(total - service);
        }
    }
    let mut base_ms = 0.0;
    for (i, variant) in ClientVariant::ALL.iter().enumerate() {
        samples[i].sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let cpu_ms = samples[i][ROUNDS / 2] / 1e6;
        if *variant == ClientVariant::ConventionalGenerated {
            base_ms = cpu_ms;
        }
        let delta = if base_ms > 0.0 { (base_ms - cpu_ms) / base_ms * 100.0 } else { 0.0 };
        println!(
            "  {:26} client-cpu {:9.3} ms   vs conventional-generated: {:+.1}%",
            variant.label(),
            cpu_ms,
            delta
        );
        report.put("fig2", &format!("{}-client-cpu-ms", variant.label()), cpu_ms);
    }
    // One clean run for the constant wire + server component.
    let mut f = fig2::Fig2::new(file_len);
    let w0 = f.wire_ns();
    f.run(ClientVariant::ConventionalGenerated, file_len);
    let wire_ms = (f.wire_ns() - w0) as f64 / 1e6;
    println!("  network+server (simulated)   {wire_ms:9.3} ms  (constant across variants)");
    report.put("fig2", "wire-ms", wire_ms);
}

/// Interleaved paired measurement: alternates the two closures round-robin
/// so frequency drift and scheduling noise hit both equally; returns the
/// per-iteration median nanoseconds of each.
/// Like [`measure_pair`], but also returns the median of *per-round* b/a
/// ratios. Each round times `a` and `b` back to back, so slow drift in CPU
/// frequency or cache state hits both sides of a ratio equally; the median
/// ratio is far more stable than the ratio of independent medians when the
/// true difference is a few percent.
fn measure_paired_ratio(
    rounds: usize,
    iters: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64, f64) {
    let mut sa = Vec::with_capacity(rounds);
    let mut sb = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which side runs first so ordering bias cancels too.
        let (na, nb) = if round % 2 == 0 {
            let na = time_ns(iters, &mut a);
            let nb = time_ns(iters, &mut b);
            (na, nb)
        } else {
            let nb = time_ns(iters, &mut b);
            let na = time_ns(iters, &mut a);
            (na, nb)
        };
        sa.push(na);
        sb.push(nb);
        ratios.push(nb / na);
    }
    sa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    (sa[rounds / 2], sb[rounds / 2], ratios[rounds / 2])
}

fn time_ns(iters: usize, f: &mut impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn measure_pair(
    rounds: usize,
    iters: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let mut sa = Vec::with_capacity(rounds);
    let mut sb = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            a();
        }
        sa.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            b();
        }
        sb.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    sa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    (sa[rounds / 2], sb[rounds / 2])
}

fn run_fig6(report: &mut Report) {
    println!("\n== Figure 6: pipe server over kernel IPC (throughput) ==");
    let total = 512 * 1024;
    for cap in fig6::PIPE_CAPS {
        let mut h_default = fig6::harness(cap, ReadPresentation::Default);
        let mut h_never = fig6::harness(cap, ReadPresentation::DeallocNever);
        fig6::run(&mut h_default, total); // Warm-up.
        fig6::run(&mut h_never, total);
        let (ns_default, ns_never) = measure_pair(
            15,
            4,
            || {
                fig6::run(&mut h_default, total);
            },
            || {
                fig6::run(&mut h_never, total);
            },
        );
        let per_mode =
            [total as f64 / (ns_default / 1e9) / 1e6, total as f64 / (ns_never / 1e9) / 1e6];
        for (mode, mbs) in
            [ReadPresentation::Default, ReadPresentation::DeallocNever].iter().zip(per_mode)
        {
            println!("  {}K pipe, {:24} {:8.1} MB/s", cap / 1024, mode.label(), mbs);
            report.put("fig6", &format!("{}k-{}-mbps", cap / 1024, mode.label()), mbs);
        }
        println!(
            "  {}K pipe: dealloc(never) improvement: {:+.1}%  (paper: +{}%)",
            cap / 1024,
            (per_mode[1] - per_mode[0]) / per_mode[0] * 100.0,
            if cap == 4096 { 21 } else { 24 }
        );
    }
}

fn run_fig7(report: &mut Report) {
    println!("\n== Figure 7: pipe server over fbufs (throughput) ==");
    let total = 512 * 1024;
    for cap in fig7::PIPE_CAPS {
        let mut h_std = fig7::harness(cap, FbufMode::Standard);
        let mut h_sp = fig7::harness(cap, FbufMode::Special);
        fig7::run(&mut h_std, total); // Warm-up.
        fig7::run(&mut h_sp, total);
        let (ns_std, ns_sp) =
            measure_pair(15, 4, || fig7::run(&mut h_std, total), || fig7::run(&mut h_sp, total));
        let per_mode = [total as f64 / (ns_std / 1e9) / 1e6, total as f64 / (ns_sp / 1e9) / 1e6];
        for (mode, mbs) in [FbufMode::Standard, FbufMode::Special].iter().zip(per_mode) {
            println!("  {}K pipe, {:24} {:8.1} MB/s", cap / 1024, mode.label(), mbs);
            report.put("fig7", &format!("{}k-{}-mbps", cap / 1024, mode.label()), mbs);
        }
        println!(
            "  {}K pipe: [special] improvement: {:+.1}%  (paper: +{}%)",
            cap / 1024,
            (per_mode[1] - per_mode[0]) / per_mode[0] * 100.0,
            if cap == 4096 { 92 } else { 160 }
        );
    }
    let mut bsd = fig7::BsdRef::new();
    bsd.run(total); // Warm-up.
    let ns = measure_ns(7, 2, || bsd.run(total));
    let mbs = total as f64 / (ns / 1e9) / 1e6;
    println!("  BSD monolithic pipe (4K)       {mbs:8.1} MB/s  (reference)");
    report.put("fig7", "bsd-monolithic-mbps", mbs);
}

fn run_fig10(report: &mut Report) {
    println!("\n== Figure 10: same-domain 1KB in-param — mutability semantics (ns/call) ==");
    println!("  {:32} {:>12} {:>12} {:>12}", "group", "fixed-copy", "fixed-borrow", "flexible");
    for g in fig10::Group::ALL {
        let mut row = Vec::new();
        for system in fig10::System::ALL {
            let mut r = fig10::Runner::new(system, g, fig10::PARAM_SIZE);
            let ns = measure_ns(5, 2000, || r.call());
            row.push(ns);
            report.put("fig10", &format!("{}-{}", g.label(), system.label()), ns);
        }
        println!("  {:32} {:>12.0} {:>12.0} {:>12.0}", g.label(), row[0], row[1], row[2]);
    }
}

fn run_fig11(report: &mut Report) {
    println!("\n== Figure 11: same-domain 1KB out-param — allocation semantics (ns/call) ==");
    println!("  {:32} {:>14} {:>14} {:>12}", "group", "server-alloc", "client-alloc", "flexible");
    for g in fig11::Group::ALL {
        let mut row = Vec::new();
        for system in fig11::System::ALL {
            let mut r = fig11::Runner::new(system, g, fig11::PARAM_SIZE);
            let ns = measure_ns(5, 2000, || r.call());
            row.push(ns);
            report.put("fig11", &format!("{}-{}", g.label(), system.label()), ns);
        }
        println!("  {:32} {:>14.0} {:>14.0} {:>12.0}", g.label(), row[0], row[1], row[2]);
    }
}

fn run_fig12(report: &mut Report) {
    println!("\n== Figure 12: null RPC × trust matrix (ns/call) ==");
    println!("  client-trust \\ server-trust    none      leaky  leaky+unprot");
    let mut corner = (0.0, 0.0);
    for client in TrustLevel::ALL {
        let mut row = Vec::new();
        for server in TrustLevel::ALL {
            let cell = fig12::Cell::new(client, server);
            let ns = measure_ns(5, 5000, || cell.null_rpc());
            row.push(ns);
            report.put(
                "fig12",
                &format!("client-{}-server-{}", client.label(), server.label()),
                ns,
            );
            if client == TrustLevel::None && server == TrustLevel::None {
                corner.0 = ns;
            }
            if client == TrustLevel::LeakyUnprotected && server == TrustLevel::LeakyUnprotected {
                corner.1 = ns;
            }
        }
        println!("  {:28} {:>8.0} {:>10.0} {:>13.0}", client.label(), row[0], row[1], row[2]);
    }
    println!(
        "  no-trust → full-trust improvement: {:+.1}%  (paper: ~30%)",
        (corner.0 - corner.1) / corner.0 * 100.0
    );
}

fn run_ablate(report: &mut Report) {
    println!("\n== Ablation: the pipe path, one presentation knob at a time ==");
    let total = 512 * 1024;
    let mut prev: Option<f64> = None;
    for step in ablate::PipeStep::ALL {
        let mut h = step.harness(4096);
        h.transfer(total, 2048).expect("warm-up");
        let ns = measure_ns(9, 2, || {
            h.transfer(total, 2048).expect("transfer");
        });
        let mbs = total as f64 / (ns / 1e9) / 1e6;
        let delta = prev.map(|p| format!("{:+.1}% vs previous", (mbs - p) / p * 100.0));
        println!("  {:18} {:8.1} MB/s   {}", step.label(), mbs, delta.unwrap_or_default());
        report.put("ablate", &format!("pipe-{}-mbps", step.label()), mbs);
        prev = Some(mbs);
    }

    println!("\n== Ablation: trust spread vs payload size (echo RPC, ns/call) ==");
    println!("  {:>8} {:>12} {:>12} {:>8}", "bytes", "no-trust", "full-trust", "spread");
    for size in [0usize, 256, 1024, 4096, 16384] {
        let mut hard = ablate::SweepCell::new(
            flexrpc_kernel::TrustLevel::None,
            flexrpc_kernel::TrustLevel::None,
            size,
        );
        let mut soft = ablate::SweepCell::new(
            flexrpc_kernel::TrustLevel::LeakyUnprotected,
            flexrpc_kernel::TrustLevel::LeakyUnprotected,
            size,
        );
        let a = measure_ns(5, 3000, || hard.call());
        let b = measure_ns(5, 3000, || soft.call());
        println!("  {:>8} {:>12.0} {:>12.0} {:>7.1}%", size, a, b, (a - b) / a * 100.0);
        report.put("ablate", &format!("trust-spread-{size}b-pct"), (a - b) / a * 100.0);
    }
    println!("  (the paper's closing claim: the faster/lighter the transfer, the more");
    println!("   presentation matters — the spread shrinks as payload grows)");
}

fn run_port(report: &mut Report) {
    println!("\n== §4.5: port-right transfer, unique vs [nonunique] (ns/transfer) ==");
    let mut vals = Vec::new();
    for (label, mode) in [("unique", NameMode::Unique), ("nonunique", NameMode::NonUnique)] {
        let t = port::PortTransfer::new(mode);
        t.transfer_once();
        let ns = measure_ns(5, 5000, || t.transfer_once());
        vals.push(ns);
        println!("  {label:12} {ns:>10.0} ns   ({} probes/transfer)", t.probes_per_transfer());
        report.put("port", label, ns);
    }
    println!(
        "  [nonunique] improvement: {:+.1}%  (paper: 32.4µs → 24.7µs, 24%)",
        (vals[0] - vals[1]) / vals[0] * 100.0
    );
}

fn run_serve(report: &mut Report) {
    println!("\n== Engine scaling: one engine, clients × workers (calls/s) ==");
    println!("  (seeded client interleave — rerun noise comes from the box, not the schedule)");
    println!(
        "  {:>8} {:>8} {:>12} {:>8} {:>10} {:>10}",
        "workers", "clients", "calls/s", "vs-w1", "hit-rate", "programs"
    );
    // w1 baselines per client count, filled on the first (workers=1) pass:
    // every cell is also reported as a speedup ratio against its client
    // count's one-worker cell, which is far more stable run-to-run than
    // the absolute calls/s on a shared box.
    let mut baseline: BTreeMap<usize, f64> = BTreeMap::new();
    for workers in serve::WORKERS {
        for clients in serve::CLIENTS {
            let r = serve::run(workers, clients, serve::CALLS_PER_CLIENT);
            let base = *baseline.entry(clients).or_insert(r.calls_per_sec);
            let speedup = r.calls_per_sec / base;
            println!(
                "  {:>8} {:>8} {:>12.0} {:>7.2}x {:>9.0}% {:>10}",
                workers,
                clients,
                r.calls_per_sec,
                speedup,
                r.cache_hit_rate * 100.0,
                r.compilations
            );
            let cell = format!("w{workers}-c{clients}");
            report.put("serve", &format!("{cell}-calls-per-sec"), r.calls_per_sec);
            report.put("serve", &format!("{cell}-speedup-vs-w1"), speedup);
            report.put("serve", &format!("{cell}-cache-hit-rate"), r.cache_hit_rate);
        }
    }
    println!("  (each combination compiles once per engine; hit rate counts reused connections)");
}

fn run_scale(report: &mut Report, check: bool) {
    let mut failures = Vec::new();
    let sweep = scale::worker_sweep();
    println!("\n== Shard scaling: per-core shards, stealing, inline dispatch ==");
    println!(
        "  ({} clients; blocking {} calls/client inline-eligible, pipelined {}x{} tagged)",
        scale::CLIENTS,
        scale::CALLS_PER_CLIENT,
        scale::BATCHES,
        scale::BATCH
    );
    println!(
        "  {:>8} {:>14} {:>14} {:>8} {:>8}",
        "workers", "blocking c/s", "pipelined c/s", "inline", "steals"
    );
    let mut cells = Vec::new();
    for &w in &sweep {
        let r = scale::run(w, scale::CLIENTS, scale::CALLS_PER_CLIENT);
        println!(
            "  {:>8} {:>14.0} {:>14.0} {:>8} {:>8}",
            w, r.blocking_cps, r.pipelined_cps, r.inline_calls, r.steals
        );
        report.put("scale", &format!("w{w}-blocking-calls-per-sec"), r.blocking_cps);
        report.put("scale", &format!("w{w}-pipelined-calls-per-sec"), r.pipelined_cps);
        report.put("scale", &format!("w{w}-inline-calls"), r.inline_calls as f64);
        report.put("scale", &format!("w{w}-steals"), r.steals as f64);
        if r.inline_calls as usize != scale::CLIENTS * scale::CALLS_PER_CLIENT {
            failures.push(format!(
                "w{w}: {} of {} blocking calls dispatched inline",
                r.inline_calls,
                scale::CLIENTS * scale::CALLS_PER_CLIENT
            ));
        }
        cells.push(r);
    }
    // Gate 1: blocking throughput monotone non-decreasing (within the
    // noise tolerance) from one worker up to the core count.
    let mut best = 0.0f64;
    for r in &cells {
        if r.blocking_cps < best * scale::MONO_TOLERANCE {
            failures.push(format!(
                "w{} blocking throughput {:.0} regressed below {:.0}% of the best earlier cell {:.0}",
                r.workers,
                r.blocking_cps,
                scale::MONO_TOLERANCE * 100.0,
                best
            ));
        }
        best = best.max(r.blocking_cps);
    }
    // Gate 2: the fixed 8-worker cell (measured even on smaller boxes —
    // the inline path carries it) must clear the absolute floor.
    let gate =
        cells.iter().find(|r| r.workers == scale::GATE_WORKERS).copied().unwrap_or_else(|| {
            scale::run(scale::GATE_WORKERS, scale::CLIENTS, scale::CALLS_PER_CLIENT)
        });
    if !sweep.contains(&scale::GATE_WORKERS) {
        println!(
            "  {:>8} {:>14.0} {:>14.0} {:>8} {:>8}   (gate cell)",
            gate.workers, gate.blocking_cps, gate.pipelined_cps, gate.inline_calls, gate.steals
        );
        report.put(
            "scale",
            &format!("w{}-blocking-calls-per-sec", scale::GATE_WORKERS),
            gate.blocking_cps,
        );
        report.put(
            "scale",
            &format!("w{}-pipelined-calls-per-sec", scale::GATE_WORKERS),
            gate.pipelined_cps,
        );
        report.put("scale", &format!("w{}-steals", scale::GATE_WORKERS), gate.steals as f64);
    }
    report.put("scale", "floor-calls-per-sec", scale::FLOOR_CPS);
    println!(
        "  w{} blocking cell: {:.0} calls/s against the {:.0} floor",
        scale::GATE_WORKERS,
        gate.blocking_cps,
        scale::FLOOR_CPS
    );
    if gate.blocking_cps < scale::FLOOR_CPS {
        failures.push(format!(
            "w{} blocking throughput {:.0} calls/s under the {:.0} floor",
            scale::GATE_WORKERS,
            gate.blocking_cps,
            scale::FLOOR_CPS
        ));
    }

    if check {
        if failures.is_empty() {
            println!("  check: ok");
        } else {
            for f in &failures {
                eprintln!("  check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

fn run_shed(report: &mut Report) {
    println!("\n== Admission control: open-loop load vs a high-water mark ==");
    println!(
        "  ({} workers, {} µs/call; queue sheds at {} deep)",
        shed::WORKERS,
        shed::SERVICE_US,
        8 * shed::WORKERS
    );
    println!(
        "  {:>8} {:>9} {:>9} {:>10} {:>10}",
        "load", "offered", "admitted", "shed-rate", "p99(µs)"
    );
    for load in shed::LOADS {
        let r = shed::run(shed::WORKERS, shed::SERVICE_US, load, shed::OFFERED);
        println!(
            "  {:>7.1}x {:>9} {:>9} {:>9.1}% {:>10.0}",
            load,
            r.offered,
            r.admitted,
            r.shed_rate * 100.0,
            r.p99_us
        );
        let cell = format!("{load}x");
        report.put("shed", &format!("{cell}-shed-rate"), r.shed_rate);
        report.put("shed", &format!("{cell}-p99-us"), r.p99_us);
    }
    println!("  (p99 covers admitted calls only: the mark bounds the backlog, so the");
    println!("   tail stays queue-bound even past capacity instead of growing without limit)");
}

fn run_cluster(report: &mut Report, check: bool, seed_override: Option<u64>) {
    let mut failures = Vec::new();
    let cfg = cluster::config();
    let seeds: Vec<u64> = seed_override.map_or_else(|| (1..=cluster::SEEDS).collect(), |s| vec![s]);
    println!("\n== Cluster sim: seeded fault schedules over a replicated group ==");
    println!(
        "  ({} client hosts, {} replicas sharing one reply cache, {} non-idempotent calls/seed)",
        cfg.clients, cfg.replicas, cfg.calls
    );
    println!(
        "  {:>6} {:>7} {:>6} {:>7} {:>5} {:>5} {:>5} {:>5} {:>9} {:>9}",
        "seed", "events", "ok", "failed", "lost", "dup", "supp", "fover", "p50(ns)", "p99(ns)"
    );
    let mut runs = Vec::new();
    for &seed in &seeds {
        let run = cluster::run_seed(&cfg, seed);
        println!(
            "  {:>6} {:>7} {:>6} {:>7} {:>5} {:>5} {:>5} {:>5} {:>9} {:>9}",
            seed,
            run.events,
            run.ok,
            run.failed,
            run.lost,
            run.duplicated,
            run.suppressions,
            run.failovers,
            run.p50_ns,
            run.p99_ns
        );
        report.put("cluster", &format!("seed{seed}-ok"), run.ok as f64);
        report.put("cluster", &format!("seed{seed}-failed"), run.failed as f64);
        report.put("cluster", &format!("seed{seed}-lost"), run.lost as f64);
        report.put("cluster", &format!("seed{seed}-duplicated"), run.duplicated as f64);
        report.put("cluster", &format!("seed{seed}-p50-ns"), run.p50_ns as f64);
        report.put("cluster", &format!("seed{seed}-p99-ns"), run.p99_ns as f64);
        for f in run.invariant_failures() {
            failures.push(f);
        }
        if run.p99_ns > cluster::P99_BOUND_NS {
            failures.push(format!(
                "seed {}: p99 {} ns over the recorded {} ns bound",
                seed,
                run.p99_ns,
                cluster::P99_BOUND_NS
            ));
        }
        runs.push(run);
    }
    let lost: u64 = runs.iter().map(|r| r.lost).sum();
    let duplicated: u64 = runs.iter().map(|r| r.duplicated).sum();
    let suppressions: u64 = runs.iter().map(|r| r.suppressions).sum();
    let failovers: u64 = runs.iter().map(|r| r.failovers).sum();
    println!(
        "  totals: lost {lost}, duplicated {duplicated} (exactly-once held), \
         {suppressions} replays suppressed by the group cache, {failovers} failovers"
    );
    report.put("cluster", "total-lost", lost as f64);
    report.put("cluster", "total-duplicated", duplicated as f64);
    report.put("cluster", "total-suppressions", suppressions as f64);
    report.put("cluster", "total-failovers", failovers as f64);
    report.put("cluster", "p99-bound-ns", cluster::P99_BOUND_NS as f64);

    // Replay verification: any failing seed replays from scratch so the
    // report shows whether the failure reproduces; a healthy matrix
    // replays its first seed to keep the determinism gate honest.
    let mut to_replay: Vec<&cluster::ClusterRun> =
        runs.iter().filter(|r| !r.invariant_failures().is_empty()).collect();
    if to_replay.is_empty() {
        to_replay.extend(runs.first());
    }
    for first in to_replay {
        let (metrics_equal, trace_identical) = cluster::replay(first);
        println!(
            "  replay seed {}: metrics {}, trace {}",
            first.seed,
            if metrics_equal { "identical" } else { "DIVERGED" },
            if trace_identical { "byte-identical" } else { "DIVERGED" }
        );
        if !metrics_equal || !trace_identical {
            failures.push(format!("seed {}: replay diverged — determinism broken", first.seed));
        }
        if !first.invariant_failures().is_empty() {
            println!("  reproduce with: {}", cluster::replay_command(first.seed));
        }
        report.put(
            "cluster",
            &format!("seed{}-replay-identical", first.seed),
            (metrics_equal && trace_identical) as u64 as f64,
        );
    }

    if check {
        if failures.is_empty() {
            println!("  check: ok");
        } else {
            for f in &failures {
                eprintln!("  check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
