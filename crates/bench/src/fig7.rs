//! Figure 7 — pipe throughput over fbufs (standard vs `[special]`), plus
//! the monolithic BSD-pipe reference.

use flexrpc_kernel::{Kernel, TaskId, UserAddr};
use flexrpc_pipes::bsd::BsdPipe;
pub use flexrpc_pipes::fbuf::{FbufMode, FbufPipeHarness};
use std::sync::Arc;

/// Total bytes per measured run.
pub const TOTAL: usize = 1024 * 1024;
/// Per-operation I/O size.
pub const IO_SIZE: usize = 4096;
/// The paper's two pipe-buffer sizes.
pub const PIPE_CAPS: [usize; 2] = [4096, 8192];

/// Builds an fbuf harness for `(cap, mode)`.
pub fn harness(cap: usize, mode: FbufMode) -> FbufPipeHarness {
    FbufPipeHarness::new(cap, IO_SIZE, mode)
}

/// Runs one fbuf transfer.
pub fn run(h: &mut FbufPipeHarness, total: usize) {
    h.transfer(total, IO_SIZE);
}

/// The monolithic reference setup.
pub struct BsdRef {
    pipe: BsdPipe,
    writer: TaskId,
    waddr: UserAddr,
    reader: TaskId,
    raddr: UserAddr,
}

impl BsdRef {
    /// Builds the in-kernel pipe baseline (4K buffer, as in 4.3BSD).
    pub fn new() -> BsdRef {
        let k = Kernel::new();
        let writer = k.create_task("writer", 2 * IO_SIZE + 4096).expect("task");
        let reader = k.create_task("reader", 2 * IO_SIZE + 4096).expect("task");
        let waddr = k.user_alloc(writer, IO_SIZE).expect("alloc");
        let raddr = k.user_alloc(reader, IO_SIZE).expect("alloc");
        let pipe = BsdPipe::new(Arc::clone(&k));
        BsdRef { pipe, writer, waddr, reader, raddr }
    }

    /// Moves `total` bytes through the monolithic pipe.
    pub fn run(&mut self, total: usize) {
        self.pipe
            .transfer(self.writer, self.waddr, self.reader, self.raddr, total, IO_SIZE)
            .expect("transfer succeeds");
    }
}

impl Default for BsdRef {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fbuf_modes_and_bsd_run() {
        for cap in PIPE_CAPS {
            for mode in [FbufMode::Standard, FbufMode::Special] {
                let mut h = harness(cap, mode);
                run(&mut h, 64 * 1024);
            }
        }
        let mut b = BsdRef::new();
        b.run(64 * 1024);
    }
}
