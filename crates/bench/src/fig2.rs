//! Figure 2 — NFS 8 MB read: user-space buffer presentation × stub origin.
//!
//! The paper's bars decompose into a constant "network and server" part and
//! a varying "client processing" part. Here the client processing is real
//! measured CPU time and the network/server part is the simulated wire
//! clock, which is *identical* across variants by construction (asserted in
//! the nfs crate's tests).

use flexrpc_net::SimNet;
use flexrpc_nfs::client::{ClientVariant, NfsClientHarness};
use flexrpc_nfs::server::{serve_nfs, test_file};
use flexrpc_nfs::FHSIZE;
use std::sync::Arc;

/// The paper's workload: an 8 MB file read in NFSv2's 8 KB chunks.
pub const FILE_LEN: usize = 8 * 1024 * 1024;
/// Chunk size per NFS read.
pub const CHUNK: usize = 8192;

/// One experiment instance: a network, a served file, and a client harness.
pub struct Fig2 {
    net: Arc<SimNet>,
    harness: NfsClientHarness,
}

impl Fig2 {
    /// Builds the experiment with a file of `file_len` bytes.
    pub fn new(file_len: usize) -> Fig2 {
        let net = SimNet::new();
        let client_host = net.add_host("linux-486dx2");
        let server_host = net.add_host("hp700-bsd");
        let store = serve_nfs(&net, server_host);
        let fh: [u8; FHSIZE] = store.lock().add_file(test_file(file_len, 42));
        let harness =
            NfsClientHarness::new(Arc::clone(&net), client_host, server_host, fh, file_len);
        Fig2 { net, harness }
    }

    /// Reads the whole file once with `variant`. Returns bytes read.
    pub fn run(&mut self, variant: ClientVariant, file_len: usize) -> usize {
        self.harness.read_file(variant, file_len, CHUNK).expect("read succeeds");
        file_len
    }

    /// Simulated wire + server nanoseconds accumulated so far.
    pub fn wire_ns(&self) -> u64 {
        self.net.wire_ns()
    }

    /// Real CPU nanoseconds spent in the server's handlers so far —
    /// subtracted from measured totals so the reported number is *client*
    /// processing, as in the paper's figure.
    pub fn service_ns(&self) -> u64 {
        self.net.service_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_all_variants() {
        let len = 64 * 1024;
        let mut f = Fig2::new(len);
        for v in ClientVariant::ALL {
            assert_eq!(f.run(v, len), len);
        }
        assert!(f.wire_ns() > 0);
    }
}
