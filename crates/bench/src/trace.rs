//! Observability experiment — per-stage call breakdown and tracing
//! overhead.
//!
//! Three measurements back the "tracing is cheap enough to leave on"
//! claim:
//!
//! 1. **Per-stage breakdown** of the Figure 6 `read` call on the
//!    same-domain loopback transport and over Sun RPC, traced on the wall
//!    clock. The marshal share of total call time is the paper's motivating
//!    ratio: dominant when the transport is a function call, diluted once a
//!    (simulated) wire is in the path.
//! 2. **Deterministic wire breakdown**: the same Sun RPC workload traced on
//!    the *sim* clock, twice. The exported streams must be byte-identical —
//!    the observability plane is part of the deterministic replay story —
//!    and the per-call transport time is an exact, reproducible number.
//! 3. **Overhead**: traced vs untraced calls/s on the same-domain path
//!    (where a span costs the most relative to the call). The `--check`
//!    gate holds the ratio at or under [`OVERHEAD_BOUND`].

use flexrpc_core::fuse::SpecializeOptions;
use flexrpc_core::value::Value;
use flexrpc_marshal::WireFormat;
use flexrpc_net::SimNet;
use flexrpc_runtime::policy::CallOptions;
use flexrpc_runtime::transport::{serve_on_net, Loopback, SunRpc};
use flexrpc_runtime::{ClientStub, ServerInterface};
use flexrpc_trace::{JsonLinesSink, Stage, TimeSource};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::fuse;

/// Reply payload bytes per `read` call: kilobyte-class, so the gated
/// overhead ratio reflects a realistic call, not a degenerate null RPC.
pub const READ_SIZE: usize = 2048;

/// Calls per breakdown run.
pub const CALLS: usize = 400;

/// Warm-up calls before a breakdown run is measured.
pub const WARMUP: usize = 50;

/// The `--check` bound on traced/untraced time per call (1.05 = 5%).
pub const OVERHEAD_BOUND: f64 = 1.05;

fn fileio_server(format: WireFormat) -> Arc<Mutex<ServerInterface>> {
    let compiled = Arc::new(fuse::compile(SpecializeOptions::default()));
    let mut server = ServerInterface::new_shared(compiled, format);
    server
        .on("read", |call| {
            let count = call.u32("count").expect("count arg") as usize;
            call.set("return", Value::Bytes(vec![0u8; count])).expect("set");
            0
        })
        .expect("read registers");
    Arc::new(Mutex::new(server))
}

/// A ready-to-call traced (or not) `read` stub on one transport.
pub struct TraceRunner {
    stub: ClientStub,
    frame: Vec<Value>,
    options: CallOptions,
}

/// Which transport a [`TraceRunner`] crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Stub and server in one address space over `Loopback`.
    SameDomain,
    /// Sun RPC over the simulated network (10 Mbit default config).
    SunRpc,
}

impl Path {
    pub fn label(self) -> &'static str {
        match self {
            Path::SameDomain => "same-domain",
            Path::SunRpc => "sunrpc",
        }
    }
}

impl TraceRunner {
    /// Builds a stub on `path`. `traced` turns per-call span recording on.
    pub fn new(path: Path, traced: bool) -> TraceRunner {
        let format = WireFormat::Cdr;
        let stub = match path {
            Path::SameDomain => {
                let server = fileio_server(format);
                ClientStub::new(
                    fuse::compile(SpecializeOptions::default()),
                    format,
                    Box::new(Loopback::new(server)),
                )
            }
            Path::SunRpc => {
                let net = SimNet::new();
                let ch = net.add_host("client");
                let sh = net.add_host("server");
                serve_on_net(&net, sh, fileio_server(format), 600_001, 1).expect("serves");
                let t = SunRpc::new(Arc::clone(&net), ch, sh, 600_001, 1);
                ClientStub::new(fuse::compile(SpecializeOptions::default()), format, Box::new(t))
            }
        };
        let mut frame = stub.new_frame("read").expect("frame");
        frame[0] = Value::U32(READ_SIZE as u32);
        let options = if traced { CallOptions::default().traced() } else { CallOptions::default() };
        TraceRunner { stub, frame, options }
    }

    /// Switches the tracer to wall-clock timestamps (for CPU breakdowns;
    /// explicitly non-deterministic). The ring is sized to hold every
    /// event of a breakdown run, so stage totals never lose evicted spans.
    pub fn wall_clock(mut self) -> TraceRunner {
        self.stub.enable_trace_with((WARMUP + CALLS) * 4, TimeSource::wall());
        self
    }

    /// One synchronous `read` RPC.
    pub fn call(&mut self) {
        self.frame[0] = Value::U32(READ_SIZE as u32);
        self.stub.call_with("read", &mut self.frame, &self.options).expect("call succeeds");
    }

    /// Per-stage accumulated nanoseconds from the stub's trace.
    pub fn stage_totals(&self) -> [u64; Stage::COUNT] {
        self.stub.trace().map(|t| t.stage_totals()).unwrap_or_default()
    }

    /// The trace exported as JSON lines (for determinism comparison).
    pub fn export_json(&self) -> String {
        let mut sink = JsonLinesSink::new();
        if let Some(t) = self.stub.trace() {
            t.export(0, &mut sink);
        }
        sink.into_string()
    }
}

/// Per-stage wall-clock breakdown of `CALLS` traced reads on `path`.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Accumulated nanoseconds per stage over the run.
    pub totals: [u64; Stage::COUNT],
    /// Sum over all stages.
    pub total_ns: u64,
    /// (marshal + unmarshal) / total — the presentation share.
    pub marshal_share: f64,
}

/// Runs the traced workload on `path` with wall-clock timestamps and
/// returns where the time went.
pub fn wall_breakdown(path: Path) -> Breakdown {
    let mut r = TraceRunner::new(path, true).wall_clock();
    for _ in 0..WARMUP {
        r.call();
    }
    // The ring was sized to retain warm-up and measured events alike, so
    // subtracting the warm-up totals leaves exactly the CALLS below.
    let totals_before = r.stage_totals();
    for _ in 0..CALLS {
        r.call();
    }
    let after = r.stage_totals();
    let mut totals = [0u64; Stage::COUNT];
    for (i, t) in totals.iter_mut().enumerate() {
        *t = after[i].saturating_sub(totals_before[i]);
    }
    let total_ns: u64 = totals.iter().sum();
    let marshal = totals[Stage::Marshal as usize] + totals[Stage::Unmarshal as usize];
    Breakdown {
        totals,
        total_ns,
        marshal_share: if total_ns > 0 { marshal as f64 / total_ns as f64 } else { 0.0 },
    }
}

/// One deterministic Sun RPC run on the sim clock: `calls` traced reads,
/// returning the exported JSON-lines stream and the per-call transport
/// nanoseconds (exact sim time, not a measurement).
pub fn sim_run(calls: usize) -> (String, f64) {
    let mut r = TraceRunner::new(Path::SunRpc, true);
    for _ in 0..calls {
        r.call();
    }
    let transport_ns = r.stage_totals()[Stage::Transport as usize];
    (r.export_json(), transport_ns as f64 / calls as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_breakdown_records_client_stages() {
        let b = wall_breakdown(Path::SameDomain);
        assert!(b.total_ns > 0, "wall clock charged the spans");
        assert!(b.marshal_share > 0.0 && b.marshal_share <= 1.0);
        assert_eq!(b.totals[Stage::Bind as usize], 0, "no bind span client-side");
    }

    #[test]
    fn sim_runs_are_byte_identical() {
        let (a, ns_a) = sim_run(16);
        let (b, ns_b) = sim_run(16);
        assert_eq!(a, b);
        assert!(ns_a > 0.0 && ns_a == ns_b, "exact, reproducible wire time");
    }

    #[test]
    fn untraced_runner_records_nothing() {
        let mut r = TraceRunner::new(Path::SameDomain, false);
        r.call();
        assert_eq!(r.stage_totals().iter().sum::<u64>(), 0);
        assert!(r.export_json().is_empty());
    }
}
