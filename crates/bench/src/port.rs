//! §4.5's first measurement — transferring a port right between tasks,
//! with and without Mach's unique-name requirement.
//!
//! The paper: relaxing the single-name rule with `[nonunique]` cut a
//! single-port transfer from 32.4 µs to 24.7 µs (24%), because the unique
//! path must probe a reverse map and maintain reference counts "through
//! many layers of function calls" while the relaxed path just mints a
//! fresh name.

use flexrpc_kernel::ipc::{BindOptions, MsgOut, ServerOptions};
use flexrpc_kernel::{Connection, Kernel, NameMode, PortName};
use std::sync::Arc;

/// A port-transfer scenario: a connection whose server receives one send
/// right per call (and releases it, keeping tables in steady state).
pub struct PortTransfer {
    kernel: Arc<Kernel>,
    conn: Connection,
    right: PortName,
}

impl PortTransfer {
    /// Builds the scenario with the given name-translation mode.
    pub fn new(mode: NameMode) -> PortTransfer {
        let kernel = Kernel::new();
        let client = kernel.create_task("client", 4096).expect("task");
        let server = kernel.create_task("server", 4096).expect("task");
        let third = kernel.create_task("object", 4096).expect("task");

        // The object whose right is passed around.
        let obj_port = kernel.port_allocate(third).expect("port");
        let right = kernel.extract_send_right(third, obj_port, client).expect("right");

        let port = kernel.port_allocate(server).expect("port");
        let k2 = Arc::clone(&kernel);
        kernel
            .register_server(
                server,
                port,
                ServerOptions { name_mode: mode, ..Default::default() },
                move |_k, m| {
                    // Consume the right: release it so per-call state stays
                    // constant (a server done with a capability drops it).
                    for name in &m.rights {
                        k2.deallocate_right(server, *name).map_err(|_| 1u32)?;
                    }
                    Ok(MsgOut { regs: m.regs, body: Vec::new(), rights: vec![] })
                },
            )
            .expect("register");
        let send = kernel.extract_send_right(server, port, client).expect("right");
        let conn = kernel.ipc_bind(client, send, BindOptions::default()).expect("bind");
        PortTransfer { kernel, conn, right }
    }

    /// One RPC carrying one port right.
    pub fn transfer_once(&self) {
        self.kernel.ipc_call(&self.conn, &[], &[self.right]).expect("transfer succeeds");
    }

    /// Name-table probes per transfer (the deterministic cost model).
    pub fn probes_per_transfer(&self) -> u64 {
        let before = self.kernel.stats().snapshot();
        self.transfer_once();
        self.kernel.stats().snapshot().since(&before).name_table_probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_costs_more_probes() {
        let unique = PortTransfer::new(NameMode::Unique);
        let nonunique = PortTransfer::new(NameMode::NonUnique);
        // Warm both (first unique transfer installs the name).
        unique.transfer_once();
        nonunique.transfer_once();
        let u = unique.probes_per_transfer();
        let n = nonunique.probes_per_transfer();
        assert!(u > n, "unique={u} probes vs nonunique={n}");
        assert_eq!(n, 1);
    }

    #[test]
    fn rights_steady_state() {
        let t = PortTransfer::new(NameMode::NonUnique);
        for _ in 0..100 {
            t.transfer_once();
        }
        // The server released every minted name; a healthy steady state.
    }
}
