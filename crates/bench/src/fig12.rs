//! Figure 12 — null RPC latency across the 3×3 trust matrix.
//!
//! Each endpoint independently declares how far it trusts the other
//! (none / `[leaky]` / `[leaky, unprotected]`); the kernel compiles the
//! pair into the combination signature's register path at bind time. The
//! figure's shape: ~30% from the no-trust corner to the full-trust corner,
//! and the two server-side `unprotected` columns equal the `leaky` ones.

use flexrpc_kernel::ipc::{BindOptions, MsgOut, ServerOptions};
use flexrpc_kernel::regs::MSG_REGS;
use flexrpc_kernel::{Connection, Kernel, TrustLevel};
use std::sync::Arc;

/// One matrix cell: a bound null-RPC connection.
pub struct Cell {
    kernel: Arc<Kernel>,
    conn: Connection,
}

impl Cell {
    /// Builds the cell for `(client_trust, server_trust)`.
    pub fn new(client_trust: TrustLevel, server_trust: TrustLevel) -> Cell {
        let kernel = Kernel::new();
        let client = kernel.create_task("client", 4096).expect("task");
        let server = kernel.create_task("server", 4096).expect("task");
        let port = kernel.port_allocate(server).expect("port");
        kernel
            .register_server(
                server,
                port,
                ServerOptions { trust_of_client: server_trust, ..Default::default() },
                |_k, m| Ok(MsgOut { regs: m.regs, body: Vec::new(), rights: vec![] }),
            )
            .expect("register");
        let send = kernel.extract_send_right(server, port, client).expect("right");
        let conn = kernel
            .ipc_bind(
                client,
                send,
                BindOptions { trust_of_server: client_trust, ..Default::default() },
            )
            .expect("bind");
        Cell { kernel, conn }
    }

    /// One null RPC (registers only, empty body).
    pub fn null_rpc(&self) {
        let regs = [7u64; MSG_REGS];
        let reply = self.kernel.ipc_call_regs(&self.conn, regs, &[], &[]).expect("call");
        debug_assert_eq!(reply.regs[0], 7);
    }

    /// Number of register ops the combination signature compiled in — the
    /// deterministic cost model behind the timing.
    pub fn reg_ops(&self) -> usize {
        self.conn.reg_path().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_cells_run_and_order_by_reg_ops() {
        let mut ops = Vec::new();
        for c in TrustLevel::ALL {
            for s in TrustLevel::ALL {
                let cell = Cell::new(c, s);
                cell.null_rpc();
                ops.push(((c, s), cell.reg_ops()));
            }
        }
        let full = ops
            .iter()
            .find(|(k, _)| *k == (TrustLevel::LeakyUnprotected, TrustLevel::LeakyUnprotected))
            .unwrap()
            .1;
        let none = ops.iter().find(|(k, _)| *k == (TrustLevel::None, TrustLevel::None)).unwrap().1;
        assert_eq!(full, 0);
        assert!(none > 0);
        // Server-side unprotected == server-side leaky, per the footnote.
        for c in TrustLevel::ALL {
            let leaky = ops.iter().find(|(k, _)| *k == (c, TrustLevel::Leaky)).unwrap().1;
            let unprot =
                ops.iter().find(|(k, _)| *k == (c, TrustLevel::LeakyUnprotected)).unwrap().1;
            assert_eq!(leaky, unprot);
        }
    }
}
