//! Shard scaling — the engine's per-core shard set under both call models.
//!
//! Two phases per worker count, one engine each:
//!
//! * **Blocking** — synchronous `read` calls from concurrent clients. With
//!   no deadline and no backlog these dispatch *inline* on the caller's
//!   thread (LRPC-style: no queue, no worker handoff), so the cell measures
//!   the shard set's fast path. This is the gated headline number.
//! * **Pipelined** — each client submits tagged batches (distinct tenants,
//!   so their lanes hash to different home shards) and then waits, keeping
//!   every shard's queue busy at once. The cell exercises the cross-shard
//!   path — work stealing shows up in `engine.steals` whenever an idle
//!   shard drains a loaded peer.
//!
//! The `report scale --check` gates: blocking throughput must be
//! monotonically non-decreasing (within a small noise tolerance) from one
//! worker up to the core count, and the [`GATE_WORKERS`]-worker blocking
//! cell must clear [`FLOOR_CPS`] — about twice what the pre-shard engine's
//! one-worker handoff path sustained on the reference box.

use crate::serve;
use flexrpc_core::present::InterfacePresentation;
use flexrpc_engine::{ClientInfo, Engine};
use flexrpc_marshal::WireFormat;
use flexrpc_pipes::fileio_module;
use flexrpc_runtime::policy::CallTag;
use flexrpc_runtime::TenantId;
use std::sync::Arc;

/// Calls/s floor for the [`GATE_WORKERS`]-worker blocking cell.
pub const FLOOR_CPS: f64 = 410_000.0;
/// Worker count of the gated throughput cell (measured even when the box
/// has fewer cores — extra workers idle, the inline path does the work).
pub const GATE_WORKERS: usize = 8;
/// Concurrent client threads per cell.
pub const CLIENTS: usize = 4;
/// Blocking calls per client per cell (report binary).
pub const CALLS_PER_CLIENT: usize = 2_000;
/// Pipelined batches per client and calls per batch.
pub const BATCHES: usize = 25;
pub const BATCH: usize = 32;
/// A later sweep cell may dip to this fraction of the best earlier cell
/// before the monotonicity check calls it a regression — wall-clock
/// throughput on a shared box needs a noise allowance; a real scaling
/// cliff blows far through it.
pub const MONO_TOLERANCE: f64 = 0.80;

/// Cores the box exposes (the sweep's upper end).
pub fn core_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Worker counts feeding the monotonic gate: powers of two from 1 up to
/// and including the core count.
pub fn worker_sweep() -> Vec<usize> {
    let cores = core_count();
    let mut ws = Vec::new();
    let mut w = 1;
    while w < cores {
        ws.push(w);
        w *= 2;
    }
    ws.push(cores);
    ws
}

/// One worker count's measured cell.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRun {
    /// Workers (= shards) in the engine.
    pub workers: usize,
    /// Blocking (inline-eligible) calls per second across all clients.
    pub blocking_cps: f64,
    /// Pipelined (queued, tagged) calls per second across all clients.
    pub pipelined_cps: f64,
    /// Calls served inline on caller threads (blocking phase).
    pub inline_calls: u64,
    /// Jobs idle shards stole from loaded peers (pipelined phase).
    pub steals: u64,
}

fn presentation() -> InterfacePresentation {
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    InterfacePresentation::default_for(&m, iface).expect("defaults")
}

/// Marshals one `read(READ_SIZE)` request in the service's wire format.
fn read_request() -> Vec<u8> {
    let mut w = flexrpc_runtime::wire::AnyWriter::new(WireFormat::Cdr);
    w.put_u32(serve::READ_SIZE as u32);
    w.into_bytes()
}

/// Pipelined phase: every client floods its own tenant's lane with tagged
/// batches, all lanes live at once so shards that drain early steal from
/// the ones still loaded. Returns total completed calls.
fn drive_pipelined(engine: &Arc<Engine>, clients: usize) -> usize {
    let pres = presentation();
    let request = Arc::new(read_request());
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let conn =
                engine.connect("echo").client(ClientInfo::of(&pres)).establish().expect("connect");
            let request = Arc::clone(&request);
            std::thread::spawn(move || {
                let op_index = conn.program().op("read").expect("read op").index;
                let mut seq = 0u64;
                for _ in 0..BATCHES {
                    let tickets: Vec<_> = (0..BATCH)
                        .map(|_| {
                            seq += 1;
                            let tag =
                                CallTag::for_tenant(c as u64 + 1, seq, TenantId(c as u64 + 1));
                            conn.submit_tagged(op_index, &request, &[], None, Some(tag))
                                .expect("submit")
                        })
                        .collect();
                    for t in tickets {
                        t.wait().expect("pipelined call succeeds");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client ok");
    }
    clients * BATCHES * BATCH
}

/// One full cell: blocking phase, then pipelined phase, on fresh engines.
pub fn run(workers: usize, clients: usize, calls_per_client: usize) -> ScaleRun {
    // Blocking (inline) phase.
    let engine = serve::build_engine(workers);
    let stubs: Vec<_> = (0..clients).map(|i| serve::client(&engine, i)).collect();
    let t0 = std::time::Instant::now();
    serve::drive(stubs, calls_per_client);
    let blocking_elapsed = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    assert_eq!(stats.calls_served as usize, clients * calls_per_client);
    let inline_calls = stats.inline_calls;
    engine.shutdown();

    // Pipelined (queued, cross-shard) phase.
    let engine = serve::build_engine(workers);
    let t0 = std::time::Instant::now();
    let completed = drive_pipelined(&engine, clients);
    let pipelined_elapsed = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    assert_eq!(stats.calls_served as usize, completed);
    let steals = stats.steals;
    engine.shutdown();

    ScaleRun {
        workers,
        blocking_cps: (clients * calls_per_client) as f64 / blocking_elapsed,
        pipelined_cps: completed as f64 / pipelined_elapsed,
        inline_calls,
        steals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_phase_runs_inline() {
        let r = run(2, 2, 50);
        assert!(r.blocking_cps > 0.0 && r.pipelined_cps > 0.0);
        assert_eq!(r.inline_calls, 2 * 50, "no-deadline blocking calls all dispatch inline");
    }

    #[test]
    fn sweep_is_nonempty_and_sorted() {
        let ws = worker_sweep();
        assert!(!ws.is_empty());
        assert!(ws.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*ws.last().expect("nonempty"), core_count());
    }
}
