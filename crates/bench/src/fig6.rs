//! Figure 6 — pipe throughput over kernel IPC, default vs `dealloc(never)`.

pub use flexrpc_pipes::ipc::PipeIpcHarness;
pub use flexrpc_pipes::server::ReadPresentation;

/// Total bytes moved through the pipe per measured run.
pub const TOTAL: usize = 1024 * 1024;
/// Per-operation I/O size (half the smaller pipe so flow control engages).
pub const IO_SIZE: usize = 4096;

/// The paper's two pipe-buffer sizes.
pub const PIPE_CAPS: [usize; 2] = [4096, 8192];

/// Builds a harness for `(cap, mode)`.
pub fn harness(cap: usize, mode: ReadPresentation) -> PipeIpcHarness {
    PipeIpcHarness::new(cap, mode)
}

/// Runs one transfer; returns (write_rpcs, read_rpcs).
pub fn run(h: &mut PipeIpcHarness, total: usize) -> (u64, u64) {
    h.transfer(total, IO_SIZE).expect("transfer succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_and_caps_run() {
        for cap in PIPE_CAPS {
            for mode in [ReadPresentation::Default, ReadPresentation::DeallocNever] {
                let mut h = harness(cap, mode);
                let (w, r) = run(&mut h, 64 * 1024);
                assert!(w > 0 && r > 0);
            }
        }
    }
}
