//! Specialization experiment — op fusion + presize, A/B'd on the hot path.
//!
//! Three measurements back the "specialize the hot call path" claim:
//!
//! 1. **Dispatches per call** for the Figure 6 pipe-read signature
//!    (`read(count: u32) -> sequence<octet>`): interpreter dispatches
//!    across all four stub programs of one call, fused vs unfused. This is
//!    the static count the fusion pass promises — no timer involved.
//! 2. **Calls per second** through real stubs, fused vs unfused, on the
//!    same-domain loopback transport and on the kernel-IPC transport. Both
//!    sides of each A/B run identical handlers; only `SpecializeOptions`
//!    differs.
//! 3. **Cache-lookup scaling**: total lookups/s against one shared
//!    [`ProgramCache`] as reader threads sweep, plus the contended-read
//!    count — the sharded read-mostly design should scale near-linearly
//!    and report (not suffer) contention.

use flexrpc_core::fuse::SpecializeOptions;
use flexrpc_core::present::{InterfacePresentation, Trust};
use flexrpc_core::program::{CompiledInterface, CompiledOp};
use flexrpc_core::value::Value;
use flexrpc_engine::{ProgramCache, ProgramKey};
use flexrpc_kernel::{Kernel, NameMode};
use flexrpc_marshal::WireFormat;
use flexrpc_pipes::fileio_module;
use flexrpc_runtime::transport::{connect_kernel, serve_on_kernel, Loopback};
use flexrpc_runtime::{ClientStub, ServerInterface};
use parking_lot::Mutex;
use std::sync::Arc;

/// Reply payload bytes per `read` call (small, so dispatch overhead — the
/// thing fusion removes — is a visible fraction of the call).
pub const READ_SIZE: usize = 64;

/// Reader-thread counts swept by the cache-scaling measurement.
pub const CACHE_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Compiles the FileIO interface with the given specialization.
pub fn compile(opts: SpecializeOptions) -> CompiledInterface {
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    CompiledInterface::compile_with(&m, iface, &pres, opts).expect("compiles")
}

/// (threaded ops, interpreter dispatches) summed over all four programs of
/// one compiled op — the per-call dispatch budget.
pub fn dispatches_per_call(op: &CompiledOp) -> (usize, usize) {
    let programs =
        [&op.request_marshal, &op.request_unmarshal, &op.reply_marshal, &op.reply_unmarshal];
    let ops = programs.iter().map(|p| p.ops.len()).sum();
    let dispatches = programs.iter().map(|p| p.dispatch_count()).sum();
    (ops, dispatches)
}

fn fileio_server(opts: SpecializeOptions, format: WireFormat) -> Arc<Mutex<ServerInterface>> {
    let compiled = Arc::new(compile(opts));
    let mut server = ServerInterface::new_shared(compiled, format);
    server
        .on("read", |call| {
            let count = call.u32("count").expect("count arg") as usize;
            call.set("return", Value::Bytes(vec![0u8; count])).expect("set");
            0
        })
        .expect("read registers");
    Arc::new(Mutex::new(server))
}

/// A ready-to-call `read` stub over one of the two measured transports.
pub struct FuseRunner {
    stub: ClientStub,
    frame: Vec<Value>,
}

impl FuseRunner {
    /// Same-domain: stub and server in one address space over [`Loopback`].
    pub fn same_domain(opts: SpecializeOptions, format: WireFormat) -> FuseRunner {
        let server = fileio_server(opts, format);
        let stub = ClientStub::new(compile(opts), format, Box::new(Loopback::new(server)));
        FuseRunner::finish(stub)
    }

    /// Kernel IPC: client and server tasks on the simulated kernel, the
    /// message crossing the streamlined IPC path.
    pub fn kernel_ipc(opts: SpecializeOptions, format: WireFormat) -> FuseRunner {
        let kernel = Kernel::new();
        let client_task = kernel.create_task("client", 1 << 16).expect("task");
        let server_task = kernel.create_task("server", 1 << 16).expect("task");
        let server = fileio_server(opts, format);
        let port = serve_on_kernel(&kernel, server_task, server, Trust::None, NameMode::Unique)
            .expect("serve");
        let send = kernel.extract_send_right(server_task, port, client_task).expect("right");
        let compiled = compile(opts);
        let signature = compiled.signature.hash();
        let transport =
            connect_kernel(&kernel, client_task, send, signature, Trust::None, NameMode::Unique)
                .expect("connect");
        let stub = ClientStub::new(compiled, format, Box::new(transport));
        FuseRunner::finish(stub)
    }

    fn finish(stub: ClientStub) -> FuseRunner {
        let mut frame = stub.new_frame("read").expect("frame");
        frame[0] = Value::U32(READ_SIZE as u32);
        FuseRunner { stub, frame }
    }

    /// One synchronous `read` RPC.
    pub fn call(&mut self) {
        self.frame[0] = Value::U32(READ_SIZE as u32);
        self.stub.call("read", &mut self.frame).expect("call succeeds");
    }
}

/// Result of one cache-scaling cell.
#[derive(Debug, Clone, Copy)]
pub struct CacheScale {
    /// Total lookups per second across all threads.
    pub lookups_per_sec: f64,
    /// Contended snapshot reads observed during the run.
    pub contended: u64,
}

fn scale_key(i: u64) -> ProgramKey {
    ProgramKey {
        signature: 0x5EED ^ i,
        server_presentation: 1,
        client_presentation: i,
        server_trust: Trust::None,
        client_trust: Trust::None,
        format: WireFormat::Cdr,
    }
}

/// Builds a cache pre-filled with `keys` compiled combinations.
pub fn filled_cache(keys: u64) -> Arc<ProgramCache> {
    let cache = Arc::new(ProgramCache::new());
    for i in 0..keys {
        cache
            .get_or_compile::<flexrpc_core::CoreError>(scale_key(i), || {
                Ok(compile(SpecializeOptions::default()))
            })
            .expect("compiles");
    }
    cache
}

/// Hammers `cache.get` from `threads` readers for `lookups_per_thread`
/// iterations each; every lookup must hit.
pub fn scale_run(
    cache: &Arc<ProgramCache>,
    threads: usize,
    lookups_per_thread: usize,
) -> CacheScale {
    let keys = cache.stats().programs as u64;
    let contended_before: u64 = cache.stats().shards.iter().map(|s| s.contended).sum();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(cache);
            std::thread::spawn(move || {
                for i in 0..lookups_per_thread {
                    let key = scale_key(((t + i) as u64) % keys);
                    assert!(cache.get(&key).is_some(), "pre-filled key hits");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader ok");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let contended_after: u64 = cache.stats().shards.iter().map(|s| s.contended).sum();
    CacheScale {
        lookups_per_sec: (threads * lookups_per_thread) as f64 / elapsed,
        contended: contended_after - contended_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_read_fuses_at_least_thirty_percent() {
        let fused = compile(SpecializeOptions::default());
        let (ops, dispatches) = dispatches_per_call(fused.op("read").expect("read"));
        assert!(ops > 0 && dispatches < ops);
        let reduction = (ops - dispatches) as f64 / ops as f64;
        assert!(reduction >= 0.30, "read fuses {ops} ops to {dispatches} dispatches");
    }

    #[test]
    fn unfused_compile_keeps_one_dispatch_per_op() {
        let plain = compile(SpecializeOptions::none());
        let (ops, dispatches) = dispatches_per_call(plain.op("read").expect("read"));
        assert_eq!(ops, dispatches);
    }

    #[test]
    fn both_transports_run_fused_and_unfused() {
        for opts in [SpecializeOptions::default(), SpecializeOptions::none()] {
            for format in [WireFormat::Xdr, WireFormat::Cdr] {
                FuseRunner::same_domain(opts, format).call();
                FuseRunner::kernel_ipc(opts, format).call();
            }
        }
    }

    #[test]
    fn cache_scale_all_hits() {
        let cache = filled_cache(8);
        let r = scale_run(&cache, 4, 200);
        assert!(r.lookups_per_sec > 0.0);
        assert_eq!(cache.stats().misses, 8, "scaling run never compiles");
    }
}
