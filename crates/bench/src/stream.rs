//! The `stream` experiment: the non-unary call models end to end.
//!
//! Two scenarios from `flexrpc-stream`, sized for the report binary:
//!
//! * the broadcast **edit feed** — one `[stream]` publisher, a thousand
//!   `[oneway]` callback subscribers, a reply lost every fifth frame; the
//!   gate demands zero lost and zero duplicated frames and a
//!   deterministic rerun;
//! * the **remote file stream** — fault-free writes whose total credit
//!   stall must hit the closed form `(frames - window) * drain_ns`
//!   exactly, and a faulted run whose file contents must come out
//!   byte-identical with one execution per frame.

pub use flexrpc_stream::editfeed::{self, EditFeedConfig, EditFeedRun};
pub use flexrpc_stream::filestream::{self, FileStreamRun};

use flexrpc_marshal::WireFormat;
use flexrpc_trace::MetricsRegistry;

/// The report configuration: the thousand-subscriber default.
pub fn feed_config() -> EditFeedConfig {
    EditFeedConfig::default()
}

/// One edit-feed run (adopting the stream/callback metrics when given).
pub fn edit_feed(metrics: Option<&MetricsRegistry>) -> EditFeedRun {
    editfeed::run(&feed_config(), metrics)
}

/// File-stream shape used by the report: enough frames to stall the
/// window hard.
pub const FILE_FRAMES: usize = 64;
pub const FILE_WINDOW: u32 = 8;
pub const FILE_DRAIN_NS: u64 = 250_000;
pub const FILE_CLOSE_EVERY: usize = 5;

/// Fault-free run: the credit stall must equal its closed-form prediction.
pub fn file_exact() -> FileStreamRun {
    filestream::run(FILE_FRAMES, FILE_WINDOW, FILE_DRAIN_NS, 0, WireFormat::Xdr)
}

/// Reply-loss run: at-most-once writes, contents byte-identical.
pub fn file_faulted() -> FileStreamRun {
    filestream::run(FILE_FRAMES, FILE_WINDOW, FILE_DRAIN_NS, FILE_CLOSE_EVERY, WireFormat::Cdr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_exact_hits_the_closed_form() {
        let r = file_exact();
        assert_eq!(r.credits_waited_ns, r.predicted_stall_ns, "{r:?}");
        assert_eq!(r.sim_ns, FILE_FRAMES as u64 * FILE_DRAIN_NS, "{r:?}");
    }

    #[test]
    fn file_faulted_is_at_most_once() {
        let r = file_faulted();
        assert!(r.faults > 0);
        assert!(r.contents_ok, "{r:?}");
        assert_eq!(r.executions, r.frames as u64, "{r:?}");
    }
}
