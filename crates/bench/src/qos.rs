//! Multi-tenant QoS under a noisy neighbor, plus live rebind under load —
//! both on deterministic sim time.
//!
//! **Noisy neighbor.** Tenant A offers 10× tenant B's load into a
//! one-worker engine whose queue is plugged, so the whole backlog forms
//! before anything drains. A's excess is shed against A's *own* quota; B
//! is never shed; and because the drain is weighted-fair, B's p99 queue
//! dwell stays within a closed-form bound (B's last call sits at position
//! ~2·OFFERED_B of the interleaved drain, not behind A's entire admitted
//! burst). Everything is counted in sim-nanoseconds on per-tenant
//! counters, so the run is exactly reproducible.
//!
//! **Live rebind.** A connection with a plugged backlog of tagged
//! non-idempotent calls has its tenant policy swapped and its combination
//! re-negotiated mid-stream; the drain must execute every call exactly
//! once — zero lost, zero duplicated — at every rebind index tried.

use flexrpc_core::present::{InterfacePresentation, Trust};
use flexrpc_core::value::Value;
use flexrpc_engine::{ClientInfo, ControlPlane, Engine, EngineError, Policy, TenantId};
use flexrpc_marshal::WireFormat;
use flexrpc_pipes::fileio_module;
use flexrpc_runtime::wire::AnyWriter;
use flexrpc_runtime::CallTag;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sim-time cost of one call (a power of two, so dwell positions resolve
/// to distinct log2 histogram buckets).
pub const SERVICE_NS: u64 = 1 << 10;
/// Tenant A's admission quota (queued calls at once).
pub const QUOTA_A: usize = 512;
/// Calls tenant A offers — 10× tenant B's load, 25% past A's own quota.
pub const OFFERED_A: usize = 640;
/// Calls tenant B offers.
pub const OFFERED_B: usize = 64;
/// The gated bound on B's p99 queue dwell under the A-storm: B's last
/// call drains at position ≤ 2·OFFERED_B of the fair interleave, so its
/// dwell lands in the log2 bucket below 2^18 sim-ns. A FIFO drain would
/// put it behind all of A's admitted burst, an order of magnitude higher.
pub const DWELL_BOUND_NS: u64 = 1 << 18;

const TENANT_A: TenantId = TenantId(1);
const TENANT_B: TenantId = TenantId(2);
const TENANT_PLUG: TenantId = TenantId(3);

/// One noisy-neighbor run's ledger (all sim-time, so two runs of the same
/// configuration must compare equal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosRun {
    /// Calls tenant A offered.
    pub offered_a: usize,
    /// A's calls admitted (== its quota).
    pub admitted_a: u64,
    /// A's calls shed against its own quota.
    pub shed_a: u64,
    /// B's calls admitted (all of them).
    pub admitted_b: u64,
    /// B's calls shed (must be zero: A's storm is charged to A).
    pub shed_b: u64,
    /// B's calls served to completion.
    pub served_b: u64,
    /// Engine-wide shed counter (must equal `shed_a`).
    pub engine_shed: u64,
    /// Ceiling of B's worst queue dwell (top non-empty log2 bucket).
    pub b_dwell_p99_ns: u64,
    /// Mean queue dwell of B's calls, sim-ns.
    pub b_dwell_mean_ns: u64,
    /// Mean queue dwell of A's calls, sim-ns.
    pub a_dwell_mean_ns: u64,
}

/// A latch the experiment holds closed while the backlog forms.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

fn presentation() -> InterfacePresentation {
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let mut pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    pres.trust = Trust::None;
    pres
}

fn read_request() -> Vec<u8> {
    let mut w = AnyWriter::new(WireFormat::Cdr);
    w.put_u32(16);
    w.into_bytes()
}

/// A one-worker engine whose first `read` execution blocks on `gate` (the
/// plug that keeps the lone worker busy while submissions pile up); every
/// execution bumps `executions` and charges `SERVICE_NS` to the sim
/// clock, so queue dwell is exact.
fn plugged_engine(
    plane: &Arc<ControlPlane>,
    gate: &Arc<Gate>,
    executions: &Arc<AtomicU64>,
) -> Arc<Engine> {
    let engine = Engine::builder()
        .workers(1)
        .queue_depth(2 * (QUOTA_A + OFFERED_B))
        .at_most_once(Duration::from_secs(60))
        .control(Arc::clone(plane))
        .build();
    let (gate, executions) = (Arc::clone(gate), Arc::clone(executions));
    let clock = Arc::clone(engine.clock());
    engine
        .register_service("qos", fileio_module(), "FileIO", presentation(), WireFormat::Cdr, {
            move |srv| {
                let (g, ex) = (Arc::clone(&gate), Arc::clone(&executions));
                let clk = Arc::clone(&clock);
                srv.on("read", move |call| {
                    if ex.fetch_add(1, Ordering::SeqCst) == 0 {
                        g.wait();
                    }
                    clk.advance_ns(SERVICE_NS);
                    call.set("return", Value::Bytes(vec![0u8; 16])).expect("set");
                    0
                })
                .expect("read registers");
            }
        })
        .expect("service registers");
    engine
}

/// Ceiling of the top non-empty bucket of `name` (log2 histogram): an
/// exact, deterministic stand-in for "p99-or-worse dwell".
fn dwell_ceiling(snap: &flexrpc_trace::MetricsSnapshot, name: &str) -> u64 {
    snap.histogram(name)
        .and_then(|h| h.buckets.iter().rev().find(|(_, n)| *n > 0))
        .map(|(floor, _)| floor * 2)
        .unwrap_or(0)
}

/// Runs the noisy-neighbor storm once and returns its (deterministic)
/// ledger.
pub fn noisy_neighbor() -> QosRun {
    let plane = ControlPlane::new();
    plane.register(TENANT_A, Policy::new().weight(1).quota(QUOTA_A));
    plane.register(TENANT_B, Policy::new().weight(1));
    let gate = Arc::new(Gate::default());
    let executions = Arc::new(AtomicU64::new(0));
    let engine = plugged_engine(&plane, &gate, &executions);

    let conn_a = engine.connect("qos").tenant(TENANT_A).establish().expect("A connects");
    let conn_b = engine.connect("qos").tenant(TENANT_B).establish().expect("B connects");
    let conn_plug = engine.connect("qos").tenant(TENANT_PLUG).establish().expect("plug connects");
    let req = read_request();

    // The plug: owns the lone worker until the gate opens, so the whole
    // backlog forms with the virtual clock parked — dwell is then a pure
    // function of drain position.
    let plug = conn_plug.submit(0, &req, &[]).expect("plug admitted");
    std::thread::sleep(Duration::from_millis(50));

    // Interleaved offered load, A at 10× B: ten A submissions per B
    // submission. A's overflow is refused at admission (its own quota).
    let mut tickets = Vec::new();
    let mut shed_seen = 0u64;
    for i in 0..OFFERED_A {
        match conn_a.submit(0, &req, &[]) {
            Ok(t) => tickets.push(t),
            Err(EngineError::Overloaded) => shed_seen += 1,
            Err(e) => panic!("unexpected A refusal: {e}"),
        }
        if i % 10 == 0 && i / 10 < OFFERED_B {
            tickets.push(conn_b.submit(0, &req, &[]).expect("B is never refused"));
        }
    }

    gate.open();
    plug.wait().expect("plug completes");
    for t in tickets {
        t.wait().expect("admitted calls complete");
    }

    let snap = engine.metrics().snapshot();
    let mean = |name: &str| snap.histogram(name).map(|h| h.mean()).unwrap_or(0);
    let run = QosRun {
        offered_a: OFFERED_A,
        admitted_a: snap.counter("tenant.1.admitted"),
        shed_a: snap.counter("tenant.1.shed"),
        admitted_b: snap.counter("tenant.2.admitted"),
        shed_b: snap.counter("tenant.2.shed"),
        served_b: snap.counter("tenant.2.served"),
        engine_shed: snap.counter("engine.shed"),
        b_dwell_p99_ns: dwell_ceiling(&snap, "tenant.2.dwell_ns"),
        b_dwell_mean_ns: mean("tenant.2.dwell_ns"),
        a_dwell_mean_ns: mean("tenant.1.dwell_ns"),
    };
    assert_eq!(run.shed_a, shed_seen, "engine and generator agree on A's sheds");
    engine.shutdown();
    run
}

/// One live-rebind run's ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebindRun {
    /// Tagged non-idempotent calls offered.
    pub calls: usize,
    /// Index before which the policy swap + rebind landed.
    pub rebind_at: usize,
    /// Handler executions (the plug excluded).
    pub executions: u64,
    /// Calls whose ticket failed (must be 0).
    pub lost: u64,
    /// Executions beyond one per call (must be 0).
    pub duplicated: u64,
    /// Rebinds the engine performed.
    pub rebinds: u64,
}

/// Rebind indices swept by the report gate — first, early, middle, last.
pub const REBIND_POINTS: [usize; 4] = [0, 8, 32, 63];
/// Tagged calls per rebind run.
pub const REBIND_CALLS: usize = 64;

/// Swaps tenant A's policy and re-negotiates the connection's combination
/// before tagged call `rebind_at` of `calls`, with the worker plugged so
/// the backlog is real, then drains and counts handler executions exactly.
pub fn rebind_under_load(rebind_at: usize, calls: usize) -> RebindRun {
    let plane = ControlPlane::new();
    let handle = plane.register(TENANT_A, Policy::new().weight(2).quota(2 * REBIND_CALLS));
    let gate = Arc::new(Gate::default());
    let executions = Arc::new(AtomicU64::new(0));
    let engine = plugged_engine(&plane, &gate, &executions);

    let conn = engine
        .connect("qos")
        .client(ClientInfo::of(&presentation()))
        .tenant(TENANT_A)
        .establish()
        .expect("connects");

    let req = read_request();
    let plug = conn.submit(0, &req, &[]).expect("plug admitted");
    std::thread::sleep(Duration::from_millis(50));

    let mut tickets = Vec::with_capacity(calls);
    for i in 0..calls {
        if i == rebind_at {
            // The two halves of a live operator action: retune the
            // tenant's share, then re-negotiate the combination. Neither
            // may disturb the queued backlog.
            handle.swap(Policy::new().weight(5).quota(2 * REBIND_CALLS));
            let mut pres = presentation();
            pres.trust = Trust::LeakyUnprotected;
            conn.rebind(&pres).expect("rebind succeeds");
        }
        let tag = CallTag::for_tenant(11, i as u64, TENANT_A);
        tickets.push(conn.submit_tagged(0, &req, &[], None, Some(tag)).expect("admitted"));
    }

    gate.open();
    plug.wait().expect("plug completes");
    let mut lost = 0u64;
    for t in tickets {
        if t.wait().is_err() {
            lost += 1;
        }
    }
    // The plug ran the handler once before any tagged call.
    let executed = executions.load(Ordering::SeqCst).saturating_sub(1);
    let run = RebindRun {
        calls,
        rebind_at,
        executions: executed,
        lost,
        duplicated: executed.saturating_sub(calls as u64),
        rebinds: engine.rebind_count(),
    };
    engine.shutdown();
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noisy_neighbor_holds_the_gated_bounds() {
        let r = noisy_neighbor();
        assert_eq!(r.admitted_a as usize, QUOTA_A);
        assert_eq!(r.shed_a as usize, OFFERED_A - QUOTA_A);
        assert_eq!(r.admitted_b as usize, OFFERED_B);
        assert_eq!(r.shed_b, 0, "A's storm must never be charged to B");
        assert_eq!(r.served_b as usize, OFFERED_B);
        assert_eq!(r.engine_shed, r.shed_a);
        assert!(
            r.b_dwell_p99_ns <= DWELL_BOUND_NS,
            "B's p99 dwell {} exceeds the bound {}",
            r.b_dwell_p99_ns,
            DWELL_BOUND_NS
        );
    }

    #[test]
    fn noisy_neighbor_is_deterministic() {
        assert_eq!(noisy_neighbor(), noisy_neighbor(), "sim-time runs must agree exactly");
    }

    #[test]
    fn rebind_under_load_is_exactly_once() {
        let r = rebind_under_load(8, 32);
        assert_eq!(r.lost, 0);
        assert_eq!(r.duplicated, 0);
        assert_eq!(r.executions, 32);
        assert_eq!(r.rebinds, 1);
    }
}
