//! Engine scaling — throughput of one serving engine as clients and
//! workers sweep, with the program cache's hit rate alongside.
//!
//! The paper measures one client against one server at a time; this
//! experiment measures what the engine adds: a fixed pool of workers
//! serving many concurrent clients, all program combinations resolved
//! through the shared cache. Each client thread runs synchronous `read`
//! calls back-to-back; throughput is total completed calls over wall
//! time. Clients alternate trust levels, so every run exercises at least
//! two program combinations and the hit rate stays below 1.

use flexrpc_core::present::{InterfacePresentation, Trust};
use flexrpc_core::program::CompiledInterface;
use flexrpc_core::value::Value;
use flexrpc_engine::{ClientInfo, Engine};
use flexrpc_marshal::WireFormat;
use flexrpc_pipes::fileio_module;
use flexrpc_runtime::ClientStub;
use std::sync::Arc;

/// Client counts swept by the experiment.
pub const CLIENTS: [usize; 3] = [1, 4, 8];
/// Worker-pool sizes swept by the experiment.
pub const WORKERS: [usize; 3] = [1, 4, 8];
/// Synchronous calls each client issues per run (report binary).
pub const CALLS_PER_CLIENT: usize = 400;
/// Reply payload bytes per call.
pub const READ_SIZE: usize = 1024;
/// Seed for the deterministic client interleave schedule: every run of a
/// cell yields at the same seeded call indices, so the worker/client
/// interleave — the dominant noise source in this experiment — is the
/// same schedule run to run instead of whatever the OS happened to do.
pub const SEED: u64 = 0x5EED_C0DE;

/// One run's results.
#[derive(Debug, Clone, Copy)]
pub struct ServeRun {
    /// Completed calls per second across all clients.
    pub calls_per_sec: f64,
    /// Program-cache hit rate at the end of the run.
    pub cache_hit_rate: f64,
    /// Programs compiled (distinct combinations seen).
    pub compilations: u64,
    /// Connections served.
    pub connections: u64,
}

/// Starts an engine with `workers` workers serving an `echo` FileIO
/// service whose `read` returns `count` fresh bytes.
pub fn build_engine(workers: usize) -> Arc<Engine> {
    let engine = Engine::builder().workers(workers).queue_depth(4 * workers.max(1)).build();
    engine
        .register_service(
            "echo",
            fileio_module(),
            "FileIO",
            client_presentation(Trust::None),
            WireFormat::Cdr,
            |srv| {
                srv.on("read", |call| {
                    let count = call.u32("count").expect("count arg") as usize;
                    call.set("return", Value::Bytes(vec![0u8; count])).expect("set");
                    0
                })
                .expect("read registers");
            },
        )
        .expect("service registers");
    engine
}

fn client_presentation(trust: Trust) -> InterfacePresentation {
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let mut pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    pres.trust = trust;
    pres
}

/// Builds one connected client stub; even/odd clients use different trust,
/// so runs with ≥2 clients resolve two program combinations.
pub fn client(engine: &Arc<Engine>, index: usize) -> ClientStub {
    let trust = if index.is_multiple_of(2) { Trust::None } else { Trust::Leaky };
    let pres = client_presentation(trust);
    let conn = engine.connect("echo").client(ClientInfo::of(&pres)).establish().expect("connect");
    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let compiled = CompiledInterface::compile(&m, iface, &pres).expect("compiles");
    ClientStub::new(compiled, WireFormat::Cdr, Box::new(conn))
}

/// `splitmix64` step — the repo's stock seedable generator (no rand dep).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `calls` synchronous reads on each of `clients` pre-built stubs,
/// concurrently; returns when every client finished.
///
/// Each client yields the CPU at call indices drawn from a per-client
/// stream seeded by [`SEED`] — a fixed interleave schedule, so repeated
/// runs of a cell contend at the same points instead of wherever the OS
/// scheduler happened to preempt.
pub fn drive(stubs: Vec<ClientStub>, calls: usize) {
    let handles: Vec<_> = stubs
        .into_iter()
        .enumerate()
        .map(|(index, mut stub)| {
            std::thread::spawn(move || {
                let mut rng = SEED ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                let mut frame = stub.new_frame("read").expect("frame");
                for _ in 0..calls {
                    frame[0] = Value::U32(READ_SIZE as u32);
                    stub.call("read", &mut frame).expect("call succeeds");
                    if splitmix(&mut rng).is_multiple_of(8) {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client ok");
    }
}

/// One full (workers, clients) cell: build, drive, read the counters.
pub fn run(workers: usize, clients: usize, calls_per_client: usize) -> ServeRun {
    let engine = build_engine(workers);
    let stubs: Vec<_> = (0..clients).map(|i| client(&engine, i)).collect();
    let t0 = std::time::Instant::now();
    drive(stubs, calls_per_client);
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    assert_eq!(stats.calls_served as usize, clients * calls_per_client);
    let result = ServeRun {
        calls_per_sec: stats.calls_served as f64 / elapsed,
        cache_hit_rate: stats.cache_hit_rate(),
        compilations: engine.cache().compilations(),
        connections: stats.connections,
    };
    engine.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_completes_and_shares_programs() {
        for workers in [1, 4] {
            for clients in [1, 8] {
                let r = run(workers, clients, 20);
                assert!(r.calls_per_sec > 0.0);
                assert!(r.compilations <= 2, "at most two combinations");
                if clients > 2 {
                    assert!(
                        r.compilations < r.connections,
                        "cache must share programs across connections"
                    );
                    assert!(r.cache_hit_rate > 0.0);
                }
            }
        }
    }
}
