//! Figure 11 — same-domain RPC with one 1 KB `out` parameter: allocation
//! semantics (server-allocates / client-allocates / flexible).
//!
//! Bar groups are the endpoints' requirements: does the client want the
//! data at a particular address of its own, and does the server's data
//! already live in its own long-lived storage. Bars: the CORBA/COM fixed
//! system ("server allocates, client consumes"), the MIG-style fixed
//! system ("client allocates, server fills"), and flexible presentation.
//! Fixed systems pay hand-written glue where their one semantics mismatches
//! an endpoint; glue time is part of each bar, counted separately.

use flexrpc_core::annot::apply_pdl;
use flexrpc_core::annot::{Attr, OpAnnot, ParamAnnot, PdlFile};
use flexrpc_core::present::InterfacePresentation;
use flexrpc_core::value::Value;
use flexrpc_pipes::fileio_module;
use flexrpc_runtime::samedomain::SameDomain;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The parameter size the paper uses.
pub const PARAM_SIZE: usize = 1024;

/// The three compared systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// "Server allocates, client consumes" — CORBA/COM move semantics.
    FixedServerAlloc,
    /// "Client allocates, server fills" — MIG-style semantics.
    FixedClientAlloc,
    /// Flexible presentation: allocation matched at bind time.
    Flexible,
}

impl System {
    /// All systems, figure bar order.
    pub const ALL: [System; 3] =
        [System::FixedServerAlloc, System::FixedClientAlloc, System::Flexible];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            System::FixedServerAlloc => "fixed-server-alloc",
            System::FixedClientAlloc => "fixed-client-alloc",
            System::Flexible => "flexible",
        }
    }
}

/// One bar group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group {
    /// The client wants the data in a buffer it already owns.
    pub client_wants_own: bool,
    /// The server's data already lives in its own storage.
    pub server_has_own: bool,
}

impl Group {
    /// The figure's four groups, left to right: no constraints, server
    /// provides, client provides, both insist.
    pub const ALL: [Group; 4] = [
        Group { client_wants_own: false, server_has_own: false },
        Group { client_wants_own: false, server_has_own: true },
        Group { client_wants_own: true, server_has_own: false },
        Group { client_wants_own: true, server_has_own: true },
    ];

    /// Report label.
    pub fn label(self) -> String {
        format!(
            "client-{}/server-{}",
            if self.client_wants_own { "own-buffer" } else { "any-buffer" },
            if self.server_has_own { "stored" } else { "generates" }
        )
    }
}

fn read_pdl(attrs: Vec<Attr>) -> PdlFile {
    PdlFile {
        interface: Some("FileIO".into()),
        iface_attrs: vec![],
        types: vec![],
        ops: vec![OpAnnot {
            op: "read".into(),
            op_attrs: vec![],
            params: vec![ParamAnnot { param: "return".into(), attrs }],
        }],
    }
}

/// A ready-to-call scenario.
pub struct Runner {
    sd: SameDomain,
    frame: Vec<Value>,
    size: usize,
    system: System,
    group: Group,
    /// The buffer the client actually wants filled (its "own" buffer).
    client_buf: Vec<u8>,
    /// Glue copies performed by hand-written client adaptation code.
    pub client_glue_copies: Arc<AtomicU64>,
    /// Glue copies performed by hand-written server adaptation code.
    pub server_glue_copies: Arc<AtomicU64>,
}

impl Runner {
    /// Builds `(system, group)` with a `size`-byte out parameter.
    pub fn new(system: System, group: Group, size: usize) -> Runner {
        let m = fileio_module();
        let iface = m.interface("FileIO").expect("FileIO");
        let base = InterfacePresentation::default_for(&m, iface).expect("defaults");

        // Client presentation: under MIG semantics the client always
        // presents a buffer; under flexible it does so exactly when it has
        // one.
        let client = match system {
            System::FixedClientAlloc => {
                apply_pdl(&m, iface, &base, &read_pdl(vec![Attr::AllocCaller])).expect("applies")
            }
            System::Flexible if group.client_wants_own => {
                apply_pdl(&m, iface, &base, &read_pdl(vec![Attr::AllocCaller])).expect("applies")
            }
            _ => base.clone(),
        };
        // Server presentation: under flexible, a server whose data lives in
        // its own storage declares [dealloc(never)].
        let server = match system {
            System::Flexible if group.server_has_own => {
                apply_pdl(&m, iface, &base, &read_pdl(vec![Attr::DeallocNever])).expect("applies")
            }
            _ => base.clone(),
        };

        let mut sd = SameDomain::bind(&m, iface, &client, &server).expect("binds");
        let server_glue_copies = Arc::new(AtomicU64::new(0));
        let sg = Arc::clone(&server_glue_copies);
        let storage: Arc<[u8]> = (0..size).map(|i| (i % 251) as u8).collect::<Vec<u8>>().into();
        let has_own = group.server_has_own;
        let flexible = system == System::Flexible;
        sd.on("read", move |call| {
            match (has_own, flexible) {
                (true, true) => {
                    // Flexible: lend (or let the stub copy if it must).
                    call.provide_out("return", &storage).expect("provide");
                }
                (true, false) => {
                    // Fixed semantics force the server to re-buffer its
                    // stored data by hand: one glue copy.
                    sg.fetch_add(1, Ordering::Relaxed);
                    call.out_fill("return", |b| b.extend_from_slice(&storage)).expect("fill");
                }
                (false, _) => {
                    // Data produced on demand, straight into whatever
                    // buffer the binding provides (a bulk fill, so the
                    // measured differences are copy/alloc semantics, not
                    // generator arithmetic).
                    call.out_fill("return", |b| b.resize(size, 0xAB)).expect("fill");
                }
            }
            0
        })
        .expect("registers");

        let frame = sd.new_frame("read").expect("frame");
        Runner {
            sd,
            frame,
            size,
            system,
            group,
            client_buf: Vec::with_capacity(size),
            client_glue_copies: Arc::new(AtomicU64::new(0)),
            server_glue_copies,
        }
    }

    /// One RPC, including any client-side glue the fixed system forces.
    pub fn call(&mut self) {
        self.frame[0] = Value::U32(self.size as u32);
        // Under caller-allocates semantics the client presents a buffer.
        let caller_presents = match self.system {
            System::FixedClientAlloc => true,
            System::Flexible => self.group.client_wants_own,
            System::FixedServerAlloc => false,
        };
        // A client that genuinely wants the data at its own address has a
        // long-lived buffer to reuse; a client forced by MIG-style fixed
        // semantics to supply a buffer it never wanted allocates a fresh
        // one per call and frees it afterwards (the "cheap" allocation in
        // the cost model).
        let reusable = self.group.client_wants_own;
        if caller_presents {
            let buf = if reusable {
                std::mem::take(&mut self.client_buf)
            } else {
                Vec::with_capacity(self.size)
            };
            self.frame[1] = Value::Bytes(buf);
        } else {
            self.frame[1] = Value::Null;
        }
        let status = self.sd.call_index(0, &mut self.frame).expect("call succeeds");
        debug_assert_eq!(status, 0);

        match std::mem::take(&mut self.frame[1]) {
            Value::Bytes(b) => {
                if caller_presents && reusable {
                    // The client's buffer came back filled.
                    self.client_buf = b;
                } else if caller_presents {
                    // Forced throwaway buffer: consume and free.
                    black_box(&b);
                } else if self.group.client_wants_own {
                    // CORBA semantics donated a buffer, but the client
                    // wanted the data in its own: hand-written glue copies
                    // and frees the donation.
                    self.client_glue_copies.fetch_add(1, Ordering::Relaxed);
                    self.client_buf.clear();
                    self.client_buf.extend_from_slice(&b);
                    drop(b);
                } else {
                    // Donated buffer is fine as-is; consume it.
                    black_box(&b);
                }
            }
            Value::Shared(s) => {
                // Flexible lent the server's storage.
                debug_assert!(!self.group.client_wants_own);
                black_box(&s[..]);
            }
            other => panic!("unexpected out value {other:?}"),
        }
        black_box(&self.client_buf);
    }

    /// Stub copy counters `(copies, bytes, allocs)`.
    pub fn stub_stats(&self) -> (u64, u64, u64) {
        self.sd.stats().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_run_and_deliver_data() {
        for system in System::ALL {
            for group in Group::ALL {
                let mut r = Runner::new(system, group, 128);
                r.call();
                r.call();
                if group.client_wants_own {
                    assert_eq!(r.client_buf.len(), 128, "{system:?} {group:?}");
                    let expect = if group.server_has_own { 1 } else { 0xAB };
                    assert_eq!(r.client_buf[1], expect);
                }
            }
        }
    }

    #[test]
    fn glue_only_under_mismatched_fixed_semantics() {
        for group in Group::ALL {
            for system in System::ALL {
                let mut r = Runner::new(system, group, 128);
                r.call();
                let client_glue = r.client_glue_copies.load(Ordering::Relaxed);
                let server_glue = r.server_glue_copies.load(Ordering::Relaxed);
                if system == System::Flexible {
                    assert_eq!(
                        (client_glue, server_glue),
                        (0, 0),
                        "flexible never needs glue: {group:?}"
                    );
                }
                // Glue appears exactly where the cost model predicts.
                let expect = match system {
                    System::FixedServerAlloc => flexrpc_core::compat::out_fixed_costs(
                        flexrpc_core::compat::OutFixedSystem::ServerAllocates,
                        group.client_wants_own,
                        group.server_has_own,
                    ),
                    System::FixedClientAlloc => flexrpc_core::compat::out_fixed_costs(
                        flexrpc_core::compat::OutFixedSystem::ClientAllocates,
                        group.client_wants_own,
                        group.server_has_own,
                    ),
                    System::Flexible => flexrpc_core::compat::out_flexible_costs(
                        group.client_wants_own,
                        group.server_has_own,
                    ),
                };
                assert_eq!(
                    (client_glue as u32, server_glue as u32),
                    (expect.client_glue_copies, expect.server_glue_copies),
                    "{system:?} {group:?}"
                );
            }
        }
    }

    #[test]
    fn flexible_total_copies_never_exceed_fixed() {
        for group in Group::ALL {
            let mut totals = Vec::new();
            for system in System::ALL {
                let mut r = Runner::new(system, group, 256);
                r.call();
                let (stub, _, _) = r.stub_stats();
                let glue = r.client_glue_copies.load(Ordering::Relaxed)
                    + r.server_glue_copies.load(Ordering::Relaxed);
                totals.push(stub + glue);
            }
            let flexible = totals[2];
            assert!(
                flexible <= totals[0] && flexible <= totals[1],
                "{group:?}: flexible={flexible}, fixed={totals:?}"
            );
        }
    }
}
