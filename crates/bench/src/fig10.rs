//! Figure 10 — same-domain RPC with one 1 KB `in` parameter: copy vs
//! borrow vs flexible mutability semantics.
//!
//! Bar groups are the endpoints' *requirements*: does the client need its
//! buffer intact afterwards, and does the server modify what it receives.
//! Systems are the RPC semantics on offer: always-copy, always-borrow
//! (server copies by hand when it must modify — glue), and flexible
//! presentation (`[trashable]`/`[preserved]` negotiated at bind time).

use flexrpc_core::annot::apply_pdl;
use flexrpc_core::annot::{Attr, OpAnnot, ParamAnnot, PdlFile};
use flexrpc_core::present::InterfacePresentation;
use flexrpc_core::value::Value;
use flexrpc_pipes::fileio_module;
use flexrpc_runtime::samedomain::SameDomain;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The parameter size the paper uses.
pub const PARAM_SIZE: usize = 1024;

/// The three compared RPC systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Fixed presentation, copy (pass-by-value) semantics.
    FixedCopy,
    /// Fixed presentation, borrow semantics (server glue copies to modify).
    FixedBorrow,
    /// Flexible presentation: semantics negotiated from both sides' PDLs.
    Flexible,
}

impl System {
    /// All systems, in the figure's left-to-right bar order.
    pub const ALL: [System; 3] = [System::FixedCopy, System::FixedBorrow, System::Flexible];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            System::FixedCopy => "fixed-copy",
            System::FixedBorrow => "fixed-borrow",
            System::Flexible => "flexible",
        }
    }
}

/// One bar group: the endpoints' actual requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group {
    /// The client needs its buffer intact after the call.
    pub client_needs_buffer: bool,
    /// The server modifies the buffer in place while processing.
    pub server_modifies: bool,
}

impl Group {
    /// The figure's four groups.
    pub const ALL: [Group; 4] = [
        Group { client_needs_buffer: false, server_modifies: false },
        Group { client_needs_buffer: true, server_modifies: false },
        Group { client_needs_buffer: false, server_modifies: true },
        Group { client_needs_buffer: true, server_modifies: true },
    ];

    /// Report label.
    pub fn label(self) -> String {
        format!(
            "client-{}/server-{}",
            if self.client_needs_buffer { "keeps" } else { "discards" },
            if self.server_modifies { "modifies" } else { "reads" }
        )
    }
}

fn pdl_for(attrs: Vec<Attr>) -> PdlFile {
    PdlFile {
        interface: Some("FileIO".into()),
        iface_attrs: vec![],
        types: vec![],
        ops: vec![OpAnnot {
            op: "write".into(),
            op_attrs: vec![],
            params: vec![ParamAnnot { param: "data".into(), attrs }],
        }],
    }
}

/// A ready-to-call scenario.
pub struct Runner {
    sd: SameDomain,
    frame: Vec<Value>,
    /// Buffer-sized copies hand-written server glue performed.
    pub glue_copies: Arc<AtomicU64>,
}

impl Runner {
    /// Builds `(system, group)` with `size`-byte parameters.
    pub fn new(system: System, group: Group, size: usize) -> Runner {
        let m = fileio_module();
        let iface = m.interface("FileIO").expect("FileIO");
        let base = InterfacePresentation::default_for(&m, iface).expect("defaults");

        // Client-side PDL: under the flexible system the client declares
        // [trashable] when it does not need the buffer back; fixed systems
        // have nothing to declare.
        let client = match system {
            System::Flexible if !group.client_needs_buffer => {
                apply_pdl(&m, iface, &base, &pdl_for(vec![Attr::Trashable])).expect("applies")
            }
            _ => base.clone(),
        };
        // Server-side PDL: fixed-borrow systems *force* borrow semantics
        // (the server may never modify); the flexible server declares
        // [preserved] exactly when it will not modify.
        let server = match system {
            System::FixedBorrow => {
                apply_pdl(&m, iface, &base, &pdl_for(vec![Attr::Preserved])).expect("applies")
            }
            System::Flexible if !group.server_modifies => {
                apply_pdl(&m, iface, &base, &pdl_for(vec![Attr::Preserved])).expect("applies")
            }
            _ => base.clone(),
        };

        let mut sd = SameDomain::bind(&m, iface, &client, &server).expect("binds");
        let glue_copies = Arc::new(AtomicU64::new(0));
        let glue = Arc::clone(&glue_copies);
        let modifies = group.server_modifies;
        let fixed_borrow = system == System::FixedBorrow;
        sd.on("write", move |call| {
            if modifies {
                if fixed_borrow {
                    // Borrow semantics forbid in-place modification: the
                    // server glue makes its own copy, then works on it.
                    let mut own = call.in_bytes("data").expect("data").to_vec();
                    glue.fetch_add(1, Ordering::Relaxed);
                    process_mut(&mut own);
                } else {
                    let buf = call
                        .in_bytes_mut("data")
                        .expect("copy or trashable semantics allow modification");
                    process_mut(buf);
                }
            } else {
                process_ro(call.in_bytes("data").expect("data"));
            }
            0
        })
        .expect("registers");

        let mut frame = sd.new_frame("write").expect("frame");
        frame[0] = Value::Bytes(vec![0x5A; size]);
        Runner { sd, frame, glue_copies }
    }

    /// One RPC.
    pub fn call(&mut self) {
        let status = self.sd.call_index(1, &mut self.frame).expect("call succeeds");
        debug_assert_eq!(status, 0);
    }

    /// Stub copy counters `(copies, bytes, allocs)`.
    pub fn stub_stats(&self) -> (u64, u64, u64) {
        self.sd.stats().snapshot()
    }
}

/// The server's "processing" when it modifies in place (constant across
/// systems so only copy semantics differ).
#[inline(never)]
fn process_mut(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = b.wrapping_add(1);
    }
    black_box(buf);
}

/// The server's read-only "processing".
#[inline(never)]
fn process_ro(buf: &[u8]) {
    let mut acc = 0u64;
    for &b in buf {
        acc = acc.wrapping_add(b as u64);
    }
    black_box(acc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_run() {
        for system in System::ALL {
            for group in Group::ALL {
                let mut r = Runner::new(system, group, 256);
                r.call();
                r.call();
            }
        }
    }

    #[test]
    fn copy_schedule_matches_the_model() {
        for group in Group::ALL {
            for system in System::ALL {
                let mut r = Runner::new(system, group, 256);
                r.call();
                let (stub_copies, _, _) = r.stub_stats();
                let glue = r.glue_copies.load(Ordering::Relaxed);
                let expect = match system {
                    System::FixedCopy => flexrpc_core::compat::in_fixed_costs(
                        flexrpc_core::compat::InFixedSystem::AlwaysCopy,
                        group.server_modifies,
                    ),
                    System::FixedBorrow => flexrpc_core::compat::in_fixed_costs(
                        flexrpc_core::compat::InFixedSystem::AlwaysBorrow,
                        group.server_modifies,
                    ),
                    System::Flexible => flexrpc_core::compat::in_flexible_costs(
                        group.client_needs_buffer,
                        group.server_modifies,
                    ),
                };
                assert_eq!(
                    (stub_copies as u32, glue as u32),
                    (expect.stub_copies, expect.server_glue_copies),
                    "{system:?} {group:?}"
                );
            }
        }
    }

    #[test]
    fn client_buffer_integrity_where_promised() {
        // In every system/group where the client keeps its buffer, the
        // buffer must be intact after a modifying server ran.
        for system in System::ALL {
            let group = Group { client_needs_buffer: true, server_modifies: true };
            let mut r = Runner::new(system, group, 64);
            r.call();
            assert_eq!(
                r.frame[0].as_bytes().expect("bytes"),
                &[0x5A; 64][..],
                "{system:?}: client buffer must survive"
            );
        }
    }
}
