//! Figure 7 — pipe throughput over fbufs: standard (LRPC-like) vs
//! `[special]` (data stays in fbufs through the server), plus the
//! monolithic BSD-pipe reference bar.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexrpc_bench::fig7::{harness, run, BsdRef, FbufMode, PIPE_CAPS};

/// Bytes moved per iteration.
const TOTAL: usize = 256 * 1024;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_pipe_fbufs");
    group.throughput(Throughput::Bytes(TOTAL as u64));
    group.sample_size(20);
    for cap in PIPE_CAPS {
        for mode in [FbufMode::Standard, FbufMode::Special] {
            let mut h = harness(cap, mode);
            let id = format!("{}k-{}", cap / 1024, mode.label());
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| run(&mut h, TOTAL));
            });
        }
    }
    let mut bsd = BsdRef::new();
    group.bench_function(BenchmarkId::from_parameter("bsd-monolithic-4k"), |b| {
        b.iter(|| bsd.run(TOTAL));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
