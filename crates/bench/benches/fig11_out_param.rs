//! Figure 11 — same-domain RPC, 1 KB `out` parameter: allocation
//! semantics (server-alloc / client-alloc / flexible) across groups.
//! Each bar includes the glue work its fixed semantics forces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexrpc_bench::fig11::{Group, Runner, System, PARAM_SIZE};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_out_param");
    for g in Group::ALL {
        for system in System::ALL {
            let mut r = Runner::new(system, g, PARAM_SIZE);
            let id = format!("{}/{}", g.label(), system.label());
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| r.call());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
