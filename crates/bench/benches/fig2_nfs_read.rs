//! Figure 2 — NFS read, client processing time per stub variant.
//!
//! Measured time is the *client CPU* component of each bar; the constant
//! "network + server" component is the deterministic wire clock reported by
//! the `report` binary. The paper's shape: hand ≈ generated within a
//! presentation; the user-space-buffer presentation beats conventional.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexrpc_bench::fig2::{Fig2, CHUNK};
use flexrpc_nfs::client::ClientVariant;

/// A bench-sized file: 1 MB keeps Criterion iterations reasonable while
/// preserving the 8 KB-chunk structure (the report binary runs the full
/// 8 MB figure workload).
const FILE_LEN: usize = 1024 * 1024;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_nfs_read");
    group.throughput(Throughput::Bytes(FILE_LEN as u64));
    group.sample_size(20);
    let _ = CHUNK;
    for variant in ClientVariant::ALL {
        let mut f = Fig2::new(FILE_LEN);
        group.bench_function(BenchmarkId::from_parameter(variant.label()), |b| {
            b.iter(|| f.run(variant, FILE_LEN));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
