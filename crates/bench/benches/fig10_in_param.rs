//! Figure 10 — same-domain RPC, 1 KB `in` parameter: copy vs borrow vs
//! flexible mutability semantics across the four requirement groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexrpc_bench::fig10::{Group, Runner, System, PARAM_SIZE};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_in_param");
    for g in Group::ALL {
        for system in System::ALL {
            let mut r = Runner::new(system, g, PARAM_SIZE);
            let id = format!("{}/{}", g.label(), system.label());
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| r.call());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
