//! Ablation ladder for the pipe path, plus the size sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexrpc_bench::ablate::{fig10_pair, PipeStep, SweepCell};
use flexrpc_kernel::TrustLevel;

const TOTAL: usize = 256 * 1024;

fn pipe_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipe_ladder");
    group.throughput(Throughput::Bytes(TOTAL as u64));
    group.sample_size(20);
    for step in PipeStep::ALL {
        let mut h = step.harness(4096);
        group.bench_function(BenchmarkId::from_parameter(step.label()), |b| {
            b.iter(|| h.transfer(TOTAL, 2048).expect("transfer"));
        });
    }
    group.finish();
}

fn trust_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_trust_sweep");
    for size in [0usize, 256, 1024, 4096, 16384] {
        for (label, cl, sv) in [
            ("no-trust", TrustLevel::None, TrustLevel::None),
            ("full-trust", TrustLevel::LeakyUnprotected, TrustLevel::LeakyUnprotected),
        ] {
            let mut cell = SweepCell::new(cl, sv, size);
            group.bench_function(BenchmarkId::new(label, size), |b| b.iter(|| cell.call()));
        }
    }
    group.finish();
}

fn fig10_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fig10_sweep");
    for size in [64usize, 256, 1024, 4096, 16384] {
        let (mut fixed, mut flex) = fig10_pair(size);
        group.bench_function(BenchmarkId::new("fixed-copy", size), |b| b.iter(|| fixed.call()));
        group.bench_function(BenchmarkId::new("flexible", size), |b| b.iter(|| flex.call()));
    }
    group.finish();
}

criterion_group!(benches, pipe_ladder, trust_size_sweep, fig10_size_sweep);
criterion_main!(benches);
