//! Figure 6 — pipe throughput over kernel IPC: default vs `dealloc(never)`
//! reply presentation, 4K and 8K pipe buffers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexrpc_bench::fig6::{harness, run, ReadPresentation, IO_SIZE, PIPE_CAPS};

/// Bytes moved per iteration.
const TOTAL: usize = 256 * 1024;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_pipe_ipc");
    group.throughput(Throughput::Bytes(TOTAL as u64));
    group.sample_size(20);
    let _ = IO_SIZE;
    for cap in PIPE_CAPS {
        for mode in [ReadPresentation::Default, ReadPresentation::DeallocNever] {
            let mut h = harness(cap, mode);
            let id = format!("{}k-{}", cap / 1024, mode.label());
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| run(&mut h, TOTAL));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
