//! Engine scaling: calls/sec of one serving engine as the client count and
//! worker-pool size sweep. Complements the paper's single-pair figures
//! with the multi-client serving dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexrpc_bench::serve;

/// Calls per client per iteration — small, so Criterion's sample loop
/// stays tractable with thread spawns inside.
const CALLS: usize = 50;

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_engine");
    for workers in serve::WORKERS {
        for clients in serve::CLIENTS {
            group.throughput(Throughput::Elements((clients * CALLS) as u64));
            group.bench_function(
                BenchmarkId::new(format!("workers-{workers}"), format!("clients-{clients}")),
                |b| {
                    let engine = serve::build_engine(workers);
                    b.iter(|| {
                        let stubs: Vec<_> =
                            (0..clients).map(|i| serve::client(&engine, i)).collect();
                        serve::drive(stubs, CALLS);
                    });
                    engine.shutdown();
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
