//! Figure 12 — null RPC latency across the 3×3 trust matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexrpc_bench::fig12::Cell;
use flexrpc_kernel::TrustLevel;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_trust");
    for client in TrustLevel::ALL {
        for server in TrustLevel::ALL {
            let cell = Cell::new(client, server);
            let id = format!("client-{}/server-{}", client.label(), server.label());
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| cell.null_rpc());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
