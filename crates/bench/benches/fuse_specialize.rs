//! Specialization A/B: the fused + presized call path against the plain
//! threaded interpreter, on both measured transports, plus cache-lookup
//! scaling of the sharded program cache across reader-thread counts.
//!
//! The `report fuse` rows come from the same drivers in
//! [`flexrpc_bench::fuse`]; this bench gives them Criterion's statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexrpc_bench::fuse;
use flexrpc_core::fuse::SpecializeOptions;
use flexrpc_marshal::WireFormat;

fn bench_call_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuse_specialize");
    group.throughput(Throughput::Elements(1));
    type Build = fn(SpecializeOptions, WireFormat) -> fuse::FuseRunner;
    let cells: [(&str, Build); 2] = [
        ("same-domain", fuse::FuseRunner::same_domain),
        ("kernel-ipc", fuse::FuseRunner::kernel_ipc),
    ];
    for (transport, build) in cells {
        for (variant, opts) in
            [("fused", SpecializeOptions::default()), ("unfused", SpecializeOptions::none())]
        {
            group.bench_function(BenchmarkId::new(transport, variant), |b| {
                let mut runner = build(opts, WireFormat::Cdr);
                runner.call();
                b.iter(|| runner.call());
            });
        }
    }
    group.finish();
}

fn bench_cache_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuse_cache_lookup");
    const LOOKUPS: usize = 10_000;
    for threads in fuse::CACHE_THREADS {
        group.throughput(Throughput::Elements((threads * LOOKUPS) as u64));
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let cache = fuse::filled_cache(16);
            b.iter(|| fuse::scale_run(&cache, threads, LOOKUPS));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_call_path, bench_cache_lookup);
criterion_main!(benches);
