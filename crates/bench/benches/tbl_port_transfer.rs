//! §4.5 inline measurement — port-right transfer with and without the
//! unique-name requirement (`[nonunique]`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexrpc_bench::port::PortTransfer;
use flexrpc_kernel::NameMode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tbl_port_transfer");
    for (label, mode) in [("unique", NameMode::Unique), ("nonunique", NameMode::NonUnique)] {
        let t = PortTransfer::new(mode);
        t.transfer_once(); // Warm the name tables.
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| t.transfer_once());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
