//! `flexrpc` — flexible-presentation RPC.
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.

pub use flexrpc_codegen as codegen;
pub use flexrpc_core as core;
pub use flexrpc_engine as engine;
pub use flexrpc_fbufs as fbufs;
pub use flexrpc_idl as idl;
pub use flexrpc_kernel as kernel;
pub use flexrpc_marshal as marshal;
pub use flexrpc_net as net;
pub use flexrpc_nfs as nfs;
pub use flexrpc_pipes as pipes;
pub use flexrpc_runtime as runtime;
