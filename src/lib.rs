//! `flexrpc` — flexible-presentation RPC.
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! For everyday use, `use flexrpc::prelude::*` pulls in the common
//! surface: interface compilation, client/server bindings, the serving
//! engine, and the per-call policy types ([`CallOptions`](prelude::CallOptions),
//! [`RetryPolicy`](prelude::RetryPolicy)) with the unified
//! [`Error`]/[`ErrorKind`] taxonomy.

pub use flexrpc_clock as clock;
pub use flexrpc_cluster as cluster;
pub use flexrpc_codegen as codegen;
pub use flexrpc_control as control;
pub use flexrpc_core as core;
pub use flexrpc_engine as engine;
pub use flexrpc_fbufs as fbufs;
pub use flexrpc_idl as idl;
pub use flexrpc_kernel as kernel;
pub use flexrpc_marshal as marshal;
pub use flexrpc_net as net;
pub use flexrpc_nfs as nfs;
pub use flexrpc_pipes as pipes;
pub use flexrpc_runtime as runtime;
pub use flexrpc_stream as stream;
pub use flexrpc_trace as trace;

// The unified error taxonomy, re-exported at the crate root: every layer's
// failure folds into one `Error` with an `ErrorKind` that tells a caller
// the only thing policy code needs — whether retrying can help.
pub use flexrpc_runtime::{Error, ErrorKind};

/// The common surface in one import: `use flexrpc::prelude::*`.
///
/// Everything a typical program touches — define an interface
/// ([`corba`]/[`pdl`] + [`apply_pdl`]), compile it
/// ([`CompiledInterface`]), bind it ([`ClientStub`], [`ServerInterface`],
/// [`Loopback`]), serve it ([`Engine`]), and govern calls ([`CallOptions`],
/// [`RetryPolicy`], [`Error`], [`ErrorKind`]) on the deterministic
/// [`SimClock`].
pub mod prelude {
    pub use crate::control::{ControlPlane, Policy, PolicyHandle, TenantMetrics, WfqQueue};
    pub use crate::core::annot::apply_pdl;
    pub use crate::core::present::{InterfacePresentation, Trust};
    pub use crate::core::program::{CompiledInterface, CompiledOp};
    pub use crate::core::value::Value;
    pub use crate::engine::{BreakerStats, ClientInfo, Engine, EngineConnection};
    pub use crate::idl::{corba, pdl};
    pub use crate::marshal::WireFormat;
    pub use crate::runtime::transport::Loopback;
    pub use crate::runtime::{
        CallOptions, CallTag, ClientStub, Error, ErrorKind, ReplyCache, ReplyCacheStats,
        RetryPolicy, ServerInterface, Supervisor, SupervisorStats, TenantId,
    };
    pub use crate::stream::{CallbackChannel, CreditWindow, StreamSender};
    pub use crate::trace::{
        CallTrace, ChromeTraceSink, Counter, Histogram, JsonLinesSink, MetricsRegistry,
        MetricsSnapshot, SharedCallTrace, Stage, TimeSource, TraceSink,
    };
    pub use flexrpc_clock::{Fault, FaultInjector, SimClock};
    // The synchronization handles server construction needs (a `Loopback`
    // server lives behind `Arc<Mutex<..>>`).
    pub use parking_lot::Mutex;
    pub use std::sync::Arc;
}
