#!/usr/bin/env bash
# The full local gate: formatting, lints, and every workspace test.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check ==" >&2
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) ==" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test ==" >&2
cargo test -q --workspace

# Criterion benches must at least compile — they share drivers with the
# report binary, so a drifted API breaks here instead of at bench time.
echo "== cargo bench --no-run ==" >&2
cargo bench --no-run -q

# The specialization gate: fused programs must dispatch less and run at
# least as fast as the threaded interpreter on both measured transports.
echo "== report fuse --check ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- fuse --check

# The failure-model gate: under a reply-loss storm every retried call is
# answered from the reply cache (zero duplicate executions), and supervised
# failover recovers within its deterministic sim-time bound.
echo "== report failover --check ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- failover --check

# The observability gate: two identical sim runs export byte-identical
# trace streams, and tracing a same-domain call costs at most 5%.
echo "== report trace --check ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- trace --check

# The streaming gate: credit stalls are deterministic and hit their
# closed-form prediction, and no frame is lost or duplicated when replies
# are dropped mid-stream (at-most-once holds for [stream] and callbacks).
echo "== report stream --check ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- stream --check

# The multi-tenant QoS gate: a 10× noisy neighbor cannot move the victim
# tenant's p99 queue dwell past its weighted-fair bound (the offender's
# excess is shed against its own quota), and a live policy swap plus
# combination rebind on a loaded connection loses and duplicates nothing.
echo "== report qos --check ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- qos --check

# The shard-scaling gate: blocking throughput must not regress as workers
# grow from one to the core count (per-core shards + inline dispatch may
# not cost what they buy), and the 8-worker same-domain cell must clear
# the absolute calls/s floor recorded in the experiment.
echo "== report scale --check ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- scale --check

# The cluster gate: across the 16-seed fault-schedule matrix (1024 hosts
# against a 3-replica group sharing one reply cache) no non-idempotent
# call is lost or duplicated, p99 dwell stays under its recorded bound,
# and a seed replayed from scratch reproduces byte-identical traces.
echo "== report cluster --check ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- cluster --check

# The examples are the documented API surface; an API redesign that
# breaks them must fail here, not in a reader's terminal.
for ex in quickstart codegen_dump nfs_read pipe_throughput trust_matrix trace_failover edit_feed; do
  echo "== example: $ex ==" >&2
  cargo run -q --release --example "$ex" >/dev/null
done
