#!/usr/bin/env bash
# Chaos sweep: runs the deterministic cluster sim over N consecutive
# seeded fault schedules (beyond the fixed 16-seed CI matrix) and checks
# the exactly-once invariants on every one. On the first failing seed it
# prints the one-line replay command that reproduces the failure
# byte-for-byte, then exits nonzero.
#
# Usage: scripts/chaos.sh [N] [START]
#   N      seeds to sweep (default 64)
#   START  first seed (default 1)
#
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-64}"
START="${2:-1}"

cargo build -q --release -p flexrpc-bench --bin report

fail=0
for ((seed = START; seed < START + N; seed++)); do
  if ! cargo run -q --release -p flexrpc-bench --bin report -- \
      cluster --check --seed "$seed" >/dev/null 2>&1; then
    echo "chaos: seed $seed FAILED its invariant or replay check" >&2
    echo "reproduce with:" >&2
    echo "  cargo run --release -p flexrpc-bench --bin report -- cluster --check --seed $seed" >&2
    fail=1
    break
  fi
  echo "chaos: seed $seed ok" >&2
done

if [[ "$fail" -eq 0 ]]; then
  echo "chaos: all $N seeds from $START held exactly-once" >&2
fi
exit "$fail"
