#!/usr/bin/env bash
# Runs the report-binary experiments that back EXPERIMENTS.md and leaves
# their numbers as JSON at the repo root:
#
#   BENCH_fuse.json     — specialization A/B (fusion + presize) and the
#                         sharded program-cache scaling sweep
#   BENCH_serve.json    — the serving-engine worker × client sweep
#   BENCH_failover.json — duplicate suppression under a reply-loss storm
#                         and supervised-failover recovery latency
#   BENCH_trace.json    — per-stage call breakdown, deterministic wire
#                         time, and the tracing-overhead ratio
#   BENCH_stream.json   — edit-feed fan-out throughput (1000 [oneway]
#                         subscribers), credit-stall determinism, and
#                         at-most-once file-stream writes
#   BENCH_qos.json      — per-tenant isolation under a 10× noisy-neighbor
#                         storm and exactly-once execution across a live
#                         policy swap + combination rebind
#
# Run from anywhere inside the repo. Pass --check to also enforce the
# acceptance gates (fuse, failover, trace, stream, qos).
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=()
if [[ "${1:-}" == "--check" ]]; then
  CHECK=(--check)
fi

cargo build -q --release -p flexrpc-bench --bin report

echo "== report fuse ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- fuse --json BENCH_fuse.json "${CHECK[@]}"

echo "== report serve ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- serve --json BENCH_serve.json

echo "== report failover ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- failover --json BENCH_failover.json "${CHECK[@]}"

echo "== report trace ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- trace --json BENCH_trace.json "${CHECK[@]}"

echo "== report stream ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- stream --json BENCH_stream.json "${CHECK[@]}"

echo "== report qos ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- qos --json BENCH_qos.json "${CHECK[@]}"

# Every expected artifact must exist and be non-empty — a figure silently
# skipped (e.g. by a typo in the selection list above) fails here, loudly,
# instead of leaving EXPERIMENTS.md citing a stale file.
missing=0
for f in BENCH_fuse.json BENCH_serve.json BENCH_failover.json BENCH_trace.json \
         BENCH_stream.json BENCH_qos.json; do
  if [[ ! -s "$f" ]]; then
    echo "ERROR: expected artifact $f is missing or empty" >&2
    missing=1
  fi
done
if [[ "$missing" -ne 0 ]]; then
  exit 1
fi

echo "wrote BENCH_fuse.json, BENCH_serve.json, BENCH_failover.json, BENCH_trace.json," \
     "BENCH_stream.json, and BENCH_qos.json" >&2
