#!/usr/bin/env bash
# Runs the report-binary experiments that back EXPERIMENTS.md and leaves
# their numbers as JSON at the repo root:
#
#   BENCH_fuse.json     — specialization A/B (fusion + presize) and the
#                         sharded program-cache scaling sweep
#   BENCH_serve.json    — the serving-engine worker × client sweep
#   BENCH_failover.json — duplicate suppression under a reply-loss storm
#                         and supervised-failover recovery latency
#   BENCH_trace.json    — per-stage call breakdown, deterministic wire
#                         time, and the tracing-overhead ratio
#   BENCH_stream.json   — edit-feed fan-out throughput (1000 [oneway]
#                         subscribers), credit-stall determinism, and
#                         at-most-once file-stream writes
#   BENCH_qos.json      — per-tenant isolation under a 10× noisy-neighbor
#                         storm and exactly-once execution across a live
#                         policy swap + combination rebind
#   BENCH_scale.json    — per-core shard scaling: blocking (inline) and
#                         pipelined (stealing) throughput per worker count
#                         against the experiment's recorded floor
#   BENCH_cluster.json  — the thousand-host cluster sim: per-seed
#                         exactly-once tallies and latency percentiles
#                         across the 16-schedule fault matrix
#
# Run from anywhere inside the repo. Pass --check to also enforce the
# acceptance gates (fuse, failover, trace, stream, qos, scale, cluster).
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=()
if [[ "${1:-}" == "--check" ]]; then
  CHECK=(--check)
fi

cargo build -q --release -p flexrpc-bench --bin report

echo "== report fuse ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- fuse --json BENCH_fuse.json "${CHECK[@]}"

echo "== report serve ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- serve --json BENCH_serve.json

echo "== report failover ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- failover --json BENCH_failover.json "${CHECK[@]}"

echo "== report trace ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- trace --json BENCH_trace.json "${CHECK[@]}"

echo "== report stream ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- stream --json BENCH_stream.json "${CHECK[@]}"

echo "== report qos ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- qos --json BENCH_qos.json "${CHECK[@]}"

echo "== report scale ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- scale --json BENCH_scale.json "${CHECK[@]}"

echo "== report cluster ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- cluster --json BENCH_cluster.json "${CHECK[@]}"

# Every expected artifact must exist and be non-empty — a figure silently
# skipped (e.g. by a typo in the selection list above) fails here, loudly,
# instead of leaving EXPERIMENTS.md citing a stale file.
missing=0
for f in BENCH_fuse.json BENCH_serve.json BENCH_failover.json BENCH_trace.json \
         BENCH_stream.json BENCH_qos.json BENCH_scale.json BENCH_cluster.json; do
  if [[ ! -s "$f" ]]; then
    echo "ERROR: expected artifact $f is missing or empty" >&2
    missing=1
  fi
done
if [[ "$missing" -ne 0 ]]; then
  exit 1
fi

# Self-consistency guard: an artifact that records its own acceptance
# floor must satisfy it. This fails loudly if a BENCH_scale.json about to
# be committed regresses the monotone/floor assertion baked into its own
# rows — a stale or hand-edited artifact can't slip through a skipped
# --check run.
awk '
  /"w8-blocking-calls-per-sec"/ { gsub(/[",]/, ""); cell = $2 }
  /"floor-calls-per-sec"/       { gsub(/[",]/, ""); floor = $2 }
  END {
    if (cell == "" || floor == "") {
      print "ERROR: BENCH_scale.json is missing its gate rows" > "/dev/stderr"; exit 1
    }
    if (cell + 0 < floor + 0) {
      printf "ERROR: BENCH_scale.json w8 blocking %.0f regresses its own floor %.0f\n", \
        cell, floor > "/dev/stderr"
      exit 1
    }
  }' BENCH_scale.json

# Same guard for the cluster artifact: it records its own exactly-once
# tallies and p99 bound, so a committed BENCH_cluster.json that shows a
# lost/duplicated execution or a tail over its own bound fails here even
# if the --check run was skipped.
awk '
  /"total-lost"/       { gsub(/[",]/, ""); lost = $2; seen = 1 }
  /"total-duplicated"/ { gsub(/[",]/, ""); dup = $2 }
  /"p99-bound-ns"/     { gsub(/[",]/, ""); bound = $2 }
  /"seed[0-9]+-p99-ns"/ { gsub(/[",]/, ""); if ($2 + 0 > worst + 0) worst = $2 }
  END {
    if (!seen || bound == "") {
      print "ERROR: BENCH_cluster.json is missing its invariant rows" > "/dev/stderr"; exit 1
    }
    if (lost + 0 != 0 || dup + 0 != 0) {
      printf "ERROR: BENCH_cluster.json records %d lost / %d duplicated executions\n", \
        lost, dup > "/dev/stderr"
      exit 1
    }
    if (worst + 0 > bound + 0) {
      printf "ERROR: BENCH_cluster.json worst p99 %.0f ns exceeds its own bound %.0f ns\n", \
        worst, bound > "/dev/stderr"
      exit 1
    }
  }' BENCH_cluster.json

echo "wrote BENCH_fuse.json, BENCH_serve.json, BENCH_failover.json, BENCH_trace.json," \
     "BENCH_stream.json, BENCH_qos.json, BENCH_scale.json, and BENCH_cluster.json" >&2
