#!/usr/bin/env bash
# Runs the report-binary experiments that back EXPERIMENTS.md and leaves
# their numbers as JSON at the repo root:
#
#   BENCH_fuse.json     — specialization A/B (fusion + presize) and the
#                         sharded program-cache scaling sweep
#   BENCH_serve.json    — the serving-engine worker × client sweep
#   BENCH_failover.json — duplicate suppression under a reply-loss storm
#                         and supervised-failover recovery latency
#
# Run from anywhere inside the repo. Pass --check to also enforce the
# specialization gate (fused ≥ unfused on both transports).
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=()
if [[ "${1:-}" == "--check" ]]; then
  CHECK=(--check)
fi

cargo build -q --release -p flexrpc-bench --bin report

echo "== report fuse ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- fuse --json BENCH_fuse.json "${CHECK[@]}"

echo "== report serve ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- serve --json BENCH_serve.json

echo "== report failover ==" >&2
cargo run -q --release -p flexrpc-bench --bin report -- failover --json BENCH_failover.json "${CHECK[@]}"

echo "wrote BENCH_fuse.json, BENCH_serve.json, and BENCH_failover.json" >&2
