#!/usr/bin/env bash
# Runs the traced supervised-failover example and leaves a Chrome-loadable
# trace at target/trace.json: healthy calls on the engine primary, the
# crash, the rebind to the Sun RPC standby, and the licensed replay — all
# on deterministic sim-clock timestamps. Load the file in chrome://tracing
# or https://ui.perfetto.dev.
#
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --release --example trace_failover

if [[ ! -s target/trace.json ]]; then
  echo "ERROR: example did not write target/trace.json" >&2
  exit 1
fi
