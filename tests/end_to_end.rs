//! Whole-system integration: text in, bytes across simulated boundaries,
//! values out — spanning every crate through the facade.

use flexrpc::core::annot::apply_pdl;
use flexrpc::core::present::{InterfacePresentation, Trust};
use flexrpc::core::program::CompiledInterface;
use flexrpc::core::value::Value;
use flexrpc::kernel::{Kernel, NameMode};
use flexrpc::marshal::WireFormat;
use flexrpc::net::SimNet;
use flexrpc::nfs::client::{ClientVariant, NfsClientHarness};
use flexrpc::nfs::server::{serve_nfs, test_file};
use flexrpc::pipes::fbuf::{FbufMode, FbufPipeHarness};
use flexrpc::pipes::ipc::PipeIpcHarness;
use flexrpc::pipes::server::ReadPresentation;
use flexrpc::runtime::transport::{connect_kernel, serve_on_kernel};
use flexrpc::runtime::{ClientStub, ServerInterface};
use parking_lot::Mutex;
use std::sync::Arc;

/// The complete pipeline from IDL/PDL *text* to an RPC over the kernel:
/// parse → default presentation → annotate → compile → serve → bind → call.
#[test]
fn text_to_rpc_full_pipeline() {
    let module = flexrpc::idl::corba::parse(
        "kv",
        r#"
        interface KeyValue {
            sequence<octet> get(in string key);
            void put(in string key, in sequence<octet> value);
        };
        "#,
    )
    .expect("IDL parses");
    let iface = module.interface("KeyValue").expect("declared");
    let base = InterfacePresentation::default_for(&module, iface).expect("defaults");

    // Server keeps its values in its own storage: Figure-5 style PDL.
    let server_pdl =
        flexrpc::idl::pdl::parse("sequence<octet> [dealloc(never)] KeyValue_get(string key);")
            .expect("PDL parses");
    let server_pres = apply_pdl(&module, iface, &base, &server_pdl).expect("applies");

    let server_compiled =
        CompiledInterface::compile(&module, iface, &server_pres).expect("compiles");
    let mut srv = ServerInterface::new(server_compiled, WireFormat::Cdr);
    let store: Arc<Mutex<std::collections::HashMap<String, Vec<u8>>>> = Arc::default();
    let st = Arc::clone(&store);
    srv.on("put", move |call| {
        let key = call.str("key").expect("key").to_owned();
        let value = call.bytes("value").expect("value").to_vec();
        st.lock().insert(key, value);
        0
    })
    .expect("registers");
    let st = Arc::clone(&store);
    srv.on("get", move |call| {
        let key = call.str("key").expect("key");
        match st.lock().get(key) {
            Some(v) => {
                call.sink.put(v).expect("sink");
                0
            }
            None => 2, // ENOENT-ish.
        }
    })
    .expect("registers");

    // Serve on a kernel port; bind a default-presentation client.
    let kernel = Kernel::new();
    let ct = kernel.create_task("client", 4096).expect("task");
    let st_task = kernel.create_task("server", 4096).expect("task");
    let server = Arc::new(Mutex::new(srv));
    let port =
        serve_on_kernel(&kernel, st_task, Arc::clone(&server), Trust::None, NameMode::Unique)
            .expect("serves");
    let send = kernel.extract_send_right(st_task, port, ct).expect("right");

    let client_compiled = CompiledInterface::compile(&module, iface, &base).expect("compiles");
    let transport = connect_kernel(
        &kernel,
        ct,
        send,
        client_compiled.signature.hash(),
        Trust::Leaky,
        NameMode::Unique,
    )
    .expect("binds");
    let mut client = ClientStub::new(client_compiled, WireFormat::Cdr, Box::new(transport));

    let mut frame = client.new_frame("put").expect("frame");
    frame[0] = Value::Str("flexible".into());
    frame[1] = Value::Bytes(b"presentation".to_vec());
    client.call("put", &mut frame).expect("put");

    let mut frame = client.new_frame("get").expect("frame");
    frame[0] = Value::Str("flexible".into());
    client.call("get", &mut frame).expect("get");
    assert_eq!(frame[1].as_bytes().expect("bytes"), b"presentation");

    // A missing key surfaces through the exception path (CORBA default).
    let mut frame = client.new_frame("get").expect("frame");
    frame[0] = Value::Str("missing".into());
    assert!(matches!(client.call("get", &mut frame), Err(flexrpc::runtime::RpcError::Remote(2))));
}

/// The figure-6 pipeline preserves the byte stream and its copy schedule.
#[test]
fn pipe_over_ipc_end_to_end() {
    for mode in [
        ReadPresentation::Default,
        ReadPresentation::DeallocNever,
        ReadPresentation::DeallocNeverWrapOptimized,
    ] {
        let mut h = PipeIpcHarness::new(4096, mode);
        let (w, r) = h.transfer(128 * 1024, 2048).expect("transfer");
        assert!(w >= 64 && r >= 64, "{mode:?}");
    }
}

/// The figure-7 pipeline: fbuf transport in both presentations.
#[test]
fn pipe_over_fbufs_end_to_end() {
    for mode in [FbufMode::Standard, FbufMode::Special] {
        let mut h = FbufPipeHarness::new(8192, 4096, mode);
        h.transfer(128 * 1024, 4096);
    }
}

/// The figure-2 pipeline: all four NFS stub variants read the same bytes
/// over the simulated Ethernet.
#[test]
fn nfs_over_simnet_end_to_end() {
    let file_len = 128 * 1024;
    let net = SimNet::new();
    let ch = net.add_host("client");
    let sh = net.add_host("server");
    let store = serve_nfs(&net, sh);
    let fh = store.lock().add_file(test_file(file_len, 3));
    let mut h = NfsClientHarness::new(Arc::clone(&net), ch, sh, fh, file_len);
    for v in ClientVariant::ALL {
        h.read_file(v, file_len, 8192).expect("read");
        assert_eq!(h.user_buffer(), test_file(file_len, 3), "{v:?}");
    }
}

/// Cross-crate negative path: a client compiled against a *different*
/// interface is refused at bind time by the signature check.
#[test]
fn contract_mismatch_refused_across_the_stack() {
    let module = flexrpc::pipes::fileio_module();
    let iface = module.interface("FileIO").expect("FileIO");
    let pres = InterfacePresentation::default_for(&module, iface).expect("defaults");
    let compiled = CompiledInterface::compile(&module, iface, &pres).expect("compiles");

    let kernel = Kernel::new();
    let ct = kernel.create_task("client", 4096).expect("task");
    let st = kernel.create_task("server", 4096).expect("task");
    let server = Arc::new(Mutex::new(ServerInterface::new(compiled.clone(), WireFormat::Cdr)));
    let port = serve_on_kernel(&kernel, st, server, Trust::None, NameMode::Unique).expect("serves");
    let send = kernel.extract_send_right(st, port, ct).expect("right");

    // A different interface's signature — e.g. SysLog's.
    let other = flexrpc::core::ir::syslog_example();
    let other_iface = other.interface("SysLog").expect("SysLog");
    let other_sig =
        flexrpc::core::sig::WireSignature::of_interface(&other, other_iface).expect("signs").hash();
    assert!(connect_kernel(&kernel, ct, send, other_sig, Trust::None, NameMode::Unique).is_err());
    // The right contract binds.
    assert!(connect_kernel(
        &kernel,
        ct,
        send,
        compiled.signature.hash(),
        Trust::None,
        NameMode::Unique
    )
    .is_ok());
}

/// The specialized (fused + presized) call path, end to end over every
/// transport: loopback, kernel IPC, Sun RPC on the simulated network, and
/// the same-domain binding. Fused and unfused stubs must observe identical
/// results — specialization is a perf knob, never a semantic one.
#[test]
fn fused_specialization_end_to_end() {
    use flexrpc::core::fuse::SpecializeOptions;
    use flexrpc::core::ir::fileio_example;
    use flexrpc::net::SimNet as Net;
    use flexrpc::runtime::samedomain::SameDomain;
    use flexrpc::runtime::transport::{serve_on_net, Loopback, SunRpc};

    fn compile_fileio(m: &flexrpc::core::ir::Module, opts: SpecializeOptions) -> CompiledInterface {
        let iface = m.interface("FileIO").expect("FileIO");
        let pres = InterfacePresentation::default_for(m, iface).expect("defaults");
        CompiledInterface::compile_with(m, iface, &pres, opts).expect("compiles")
    }

    fn make_server(
        m: &flexrpc::core::ir::Module,
        opts: SpecializeOptions,
        format: WireFormat,
    ) -> Arc<Mutex<ServerInterface>> {
        let mut srv = ServerInterface::new(compile_fileio(m, opts), format);
        let stored: Arc<Mutex<Vec<u8>>> = Arc::default();
        let st = Arc::clone(&stored);
        srv.on("write", move |call| {
            *st.lock() = call.bytes("data").expect("data").to_vec();
            0
        })
        .expect("write");
        let st = Arc::clone(&stored);
        srv.on("read", move |call| {
            let n = call.u32("count").expect("count") as usize;
            let data = st.lock();
            let n = n.min(data.len());
            call.set("return", Value::Bytes(data[..n].to_vec())).expect("return");
            0
        })
        .expect("read");
        Arc::new(Mutex::new(srv))
    }

    fn roundtrip(client: &mut ClientStub) -> Vec<u8> {
        let mut frame = client.new_frame("write").expect("frame");
        frame[0] = Value::Bytes(b"specialized but identical".to_vec());
        assert_eq!(client.call("write", &mut frame).expect("write"), 0);
        let mut frame = client.new_frame("read").expect("frame");
        frame[0] = Value::U32(11);
        assert_eq!(client.call("read", &mut frame).expect("read"), 0);
        frame[1].as_bytes().expect("bytes").to_vec()
    }

    let corba = fileio_example();
    let sun = {
        let mut m = fileio_example();
        m.dialect = flexrpc::core::ir::Dialect::Sun;
        m
    };

    for opts in [SpecializeOptions::default(), SpecializeOptions::none()] {
        // 1. Same-address-space loopback, CDR.
        let mut client = ClientStub::new(
            compile_fileio(&corba, opts),
            WireFormat::Cdr,
            Box::new(Loopback::new(make_server(&corba, opts, WireFormat::Cdr))),
        );
        assert_eq!(roundtrip(&mut client), b"specialized");

        // 2. Kernel IPC, CDR.
        let kernel = Kernel::new();
        let ct = kernel.create_task("client", 1 << 16).expect("task");
        let st = kernel.create_task("server", 1 << 16).expect("task");
        let port = serve_on_kernel(
            &kernel,
            st,
            make_server(&corba, opts, WireFormat::Cdr),
            Trust::None,
            NameMode::Unique,
        )
        .expect("serves");
        let send = kernel.extract_send_right(st, port, ct).expect("right");
        let compiled = compile_fileio(&corba, opts);
        let sig = compiled.signature.hash();
        let transport =
            connect_kernel(&kernel, ct, send, sig, Trust::None, NameMode::Unique).expect("binds");
        let mut client = ClientStub::new(compiled, WireFormat::Cdr, Box::new(transport));
        assert_eq!(roundtrip(&mut client), b"specialized");

        // 3. Sun RPC over the simulated network, XDR.
        let net = Net::new();
        let ch = net.add_host("client");
        let sh = net.add_host("server");
        serve_on_net(&net, sh, make_server(&sun, opts, WireFormat::Xdr), 200001, 1)
            .expect("serves");
        let transport = SunRpc::new(Arc::clone(&net), ch, sh, 200001, 1);
        let mut client =
            ClientStub::new(compile_fileio(&sun, opts), WireFormat::Xdr, Box::new(transport));
        assert_eq!(roundtrip(&mut client), b"specialized");
    }

    // 4. The same-domain binding compiles with the fused default and runs
    // the same programs in one address space.
    let iface = corba.interface("FileIO").expect("FileIO");
    let pres = InterfacePresentation::default_for(&corba, iface).expect("defaults");
    let mut sd = SameDomain::bind(&corba, iface, &pres, &pres).expect("binds");
    let stored: Arc<Mutex<Vec<u8>>> = Arc::default();
    let st = Arc::clone(&stored);
    sd.on("write", move |call| {
        *st.lock() = call.in_bytes("data").expect("data").to_vec();
        0
    })
    .expect("write");
    let st = Arc::clone(&stored);
    sd.on("read", move |call| {
        let n = call.u32("count").expect("count") as usize;
        let data = st.lock();
        let n = n.min(data.len());
        call.set("return", Value::Bytes(data[..n].to_vec())).expect("return");
        0
    })
    .expect("read");
    let mut frame = sd.new_frame("write").expect("frame");
    frame[0] = Value::Bytes(b"specialized but identical".to_vec());
    assert_eq!(sd.call("write", &mut frame).expect("write"), 0);
    let mut frame = sd.new_frame("read").expect("frame");
    frame[0] = Value::U32(11);
    assert_eq!(sd.call("read", &mut frame).expect("read"), 0);
    assert_eq!(frame[1].as_bytes().expect("bytes"), b"specialized");
}
