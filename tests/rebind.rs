//! Live policy swap and combination rebind on a *loaded* connection.
//!
//! The tentpole's hardest promise: an operator can swap a tenant's
//! [`Policy`] and re-run bind-time negotiation on an established
//! connection — drain-and-swap the cached stub program — while
//! non-idempotent calls are in flight, and no execution is lost or
//! duplicated. The tests plug a one-worker engine so the backlog is real,
//! rebind at every interesting index of the submission sequence, and
//! count handler executions exactly. Replay suppression (PR 4's reply
//! cache) must keep working *across* the combination swap: a tag replayed
//! after the rebind is answered from the cache, not re-executed.

use flexrpc::engine::EngineError;
use flexrpc::prelude::*;
use parking_lot::Condvar;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const TENANT: TenantId = TenantId(1);
const BINDING: u64 = 7;

/// A latch the test holds closed while calls pile up behind it.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

fn counter_module() -> flexrpc::core::ir::Module {
    corba::parse(
        "counter",
        r#"
        interface Counter {
            unsigned long add(in unsigned long x);
        };
        "#,
    )
    .expect("IDL parses")
}

fn presentation(trust: Trust) -> InterfacePresentation {
    let m = counter_module();
    let iface = m.interface("Counter").expect("declared");
    let mut pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    pres.trust = trust;
    pres
}

/// An engine serving a deliberately non-idempotent counter whose first
/// handler run blocks on `gate` (the plug that keeps the lone worker busy
/// while the test builds a backlog). `executions` counts every handler
/// run — the exactly-once ledger.
fn plugged_engine(
    plane: &Arc<ControlPlane>,
    gate: &Arc<Gate>,
    executions: &Arc<AtomicU64>,
) -> Arc<Engine> {
    let engine = Engine::builder()
        .workers(1)
        .queue_depth(128)
        .at_most_once(Duration::from_secs(60))
        .control(Arc::clone(plane))
        .build();
    let (gate, executions) = (Arc::clone(gate), Arc::clone(executions));
    engine
        .register_service(
            "counter",
            counter_module(),
            "Counter",
            presentation(Trust::None),
            WireFormat::Cdr,
            move |srv| {
                let (g, ex) = (Arc::clone(&gate), Arc::clone(&executions));
                srv.on("add", move |call| {
                    if ex.fetch_add(1, Ordering::SeqCst) == 0 {
                        g.wait();
                    }
                    let x = call.u32("x").expect("x");
                    call.set("return", Value::U32(x.wrapping_add(1))).expect("return");
                    0
                })
                .expect("registers");
            },
        )
        .expect("service registers");
    engine
}

/// A CDR-marshalled `add(x)` request.
fn add_request(x: u32) -> Vec<u8> {
    let mut w = flexrpc::runtime::wire::AnyWriter::new(WireFormat::Cdr);
    w.put_u32(x);
    w.into_bytes()
}

/// Runs the headline scenario with the policy swap + rebind injected
/// before tagged call `rebind_at`: plug the worker, pipeline `calls`
/// non-idempotent tagged submissions, swap the tenant's policy and
/// rebind the connection mid-stream, then drain. Returns the total
/// handler executions observed (the plug call included).
fn rebind_at_index(rebind_at: usize, calls: usize) -> u64 {
    let plane = ControlPlane::new();
    let handle = plane.register(TENANT, Policy::new().weight(2).quota(256));
    let gate = Arc::new(Gate::default());
    let executions = Arc::new(AtomicU64::new(0));
    let engine = plugged_engine(&plane, &gate, &executions);

    let conn = engine
        .connect("counter")
        .client(ClientInfo::of(&presentation(Trust::None)))
        .tenant(TENANT)
        .establish()
        .expect("connects");
    let programs_bound = engine.stats().cache.programs;
    let first_program = conn.program();

    // The plug: owns the lone worker until the gate opens, so every later
    // submission is genuinely in flight (queued) when the rebind lands.
    let plug = conn.submit(0, &add_request(999), &[]).expect("plug admitted");
    std::thread::sleep(Duration::from_millis(50));

    let mut tickets = Vec::with_capacity(calls);
    for i in 0..calls {
        if i == rebind_at {
            // The two halves of a live operator action: retune the
            // tenant's share, then re-negotiate the combination. Neither
            // may disturb the queued backlog.
            handle.swap(Policy::new().weight(5).quota(256));
            conn.rebind(&presentation(Trust::LeakyUnprotected)).expect("rebind succeeds");
        }
        let tag = CallTag::for_tenant(BINDING, i as u64, TENANT);
        let t =
            conn.submit_tagged(0, &add_request(i as u32), &[], None, Some(tag)).expect("admitted");
        tickets.push(t);
    }
    if rebind_at >= calls {
        handle.swap(Policy::new().weight(5).quota(256));
        conn.rebind(&presentation(Trust::LeakyUnprotected)).expect("rebind succeeds");
    }

    // The swapped binding is live for *new* work: a different trust means
    // a different combination, compiled fresh into the shared cache.
    assert_eq!(engine.stats().cache.programs, programs_bound + 1, "rebind compiled anew");
    assert!(
        !Arc::ptr_eq(&first_program, &conn.program()),
        "the connection now runs the new combination's program"
    );
    assert_eq!(engine.rebind_count(), 1);
    assert_eq!(plane.rebind_count(), 1);

    gate.open();
    assert!(plug.wait().is_ok(), "the plugged call completes");
    for (i, t) in tickets.into_iter().enumerate() {
        let reply = t.wait();
        assert!(reply.is_ok(), "call {i} (rebind at {rebind_at}) lost: {reply:?}");
    }
    engine.shutdown();
    executions.load(Ordering::SeqCst)
}

/// Exactly-once across the swap, at every index: first call, mid-stream,
/// last call, and after the whole batch. Each run must execute the plug
/// plus every tagged call exactly once — zero lost, zero duplicated.
#[test]
fn live_rebind_loses_and_duplicates_nothing_at_any_index() {
    const CALLS: usize = 24;
    for rebind_at in [0, 1, CALLS / 2, CALLS - 1, CALLS] {
        let executions = rebind_at_index(rebind_at, CALLS);
        assert_eq!(
            executions,
            CALLS as u64 + 1,
            "rebind at index {rebind_at}: executions must be exactly once"
        );
    }
}

/// Replay suppression survives the combination swap: a tag executed under
/// the old binding and replayed under the new one is answered from the
/// reply cache — the handler does not run again, even though the program
/// it would run is a different compilation.
#[test]
fn replayed_tag_is_suppressed_across_the_rebind() {
    let plane = ControlPlane::new();
    plane.register(TENANT, Policy::new().quota(64));
    let gate = Arc::new(Gate::default());
    gate.open(); // no plug needed: this test is about the cache, not the queue
    let executions = Arc::new(AtomicU64::new(0));
    let engine = plugged_engine(&plane, &gate, &executions);
    let conn = engine
        .connect("counter")
        .client(ClientInfo::of(&presentation(Trust::None)))
        .tenant(TENANT)
        .establish()
        .expect("connects");

    let tag = CallTag::for_tenant(BINDING, 0, TENANT);
    let first = conn
        .submit_tagged(0, &add_request(41), &[], None, Some(tag))
        .expect("admitted")
        .wait()
        .expect("executes");
    assert_eq!(executions.load(Ordering::SeqCst), 1);

    conn.rebind(&presentation(Trust::LeakyUnprotected)).expect("rebind succeeds");

    // The failover replay: same logical tag, new combination.
    let replay = conn
        .submit_tagged(0, &add_request(41), &[], None, Some(tag))
        .expect("admitted")
        .wait()
        .expect("replayed");
    assert_eq!(executions.load(Ordering::SeqCst), 1, "the replay was a cache hit");
    assert_eq!(first.body, replay.body, "the cached reply is byte-identical");
    assert!(engine.reply_cache().expect("amo").stats().suppressions >= 1);
    engine.shutdown();
}

/// A failed rebind leaves the old binding in force: the connection keeps
/// serving on the combination it had, and nothing is charged as a rebind.
#[test]
fn failed_rebind_keeps_the_old_binding() {
    let plane = ControlPlane::new();
    let gate = Arc::new(Gate::default());
    gate.open();
    let executions = Arc::new(AtomicU64::new(0));
    let engine = plugged_engine(&plane, &gate, &executions);
    let conn = engine.connect("counter").tenant(TENANT).establish().expect("connects");
    let program = conn.program();

    // A client presentation that flips `add` to one-way cannot reconcile
    // with the server's request/reply declaration — negotiation refuses.
    let mut oneway = presentation(Trust::None);
    oneway.ops.get_mut("add").expect("op declared").call_shape =
        flexrpc::core::present::CallShape::Oneway;
    let err = conn.rebind(&oneway);
    assert!(
        matches!(err, Err(EngineError::ShapeMismatch(_))),
        "conflicting call shape must be refused: {err:?}"
    );
    assert!(Arc::ptr_eq(&program, &conn.program()), "old binding still in force");
    assert_eq!(engine.rebind_count(), 0, "a refused rebind is not counted");

    let reply = conn.submit(0, &add_request(5), &[]).expect("admitted").wait();
    assert!(reply.is_ok(), "the connection keeps serving: {reply:?}");
    engine.shutdown();
}

/// The supervisor's explicit rebind: re-runs endpoint binding on the
/// current endpoint without a failure, carrying the at-most-once session
/// and the tenant across — the operator-initiated twin of failover.
#[test]
fn supervisor_rebind_carries_session_and_tenant() {
    let plane = ControlPlane::new();
    plane.register(TENANT, Policy::new().weight(3));
    let gate = Arc::new(Gate::default());
    gate.open();
    let executions = Arc::new(AtomicU64::new(0));
    let engine = plugged_engine(&plane, &gate, &executions);

    let m = counter_module();
    let iface = m.interface("Counter").expect("declared");
    let compiled =
        CompiledInterface::compile(&m, iface, &presentation(Trust::None)).expect("compiles");
    let eng = Arc::clone(&engine);
    let compiled2 = compiled.clone();
    let mut sup = Supervisor::builder()
        .endpoint(move || {
            let conn = eng.connect("counter").tenant(TENANT).establish().map_err(Error::from)?;
            Ok(ClientStub::new(compiled2.clone(), WireFormat::Cdr, Box::new(conn)))
        })
        .connect()
        .expect("binds");
    sup.stub_mut().enable_at_most_once();
    sup.stub_mut().set_tenant(TENANT);

    let mut frame = sup.new_frame("add").expect("frame");
    frame[0] = Value::U32(10);
    sup.call_with("add", &mut frame, &CallOptions::default()).expect("serves");
    assert_eq!(frame[1].as_u32().expect("return"), 11);

    sup.rebind().expect("operator rebind succeeds");
    assert_eq!(sup.stub().tenant(), TENANT, "tenant survives the rebind");
    assert_eq!(sup.stats().rebinds, 2, "initial bind plus the live rebind");
    assert_eq!(sup.stats().disconnects, 0, "no failure forced it");

    // The session resumed, not restarted: the next call's tag continues
    // the sequence, so it executes (it is not a stale replay) and the
    // ledger advances by exactly one.
    let before = executions.load(Ordering::SeqCst);
    let mut frame = sup.new_frame("add").expect("frame");
    frame[0] = Value::U32(20);
    sup.call_with("add", &mut frame, &CallOptions::default()).expect("serves after rebind");
    assert_eq!(frame[1].as_u32().expect("return"), 21);
    assert_eq!(executions.load(Ordering::SeqCst), before + 1);
    engine.shutdown();
}
