//! Acceptance: a 1 ms deadline against a stalled server returns
//! `ErrorKind::DeadlineExceeded` — never a hang — on all four transports
//! (loopback, kernel IPC, Sun RPC, engine connection).
//!
//! "Stalled" is simulated deterministically: on the first three transports
//! a `Fault::Delay` charges 10 ms of virtual time to the call, so the
//! deadline comparison is exact; on the engine transport the handler
//! really blocks on a gate while another thread advances the engine's sim
//! clock past the deadline.

use flexrpc::clock::Fault;
use flexrpc::kernel::{Kernel, NameMode};
use flexrpc::net::{NetConfig, SimNet};
use flexrpc::prelude::*;
use flexrpc::runtime::transport::{connect_kernel, serve_on_kernel, serve_on_net, SunRpc};
use parking_lot::Condvar;
use std::time::Duration;

const STALL_NS: u64 = 10_000_000; // 10 ms of virtual time
const DEADLINE: Duration = Duration::from_millis(1);

fn echo_module() -> flexrpc::core::ir::Module {
    corba::parse(
        "echo",
        r#"
        interface Echo {
            unsigned long ping(in unsigned long x);
        };
        "#,
    )
    .expect("IDL parses")
}

fn echo_presentation(module: &flexrpc::core::ir::Module) -> InterfacePresentation {
    let iface = module.interface("Echo").expect("declared");
    InterfacePresentation::default_for(module, iface).expect("defaults")
}

fn echo_server(module: &flexrpc::core::ir::Module) -> Arc<Mutex<ServerInterface>> {
    let pres = echo_presentation(module);
    let iface = module.interface("Echo").expect("declared");
    let compiled = CompiledInterface::compile(module, iface, &pres).expect("compiles");
    let mut srv = ServerInterface::new(compiled, WireFormat::Cdr);
    srv.on("ping", |call| {
        let x = call.u32("x").expect("x");
        call.set("return", Value::U32(x + 1)).expect("return");
        0
    })
    .expect("registers");
    Arc::new(Mutex::new(srv))
}

fn echo_client(
    module: &flexrpc::core::ir::Module,
    transport: Box<dyn flexrpc::runtime::Transport>,
) -> ClientStub {
    let pres = echo_presentation(module);
    let iface = module.interface("Echo").expect("declared");
    let compiled = CompiledInterface::compile(module, iface, &pres).expect("compiles");
    ClientStub::new(compiled, WireFormat::Cdr, transport)
}

fn assert_deadline_exceeded(client: &mut ClientStub) {
    let options = CallOptions::default().deadline(DEADLINE);
    let mut frame = client.new_frame("ping").expect("frame");
    frame[0] = Value::U32(41);
    let err = client.call_with("ping", &mut frame, &options).expect_err("deadline must fire");
    assert_eq!(err.kind(), ErrorKind::DeadlineExceeded, "{err}");
}

#[test]
fn loopback_deadline_vs_stalled_server() {
    let module = echo_module();
    let server = echo_server(&module);
    let transport = Loopback::new(server);
    transport.faults().on_next_call(Fault::Delay(STALL_NS));
    let mut client = echo_client(&module, Box::new(transport));
    assert_deadline_exceeded(&mut client);

    // Control: with the stall spent, the same deadline admits the call.
    let options = CallOptions::default().deadline(DEADLINE);
    let mut frame = client.new_frame("ping").expect("frame");
    frame[0] = Value::U32(41);
    assert_eq!(client.call_with("ping", &mut frame, &options), Ok(0));
    assert_eq!(frame[1], Value::U32(42));
}

#[test]
fn kernel_ipc_deadline_vs_stalled_server() {
    let module = echo_module();
    let server = echo_server(&module);
    let kernel = Kernel::new();
    let client_task = kernel.create_task("client", 4096).expect("task");
    let server_task = kernel.create_task("server", 4096).expect("task");
    let port = serve_on_kernel(&kernel, server_task, server, Trust::None, NameMode::Unique)
        .expect("serves");
    let send = kernel.extract_send_right(server_task, port, client_task).expect("right");
    let pres = echo_presentation(&module);
    let iface = module.interface("Echo").expect("declared");
    let compiled = CompiledInterface::compile(&module, iface, &pres).expect("compiles");
    let signature = compiled.signature.hash();
    let transport =
        connect_kernel(&kernel, client_task, send, signature, Trust::None, NameMode::Unique)
            .expect("binds");
    kernel.faults().on_next_call(Fault::Delay(STALL_NS));
    let mut client = ClientStub::new(compiled, WireFormat::Cdr, Box::new(transport));
    assert_deadline_exceeded(&mut client);
}

#[test]
fn sun_rpc_deadline_vs_stalled_server() {
    let module = echo_module();
    let server = echo_server(&module);
    let net = SimNet::with_config(NetConfig::default());
    let server_host = net.add_host("server");
    let client_host = net.add_host("client");
    serve_on_net(&net, server_host, server, 99, 1).expect("serves");
    net.faults().on_next_call(Fault::Delay(STALL_NS));
    let transport = SunRpc::new(Arc::clone(&net), client_host, server_host, 99, 1);
    let mut client = echo_client(&module, Box::new(transport));
    assert_deadline_exceeded(&mut client);
}

#[test]
fn engine_connection_deadline_vs_stalled_server() {
    let module = echo_module();
    let pres = echo_presentation(&module);
    let engine = Engine::builder().workers(1).build();
    // The handler blocks on a gate — a genuinely stalled server, not a
    // virtual-time charge.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let g = Arc::clone(&gate);
    engine
        .register_service("echo", module.clone(), "Echo", pres, WireFormat::Cdr, move |srv| {
            let g = Arc::clone(&g);
            srv.on("ping", move |call| {
                let (lock, cv) = &*g;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                let x = call.u32("x").expect("x");
                call.set("return", Value::U32(x + 1)).expect("return");
                0
            })
            .expect("registers");
        })
        .expect("service registers");
    let conn = engine.connect("echo").establish().expect("connects");
    let mut client = echo_client(&module, Box::new(conn));

    // Another thread plays "time passes while the server is stuck":
    // advance the sim clock past the deadline, then release the handler.
    let clock = Arc::clone(engine.clock());
    let g = Arc::clone(&gate);
    let time_passes = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        clock.advance(Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(50));
        let (lock, cv) = &*g;
        *lock.lock() = true;
        cv.notify_all();
    });
    assert_deadline_exceeded(&mut client);
    time_passes.join().unwrap();
    engine.shutdown();
}
