//! Failure-model acceptance: crash faults, the at-most-once reply cache,
//! circuit breaking, and supervisor failover — all on deterministic sim
//! time.
//!
//! The headline scenarios the PR must pin:
//!
//! * A *non-idempotent* operation retried after an injected crash executes
//!   its handler exactly once (the engine's reply cache answers the
//!   resend).
//! * A same-domain client whose serving engine crashes completes its call
//!   by failing over to a Sun RPC standby — a rebind with renegotiated
//!   presentation, whose combination signature proves the stub program was
//!   reusable.

use flexrpc::clock::Fault;
use flexrpc::core::sig::WireSignature;
use flexrpc::net::{NetConfig, SimNet};
use flexrpc::prelude::*;
use flexrpc::runtime::transport::{serve_on_net, SunRpc};
use flexrpc::runtime::{RetryPolicy, Supervisor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn counter_module() -> flexrpc::core::ir::Module {
    corba::parse(
        "counter",
        r#"
        interface Counter {
            unsigned long add(in unsigned long x);
        };
        "#,
    )
    .expect("IDL parses")
}

fn presentation(m: &flexrpc::core::ir::Module) -> InterfacePresentation {
    let iface = m.interface("Counter").expect("declared");
    InterfacePresentation::default_for(m, iface).expect("defaults")
}

fn compiled(m: &flexrpc::core::ir::Module) -> CompiledInterface {
    let iface = m.interface("Counter").expect("declared");
    CompiledInterface::compile(m, iface, &presentation(m)).expect("compiles")
}

fn retrying() -> CallOptions {
    CallOptions::default().retry(RetryPolicy::new(3).backoff(Duration::from_millis(1)).seed(3))
}

/// Registers the (deliberately non-idempotent) counter service on an
/// engine; `executions` counts handler runs, `total` is the mutated state.
fn register_counter(engine: &Arc<Engine>, executions: Arc<AtomicU64>, total: Arc<AtomicU64>) {
    let m = counter_module();
    let pres = presentation(&m);
    engine
        .register_service("counter", m, "Counter", pres, WireFormat::Cdr, move |srv| {
            let (ex, tot) = (Arc::clone(&executions), Arc::clone(&total));
            srv.on("add", move |call| {
                ex.fetch_add(1, Ordering::SeqCst);
                let x = call.u32("x").expect("x") as u64;
                let new = tot.fetch_add(x, Ordering::SeqCst) + x;
                call.set("return", Value::U32(new as u32)).expect("return");
                0
            })
            .expect("registers");
        })
        .expect("service registers");
}

fn add(stub: &mut ClientStub, x: u32, opts: &CallOptions) -> Result<u32, Error> {
    let mut frame = stub.new_frame("add").expect("frame");
    frame[0] = Value::U32(x);
    stub.call_with("add", &mut frame, opts)?;
    Ok(frame[1].as_u32().expect("return"))
}

/// ISSUE acceptance #1: crash the connection after the engine executed a
/// non-idempotent call; the tagged retry must be answered from the
/// engine's reply cache — exactly one execution, at least one suppression.
#[test]
fn non_idempotent_retry_after_crash_executes_exactly_once() {
    let engine = Engine::builder().workers(2).at_most_once(Duration::from_secs(1)).build();
    let executions = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    register_counter(&engine, Arc::clone(&executions), Arc::clone(&total));

    let conn = engine.connect("counter").establish().expect("connects");
    let m = counter_module();
    let mut stub = ClientStub::new(compiled(&m), WireFormat::Cdr, Box::new(conn));
    stub.enable_at_most_once();

    // The reply is lost after execution: the engine runs (and caches) the
    // call, then the connection dies before the reply returns.
    engine.faults().on_next_call(Fault::Close);
    let result = add(&mut stub, 5, &retrying()).expect("retry recovered through the cache");
    assert_eq!(result, 5);
    assert_eq!(executions.load(Ordering::SeqCst), 1, "handler ran exactly once");
    assert_eq!(total.load(Ordering::SeqCst), 5, "state mutated exactly once");
    let cache = engine.reply_cache().expect("amo enabled").stats();
    assert_eq!(cache.executions, 1);
    assert!(cache.suppressions >= 1, "the resend was a cache hit");
    let stats = engine.stats();
    assert_eq!(stats.reply_cache, cache, "cache counters surface in engine stats");
    engine.shutdown();
}

/// Duplicated delivery through the engine queue under at-most-once: the
/// shadow job records, the real job replays — one execution.
#[test]
fn duplicated_engine_delivery_executes_once() {
    let engine = Engine::builder().workers(2).at_most_once(Duration::from_secs(1)).build();
    let executions = Arc::new(AtomicU64::new(0));
    register_counter(&engine, Arc::clone(&executions), Arc::new(AtomicU64::new(0)));

    let conn = engine.connect("counter").establish().expect("connects");
    let m = counter_module();
    let mut stub = ClientStub::new(compiled(&m), WireFormat::Cdr, Box::new(conn));
    stub.enable_at_most_once();

    engine.faults().on_next_call(Fault::Duplicate);
    assert_eq!(add(&mut stub, 7, &retrying()).expect("call succeeds"), 7);
    assert_eq!(executions.load(Ordering::SeqCst), 1, "duplicate suppressed by the cache");
    assert_eq!(engine.reply_cache().expect("amo").stats().suppressions, 1);
    engine.shutdown();
}

/// ISSUE acceptance #2: a same-domain client whose engine crashes fails
/// over to a Sun RPC standby, renegotiating the presentation against the
/// new endpoint. The combination signatures of the two bindings match —
/// the paper's cheap-to-compare token proving the standby could reuse the
/// primary's compiled stub program outright.
#[test]
fn samedomain_crash_fails_over_to_sunrpc_standby() {
    let m = counter_module();
    let pres = presentation(&m);

    // One sim clock for the whole world, so the supervisor's recovery
    // latency is measured coherently across the two transports.
    let clock = SimClock::new();
    let net = SimNet::with_clock(NetConfig::default(), Arc::clone(&clock));
    let client_host = net.add_host("client");
    let standby_host = net.add_host("standby");

    // Primary: a same-domain serving engine.
    let engine = Engine::builder().workers(2).clock(Arc::clone(&clock)).build();
    let executions = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    register_counter(&engine, Arc::clone(&executions), Arc::clone(&total));

    // Standby: the same contract served over Sun RPC on the simulated net,
    // sharing the primary's application state (a replicated server).
    let standby = {
        let mut srv = ServerInterface::new(compiled(&m), WireFormat::Cdr);
        let (ex, tot) = (Arc::clone(&executions), Arc::clone(&total));
        srv.on("add", move |call| {
            ex.fetch_add(1, Ordering::SeqCst);
            let x = call.u32("x").expect("x") as u64;
            let new = tot.fetch_add(x, Ordering::SeqCst) + x;
            call.set("return", Value::U32(new as u32)).expect("return");
            0
        })
        .expect("registers");
        Arc::new(Mutex::new(srv))
    };
    serve_on_net(&net, standby_host, standby, 300_001, 1).expect("standby serves");

    let eng = Arc::clone(&engine);
    let (m1, m2) = (counter_module(), counter_module());
    let (net2, c2) = (Arc::clone(&net), client_host);
    let mut sup = Supervisor::builder()
        .endpoint(move || {
            let conn = eng.connect("counter").establish().map_err(Error::from)?;
            Ok(ClientStub::new(compiled(&m1), WireFormat::Cdr, Box::new(conn)))
        })
        .endpoint(move || {
            let t = SunRpc::new(Arc::clone(&net2), c2, standby_host, 300_001, 1);
            Ok(ClientStub::new(compiled(&m2), WireFormat::Cdr, Box::new(t)))
        })
        .connect()
        .expect("primary binds");
    assert_eq!(sup.current_endpoint(), 0);

    // A healthy call on the primary.
    let mut frame = sup.new_frame("add").expect("frame");
    frame[0] = Value::U32(1);
    sup.call_with("add", &mut frame, &CallOptions::default()).expect("primary serves");
    assert_eq!(frame[1].as_u32().expect("return"), 1);

    // The engine process crashes for good; the next call must complete via
    // the standby. `add` never declared `[idempotent]`, so the replay
    // license comes from at-most-once tagging.
    sup.stub_mut().enable_at_most_once();
    engine.faults().on_next_call(Fault::Crash { restart_after_ns: None });
    let mut frame = sup.new_frame("add").expect("frame");
    frame[0] = Value::U32(2);
    sup.call_with("add", &mut frame, &CallOptions::default()).expect("failover completes");
    assert_eq!(frame[1].as_u32().expect("return"), 3, "standby sees the replicated state");
    assert_eq!(sup.current_endpoint(), 1, "now bound to the Sun RPC standby");
    assert_eq!(executions.load(Ordering::SeqCst), 2, "the crashed call never executed twice");

    let stats = sup.stats();
    assert_eq!(stats.disconnects, 1);
    assert_eq!(stats.rebinds, 2, "initial bind plus the failover rebind");
    assert_eq!(stats.replays, 1);
    assert!(stats.recovery_ns_last > 0, "wire time of the replay was charged to the clock");

    // Renegotiated presentation, same combination: the standby binding's
    // combination signature equals the primary's, so the shared program
    // cache would serve the rebind without recompiling.
    let iface = m.interface("Counter").expect("declared");
    let sig = WireSignature::of_interface(&m, iface).expect("signature");
    let fp = pres.fingerprint();
    let primary_combo = sig.combination(fp, fp);
    let standby_combo = sig.combination(pres.fingerprint(), pres.fingerprint());
    assert_eq!(primary_combo, standby_combo, "rebind reuses the compiled stub program");

    // Calls keep flowing on the adopted binding.
    let mut frame = sup.new_frame("add").expect("frame");
    frame[0] = Value::U32(4);
    sup.call_with("add", &mut frame, &CallOptions::default()).expect("standby keeps serving");
    assert_eq!(frame[1].as_u32().expect("return"), 7);
    engine.shutdown();
}

/// A crashed primary that *restarts* is retried on rebind with the same
/// tag: its still-warm reply cache suppresses the replay when the original
/// call had executed (Close), so even a crash-during-reply costs exactly
/// one execution.
#[test]
fn restarted_primary_suppresses_the_replayed_call() {
    let engine = Engine::builder().workers(2).at_most_once(Duration::from_secs(5)).build();
    let executions = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    register_counter(&engine, Arc::clone(&executions), Arc::clone(&total));

    let eng = Arc::clone(&engine);
    let mut sup = Supervisor::builder()
        .endpoint(move || {
            let conn = eng.connect("counter").establish().map_err(Error::from)?;
            Ok(ClientStub::new(compiled(&counter_module()), WireFormat::Cdr, Box::new(conn)))
        })
        .connect()
        .expect("binds");
    sup.stub_mut().enable_at_most_once();

    // The engine executes the call, then the connection closes before the
    // reply; the stub has no retry policy, so the disconnect reaches the
    // supervisor, which rebinds (to the same, still-running engine) and
    // replays with the original tag.
    engine.faults().on_next_call(Fault::Close);
    let mut frame = sup.new_frame("add").expect("frame");
    frame[0] = Value::U32(9);
    sup.call_with("add", &mut frame, &CallOptions::default()).expect("replay recovers");
    assert_eq!(frame[1].as_u32().expect("return"), 9);
    assert_eq!(executions.load(Ordering::SeqCst), 1, "the replay was a cache hit");
    assert_eq!(engine.reply_cache().expect("amo").stats().suppressions, 1);
    engine.shutdown();
}

/// Circuit breaker through the engine: consecutive dispatch failures trip
/// it, tripped admission reads as a disconnect (so supervised clients fail
/// over), and after the sim-time cooldown one probe closes it again.
#[test]
fn breaker_trips_probes_and_recovers_on_sim_time() {
    let engine = Engine::builder()
        .workers(1)
        .policy(Policy::new().breaker(3, Duration::from_millis(1)))
        .build();
    let executions = Arc::new(AtomicU64::new(0));
    register_counter(&engine, Arc::clone(&executions), Arc::new(AtomicU64::new(0)));
    let conn = engine.connect("counter").establish().expect("connects");

    // Three garbage requests: each dispatch fails, tripping the breaker.
    for _ in 0..3 {
        let err = conn.submit(0, &[0xFF], &[]).expect("admitted").wait();
        assert!(err.is_err(), "garbage cannot dispatch");
    }
    let stats = engine.stats();
    assert_eq!(stats.breaker_trips, 1, "three consecutive failures tripped");
    assert!(stats.breaker_open);

    // While open, admission is refused with a disconnect-class error.
    let m = counter_module();
    let conn2 = engine.connect("counter").establish().expect("combination still cached");
    let mut stub = ClientStub::new(compiled(&m), WireFormat::Cdr, Box::new(conn2));
    let err = add(&mut stub, 1, &CallOptions::default()).expect_err("refused while open");
    assert_eq!(err.kind(), ErrorKind::Disconnected, "{err}");
    assert_eq!(executions.load(Ordering::SeqCst), 0, "nothing reached a handler while open");

    // Cooldown passes on the sim clock; the next call is the probe, it
    // succeeds, and the breaker closes.
    engine.clock().advance_ns(2_000_000);
    assert_eq!(add(&mut stub, 2, &CallOptions::default()).expect("probe succeeds"), 2);
    let stats = engine.stats();
    assert_eq!(stats.breaker_probes, 1);
    assert_eq!(stats.breaker_recoveries, 1);
    assert!(!stats.breaker_open, "recovered");
    assert_eq!(add(&mut stub, 3, &CallOptions::default()).expect("healthy again"), 5);
    engine.shutdown();
}

/// Satellite (a): both Sun RPC paths — the single-call transport and the
/// pipelined record stream — consult the *same* per-net fault injector,
/// exactly once per transmission, and an induced duplicate runs the
/// handler for every delivered copy (at-least-once without a cache).
#[test]
fn both_sunrpc_paths_consult_one_injector() {
    let m = counter_module();
    let pres = presentation(&m);
    let net = SimNet::new();
    let client_host = net.add_host("client");
    let single_host = net.add_host("single");
    let pipe_host = net.add_host("pipelined");
    let executions = Arc::new(AtomicU64::new(0));

    // Path 1: plain serve_on_net + SunRpc transport.
    let server = {
        let mut srv = ServerInterface::new(compiled(&m), WireFormat::Cdr);
        let ex = Arc::clone(&executions);
        srv.on("add", move |call| {
            ex.fetch_add(1, Ordering::SeqCst);
            let x = call.u32("x").expect("x");
            call.set("return", Value::U32(x)).expect("return");
            0
        })
        .expect("registers");
        Arc::new(Mutex::new(srv))
    };
    serve_on_net(&net, single_host, server, 400_001, 1).expect("serves");

    let t = SunRpc::new(Arc::clone(&net), client_host, single_host, 400_001, 1);
    let mut stub = ClientStub::new(compiled(&m), WireFormat::Cdr, Box::new(t));
    net.faults().on_next_call(Fault::Duplicate);
    let seen_before = net.faults().calls_seen();
    let mut frame = stub.new_frame("add").expect("frame");
    frame[0] = Value::U32(1);
    stub.call("add", &mut frame).expect("call survives duplication");
    assert_eq!(net.faults().calls_seen() - seen_before, 1, "one consult per transmission");
    assert_eq!(executions.load(Ordering::SeqCst), 2, "both delivered copies executed");

    // Path 2: engine acceptor + pipelined record stream. The whole batch
    // is one transmission: one injector consult, every record in the
    // duplicated stream re-executed.
    let engine = Engine::builder().workers(2).clock(Arc::clone(net.clock())).build();
    let pipe_executions = Arc::new(AtomicU64::new(0));
    {
        let ex = Arc::clone(&pipe_executions);
        engine
            .register_service(
                "counter",
                counter_module(),
                "Counter",
                pres.clone(),
                WireFormat::Cdr,
                move |srv| {
                    let ex = Arc::clone(&ex);
                    srv.on("add", move |call| {
                        ex.fetch_add(1, Ordering::SeqCst);
                        let x = call.u32("x").expect("x");
                        call.set("return", Value::U32(x)).expect("return");
                        0
                    })
                    .expect("registers");
                },
            )
            .expect("service registers");
    }
    flexrpc::engine::expose_on_net(
        &engine,
        &net,
        pipe_host,
        "counter",
        400_002,
        1,
        ClientInfo::of(&pres),
    )
    .expect("exposes");

    let mut w = flexrpc::runtime::wire::AnyWriter::new(WireFormat::Cdr);
    w.put_u32(2);
    let args = w.into_bytes();
    let mut pipe =
        flexrpc::engine::SunRpcPipeline::new(Arc::clone(&net), client_host, pipe_host, 400_002, 1);
    pipe.submit(0, &args);
    pipe.submit(0, &args);
    net.faults().on_next_call(Fault::Duplicate);
    let seen_before = net.faults().calls_seen();
    let replies = pipe.flush().expect("pipelined flush survives duplication");
    assert_eq!(replies.len(), 2);
    assert_eq!(net.faults().calls_seen() - seen_before, 1, "one consult for the whole batch");
    assert_eq!(
        pipe_executions.load(Ordering::SeqCst),
        4,
        "both records of the duplicated stream executed"
    );
    engine.shutdown();
}

/// Runs the cross-server duplicate-window scenario: replica-1 executes a
/// non-idempotent call and loses the reply stream (`Close`), the
/// supervisor fails over to replica-2 and replays with the original tag.
/// Returns (handler executions, mutated total, replayed return value).
fn lost_reply_fails_over_to_second_replica(share_cache: bool) -> (u64, u64, u32) {
    let m = counter_module();
    let pres = presentation(&m);
    let net = SimNet::new();
    let client_host = net.add_host("client");
    let r1 = net.add_host("replica-1");
    let r2 = net.add_host("replica-2");

    // Both replicas apply ops to the same replicated state machine.
    let executions = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let shared = flexrpc::runtime::ReplyCache::new(Arc::clone(net.clock()), Duration::from_secs(5));
    let mut engines = Vec::new();
    for host in [r1, r2] {
        let builder = Engine::builder().workers(1).clock(Arc::clone(net.clock()));
        let builder = if share_cache {
            builder.shared_reply_cache(Arc::clone(&shared))
        } else {
            builder.at_most_once(Duration::from_secs(5))
        };
        let engine = builder.build();
        register_counter(&engine, Arc::clone(&executions), Arc::clone(&total));
        flexrpc::engine::expose_on_net(
            &engine,
            &net,
            host,
            "counter",
            400_777,
            1,
            ClientInfo::of(&pres),
        )
        .expect("exposes");
        engines.push(engine);
    }

    let endpoint = |host| {
        let net = Arc::clone(&net);
        move || {
            let t = SunRpc::new(Arc::clone(&net), client_host, host, 400_777, 1);
            Ok(ClientStub::new(compiled(&counter_module()), WireFormat::Cdr, Box::new(t)))
        }
    };
    let mut sup = Supervisor::builder()
        .endpoint(endpoint(r1))
        .endpoint(endpoint(r2))
        .connect()
        .expect("binds");
    sup.stub_mut().enable_at_most_once();

    // replica-1 executes (and its cache records the tag), then the stream
    // closes before the reply: the supervisor sees a disconnect and
    // replays the same tag against replica-2.
    net.faults().on_next_call(Fault::Close);
    let mut frame = sup.new_frame("add").expect("frame");
    frame[0] = Value::U32(9);
    sup.call_with("add", &mut frame, &CallOptions::default()).expect("failover recovers");
    assert_eq!(sup.current_endpoint(), 1, "bound to replica-2 after the failover");
    let value = frame[1].as_u32().expect("return");
    for engine in engines {
        engine.shutdown();
    }
    (executions.load(Ordering::SeqCst), total.load(Ordering::SeqCst), value)
}

/// The window itself, pinned: with *per-server* reply caches, a reply
/// lost after execution plus failover to a different replica re-executes
/// the non-idempotent call — at-most-once state that lives on one server
/// cannot suppress a replay arriving at another.
#[test]
fn per_server_caches_leave_the_cross_server_duplicate_window_open() {
    let (executions, total, _) = lost_reply_fails_over_to_second_replica(false);
    assert_eq!(executions, 2, "the replay re-executed on the second replica");
    assert_eq!(total, 18, "the non-idempotent mutation was applied twice");
}

/// Satellite regression: the same scenario with the engines built as a
/// group around one [`flexrpc::runtime::ReplyCache`]
/// (`EngineBuilder::shared_reply_cache`) suppresses the replay — the
/// documented cross-server duplicate window is closed.
#[test]
fn shared_group_cache_closes_the_cross_server_duplicate_window() {
    let (executions, total, value) = lost_reply_fails_over_to_second_replica(true);
    assert_eq!(executions, 1, "replica-2 answered the replay from the group cache");
    assert_eq!(total, 9, "the mutation was applied exactly once");
    assert_eq!(value, 9, "the cached reply is the one the lost stream carried");
}
