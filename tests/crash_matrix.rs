//! Crash matrix: the server dies at every call index, on every transport.
//!
//! Property: against a peer that crashes (and stays down) before call `k`
//! of a sequence, the client observes — for every transport the workspace
//! ships — either the correct reply (calls before the crash) or a *typed*
//! failure whose kind is `Disconnected` or `DeadlineExceeded`. Never a
//! hang, never a panic, never a torn reply. After an operator restart
//! (`FaultInjector::restore`) the same binding serves again.

use flexrpc::clock::Fault;
use flexrpc::kernel::{Kernel, NameMode};
use flexrpc::net::SimNet;
use flexrpc::prelude::*;
use flexrpc::runtime::transport::{connect_kernel, serve_on_kernel, serve_on_net, SunRpc};
use proptest::prelude::*;

const TRANSPORTS: &[&str] = &["loopback", "kernel", "sunrpc", "engine"];

fn echo_module() -> flexrpc::core::ir::Module {
    corba::parse(
        "echo",
        r#"
        interface Echo {
            unsigned long ping(in unsigned long x);
        };
        "#,
    )
    .expect("IDL parses")
}

fn compiled() -> CompiledInterface {
    let m = echo_module();
    let iface = m.interface("Echo").expect("declared");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    CompiledInterface::compile(&m, iface, &pres).expect("compiles")
}

fn echo_server() -> Arc<Mutex<ServerInterface>> {
    let mut srv = ServerInterface::new(compiled(), WireFormat::Cdr);
    srv.on("ping", |call| {
        let x = call.u32("x").expect("x");
        call.set("return", Value::U32(x.wrapping_add(1))).expect("return");
        0
    })
    .expect("registers");
    Arc::new(Mutex::new(srv))
}

/// One client binding plus handles to kill and revive its peer. The
/// `_keep` box pins whatever owns the fault injector (kernel, net,
/// engine) for the stub's lifetime.
struct World {
    stub: ClientStub,
    arm: Box<dyn Fn(Fault)>,
    restore: Box<dyn Fn()>,
}

fn loopback_world() -> World {
    let transport = flexrpc::runtime::transport::Loopback::new(echo_server());
    let faults = Arc::clone(transport.faults());
    let stub = ClientStub::new(compiled(), WireFormat::Cdr, Box::new(transport));
    let (f1, f2) = (Arc::clone(&faults), faults);
    World {
        stub,
        arm: Box::new(move |f| f1.on_next_call(f)),
        restore: Box::new(move || f2.restore()),
    }
}

fn kernel_world() -> World {
    let k = Kernel::new();
    let client_task = k.create_task("client", 4096).expect("task");
    let server_task = k.create_task("server", 4096).expect("task");
    let server = echo_server();
    let sig = server.lock().compiled().signature.hash();
    let port =
        serve_on_kernel(&k, server_task, server, Trust::None, NameMode::Unique).expect("serves");
    let send = k.extract_send_right(server_task, port, client_task).expect("send right");
    let transport =
        connect_kernel(&k, client_task, send, sig, Trust::None, NameMode::Unique).expect("binds");
    let stub = ClientStub::new(compiled(), WireFormat::Cdr, Box::new(transport));
    let (k1, k2) = (Arc::clone(&k), k);
    World {
        stub,
        arm: Box::new(move |f| k1.faults().on_next_call(f)),
        restore: Box::new(move || k2.faults().restore()),
    }
}

fn sunrpc_world() -> World {
    let net = SimNet::new();
    let ch = net.add_host("client");
    let sh = net.add_host("server");
    serve_on_net(&net, sh, echo_server(), 500_001, 1).expect("serves");
    let transport = SunRpc::new(Arc::clone(&net), ch, sh, 500_001, 1);
    let stub = ClientStub::new(compiled(), WireFormat::Cdr, Box::new(transport));
    let (n1, n2) = (Arc::clone(&net), net);
    World {
        stub,
        arm: Box::new(move |f| n1.faults().on_next_call(f)),
        restore: Box::new(move || n2.faults().restore()),
    }
}

fn engine_world() -> World {
    let engine = Engine::builder().workers(2).build();
    let m = echo_module();
    let iface = m.interface("Echo").expect("declared");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    engine
        .register_service("echo", m, "Echo", pres, WireFormat::Cdr, |srv| {
            srv.on("ping", |call| {
                let x = call.u32("x").expect("x");
                call.set("return", Value::U32(x.wrapping_add(1))).expect("return");
                0
            })
            .expect("registers");
        })
        .expect("service registers");
    let conn = engine.connect("echo").establish().expect("connects");
    let stub = ClientStub::new(compiled(), WireFormat::Cdr, Box::new(conn));
    let (e1, e2) = (Arc::clone(&engine), engine);
    World {
        stub,
        arm: Box::new(move |f| e1.faults().on_next_call(f)),
        restore: Box::new(move || e2.faults().restore()),
    }
}

fn world_for(name: &str) -> World {
    match name {
        "loopback" => loopback_world(),
        "kernel" => kernel_world(),
        "sunrpc" => sunrpc_world(),
        "engine" => engine_world(),
        other => unreachable!("unknown transport {other}"),
    }
}

fn ping(stub: &mut ClientStub, x: u32) -> Result<u32, Error> {
    let mut frame = stub.new_frame("ping").expect("frame");
    frame[0] = Value::U32(x);
    stub.call_with("ping", &mut frame, &CallOptions::default())?;
    Ok(frame[1].as_u32().expect("return"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash the peer before call index `crash_at` of a 6-call sequence:
    /// every earlier call echoes correctly, every call during the outage
    /// fails with a typed Disconnected (or DeadlineExceeded) — and after
    /// `restore()` the *same* binding echoes again.
    #[test]
    fn crash_at_every_index_is_typed_on_every_transport(
        transport_idx in 0usize..4,
        crash_at in 0usize..5,
    ) {
        let name = TRANSPORTS[transport_idx];
        let mut w = world_for(name);

        for i in 0..crash_at {
            let x = i as u32 * 10;
            let got = ping(&mut w.stub, x);
            prop_assert_eq!(got.expect("pre-crash call succeeds"), x + 1,
                "wrong echo before the crash on {}", name);
        }

        (w.arm)(Fault::Crash { restart_after_ns: None });
        // The crashed call and a follow-up during the outage: both must
        // fail *typed* — no hang, no panic, no stale bytes decoded as a
        // reply.
        for _ in 0..2 {
            match ping(&mut w.stub, 77) {
                Ok(v) => prop_assert!(false, "call during outage returned Ok({v}) on {}", name),
                Err(e) => prop_assert!(
                    matches!(e.kind(), ErrorKind::Disconnected | ErrorKind::DeadlineExceeded),
                    "untyped failure during outage on {}: kind {:?} ({})", name, e.kind(), e
                ),
            }
        }

        // Operator restart: the binding itself was never torn down, so it
        // serves again without rebinding.
        (w.restore)();
        prop_assert_eq!(ping(&mut w.stub, 1000).expect("post-restore call succeeds"), 1001,
            "wrong echo after restore on {}", name);
    }
}

/// The deterministic corners the shim's RNG sweep might miss: crash on the
/// very first call, on every transport.
#[test]
fn first_call_crash_is_typed_everywhere() {
    for name in TRANSPORTS {
        let mut w = world_for(name);
        (w.arm)(Fault::Crash { restart_after_ns: None });
        let err = ping(&mut w.stub, 3).expect_err("first call crashed");
        assert_eq!(err.kind(), ErrorKind::Disconnected, "on {name}: {err}");
        (w.restore)();
        assert_eq!(ping(&mut w.stub, 3).expect("restored"), 4, "on {name}");
    }
}
