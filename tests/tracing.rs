//! Deterministic tracing and the unified metrics plane, end to end.
//!
//! Pins the tentpole observability guarantees: (1) two identical
//! sim-clock runs produce **byte-identical** exported trace streams —
//! observability is part of the deterministic replay story, not a source
//! of nondeterminism; (2) the engine's trace covers the whole call path
//! (bind, queue dwell, dispatch) while the client stub covers its side
//! (marshal, transport, unmarshal); (3) the metrics registry reads the
//! very same cells the legacy stats accessors read, so the two views can
//! never disagree.

use flexrpc::core::ir::{fileio_example, Dialect};
use flexrpc::core::present::InterfacePresentation;
use flexrpc::core::program::CompiledInterface;
use flexrpc::core::value::Value;
use flexrpc::engine::{ClientInfo, Engine};
use flexrpc::marshal::WireFormat;
use flexrpc::net::SimNet;
use flexrpc::runtime::transport::{serve_on_net, SunRpc};
use flexrpc::runtime::{CallOptions, ClientStub, ServerInterface};
use flexrpc::trace::{ChromeTraceSink, JsonLinesSink, Stage};
use parking_lot::Mutex;
use std::sync::Arc;

fn traced_roundtrips(client: &mut ClientStub, options: &CallOptions, calls: usize) {
    for i in 0..calls {
        let mut wf = client.new_frame("write").expect("frame");
        wf[0] = Value::Bytes(vec![i as u8; 64 + i]);
        assert_eq!(client.call_with("write", &mut wf, options).expect("write"), 0);
        let mut rf = client.new_frame("read").expect("frame");
        rf[0] = Value::U32(64);
        assert_eq!(client.call_with("read", &mut rf, options).expect("read"), 0);
    }
}

fn register_fileio(srv: &mut ServerInterface) {
    let stored: Arc<Mutex<Vec<u8>>> = Arc::default();
    let st = Arc::clone(&stored);
    srv.on("write", move |call| {
        *st.lock() = call.bytes("data").expect("data").to_vec();
        0
    })
    .expect("write");
    srv.on("read", move |call| {
        let n = call.u32("count").expect("count") as usize;
        let data = stored.lock();
        let n = n.min(data.len());
        call.set("return", Value::Bytes(data[..n].to_vec())).expect("return");
        0
    })
    .expect("read");
}

/// One full traced Sun RPC run on a fresh net and clock; returns both
/// exported trace streams.
fn traced_sun_run() -> (String, String) {
    let mut m = fileio_example();
    m.dialect = Dialect::Sun;
    let iface = m.interface("FileIO").expect("FileIO");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    let compiled = CompiledInterface::compile(&m, iface, &pres).expect("compiles");

    let net = SimNet::new();
    let ch = net.add_host("client");
    let sh = net.add_host("server");
    let mut srv = ServerInterface::new_shared(Arc::new(compiled.clone()), WireFormat::Xdr);
    register_fileio(&mut srv);
    serve_on_net(&net, sh, Arc::new(Mutex::new(srv)), 200_001, 1).expect("serves");

    let transport = SunRpc::new(Arc::clone(&net), ch, sh, 200_001, 1);
    let mut client = ClientStub::new(compiled, WireFormat::Xdr, Box::new(transport));
    let options = CallOptions::default().traced();
    traced_roundtrips(&mut client, &options, 8);

    let trace = client.trace().expect("tracer installed");
    let mut lines = JsonLinesSink::new();
    trace.export(1, &mut lines);
    let mut chrome = ChromeTraceSink::new();
    trace.export(1, &mut chrome);
    (lines.into_string(), chrome.into_string())
}

#[test]
fn traced_sun_rpc_runs_are_byte_identical() {
    let (lines_a, chrome_a) = traced_sun_run();
    let (lines_b, chrome_b) = traced_sun_run();
    assert_eq!(lines_a, lines_b, "JSON-lines export is deterministic");
    assert_eq!(chrome_a, chrome_b, "Chrome trace export is deterministic");

    // The streams are non-trivial: 16 calls × (marshal, transport,
    // unmarshal), and the network charged real sim time to transport.
    assert_eq!(lines_a.lines().count(), 16 * 3, "three spans per call");
    let transport: Vec<&str> =
        lines_a.lines().filter(|l| l.contains("\"stage\":\"transport\"")).collect();
    assert_eq!(transport.len(), 16);
    // Marshal/unmarshal charge no sim time (pure CPU), but every wire
    // crossing does, so the timestamps genuinely advance run-long.
    for line in &transport {
        assert!(!line.contains("\"dur_ns\":0,"), "transport span has sim duration: {line}");
    }
    assert!(chrome_a.starts_with("[\n") && chrome_a.ends_with("\n]\n"), "chrome JSON array");
    assert!(chrome_a.contains("\"ph\":\"X\""), "complete events");
}

#[test]
fn engine_trace_covers_bind_dwell_dispatch_and_metrics_agree() {
    let engine = Engine::builder().workers(2).queue_depth(16).build();
    let m = fileio_example();
    let iface = m.interface("FileIO").expect("FileIO");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    engine
        .register_service("fileio", m.clone(), "FileIO", pres.clone(), WireFormat::Cdr, |srv| {
            register_fileio(srv)
        })
        .expect("registers");

    let conn = engine
        .connect("fileio")
        .client(ClientInfo::of(&pres))
        .options(CallOptions::default().traced())
        .establish()
        .expect("connects");
    let server_trace = conn.trace().expect("traced connection").clone();
    let compiled = conn.program();
    let mut client = ClientStub::new_shared(compiled, WireFormat::Cdr, Box::new(conn));
    let options = CallOptions::default().traced();
    traced_roundtrips(&mut client, &options, 5);

    // The engine-side trace saw the bind (which compiled the combination)
    // and, per call, the queue dwell and dispatch.
    let stages: Vec<Stage> = server_trace.snapshot().iter().map(|ev| ev.stage).collect();
    assert!(stages.contains(&Stage::Bind), "bind span recorded");
    assert!(stages.contains(&Stage::Specialize), "first bind compiled (specialized)");
    assert_eq!(stages.iter().filter(|s| **s == Stage::Enqueue).count(), 10, "dwell per call");
    assert_eq!(stages.iter().filter(|s| **s == Stage::Dispatch).count(), 10);
    // The client-side trace saw its three stages per call.
    let totals = client.trace().expect("client tracer").ring().total();
    assert_eq!(totals, 10 * 3, "marshal, transport, unmarshal per call");

    // The registry view and the legacy stats view read the same cells.
    let stats = engine.stats();
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.counter("engine.calls_served"), stats.calls_served);
    assert!(stats.calls_served >= 10);
    assert_eq!(snap.counter("engine.connections"), stats.connections);
    assert_eq!(snap.counter("cache.miss"), stats.cache.misses);
    assert_eq!(snap.counter("cache.hit"), stats.cache.hits);
    let dwell = snap.histogram("engine.dwell_ns").expect("dwell histogram registered");
    assert_eq!(dwell.count, stats.calls_served, "one dwell observation per started job");
    let json = snap.to_json();
    for name in ["engine.calls_served", "engine.shed", "cache.hit", "breaker", "engine.dwell_ns"] {
        if name == "breaker" {
            continue; // No breaker configured on this engine.
        }
        assert!(json.contains(&format!("\"{name}\"")), "{name} exported: {json}");
    }
    engine.shutdown();
}

/// A supervised failover leaves a complete trace of the recovery episode
/// (rebind, licensed replay, the failover envelope), and the supervisor's
/// counters adopt into the same registry as everything else.
#[test]
fn supervisor_failover_is_traced_and_registered() {
    use flexrpc::clock::Fault;
    use flexrpc::runtime::Supervisor;
    use flexrpc::trace::{MetricsRegistry, SharedCallTrace};
    use std::time::Duration;

    let engine =
        Engine::builder().workers(2).at_most_once(Duration::from_secs(5)).queue_depth(16).build();
    let m = fileio_example();
    let iface = m.interface("FileIO").expect("FileIO");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    engine
        .register_service("fileio", m.clone(), "FileIO", pres, WireFormat::Cdr, register_fileio)
        .expect("registers");

    let eng = Arc::clone(&engine);
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    let compiled = CompiledInterface::compile(&m, iface, &pres).expect("compiles");
    let mut sup = Supervisor::builder()
        .endpoint(move || {
            let conn = eng.connect("fileio").establish().map_err(flexrpc::Error::from)?;
            Ok(ClientStub::new(compiled.clone(), WireFormat::Cdr, Box::new(conn)))
        })
        .connect()
        .expect("binds");
    sup.stub_mut().enable_at_most_once();
    sup.set_tracer(SharedCallTrace::sim(256, Arc::clone(engine.clock())));
    let registry = MetricsRegistry::new();
    sup.register_metrics(&registry);

    // The engine executes the write, then the connection closes before the
    // reply; the supervisor rebinds and replays under the original tag.
    engine.faults().on_next_call(Fault::Close);
    let mut wf = sup.new_frame("write").expect("frame");
    wf[0] = Value::Bytes(vec![9u8; 32]);
    sup.call_with("write", &mut wf, &CallOptions::default()).expect("replay recovers");

    let stages: Vec<Stage> =
        sup.tracer().expect("tracer").snapshot().iter().map(|ev| ev.stage).collect();
    for want in [Stage::Bind, Stage::Replay, Stage::Failover] {
        assert!(stages.contains(&want), "failover episode recorded {want:?}: {stages:?}");
    }
    let stats = sup.stats();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("supervisor.disconnect"), stats.disconnects);
    assert_eq!(snap.counter("supervisor.replay"), stats.replays);
    assert_eq!(stats.replays, 1);
    assert_eq!(snap.counter("supervisor.rebind"), stats.rebinds);
    assert_eq!(stats.rebinds, 2, "initial bind plus the failover rebind");
    engine.shutdown();
}

/// A kernel's and a net's counters adopt into the same registry as the
/// engine's, giving one JSON document for the whole system.
#[test]
fn kernel_and_net_counters_join_the_registry() {
    use flexrpc::kernel::Kernel;
    use flexrpc::trace::MetricsRegistry;

    let registry = MetricsRegistry::new();
    let kernel = Kernel::new();
    kernel.stats().register_metrics(&registry);
    let net = SimNet::new();
    net.stats().register_metrics(&registry);

    let a = net.add_host("a");
    let b = net.add_host("b");
    net.register_service(b, |req| Ok(req.to_vec())).expect("serves");
    let mut reply = Vec::new();
    net.call(a, b, &[7u8; 2000], &mut reply).expect("echo");

    let snap = registry.snapshot();
    assert_eq!(snap.counter("net.message"), net.stats().messages.get());
    assert!(snap.counter("net.message") >= 1);
    assert!(snap.counter("net.packet") >= 2, "2000 bytes crossed at MTU 1500");
    assert_eq!(snap.counter("kernel.message"), 0, "kernel idle but registered");
    assert!(snap.to_json().contains("\"kernel.bytes_copied_in\""));
}
