//! Link faults: `Fault::Partition` and `Fault::SlowLink` on every transport.
//!
//! A partition severs the link while both endpoints stay alive — the
//! caller sees a typed `Disconnected` (retryable elsewhere), nothing
//! executes, and the link carries again once sim time passes the heal
//! point. A slow link degrades rather than severs: the call completes
//! correctly but costs a multiple of the healthy transfer time on the sim
//! clock. Covered transports: loopback, kernel IPC, and both Sun RPC
//! paths (single-call `SunRpc` and the batched `SunRpcPipeline`).

use flexrpc::clock::SimClock;
use flexrpc::kernel::{Kernel, NameMode};
use flexrpc::net::{NetError, SimNet};
use flexrpc::prelude::*;
use flexrpc::runtime::transport::{connect_kernel, serve_on_kernel, serve_on_net, SunRpc};
use flexrpc::runtime::Transport;

fn echo_module() -> flexrpc::core::ir::Module {
    corba::parse(
        "echo",
        r#"
        interface Echo {
            unsigned long ping(in unsigned long x);
        };
        "#,
    )
    .expect("IDL parses")
}

fn compiled() -> CompiledInterface {
    let m = echo_module();
    let iface = m.interface("Echo").expect("declared");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    CompiledInterface::compile(&m, iface, &pres).expect("compiles")
}

fn echo_server() -> Arc<Mutex<ServerInterface>> {
    let mut srv = ServerInterface::new(compiled(), WireFormat::Cdr);
    srv.on("ping", |call| {
        let x = call.u32("x").expect("x");
        call.set("return", Value::U32(x.wrapping_add(1))).expect("return");
        0
    })
    .expect("registers");
    Arc::new(Mutex::new(srv))
}

/// One stub-addressable binding plus the handles a link-fault test needs:
/// a way to arm the injector the transport consults and the clock whose
/// passage heals the cut.
struct World {
    name: &'static str,
    stub: ClientStub,
    arm: Box<dyn Fn(Fault)>,
    clock: Arc<SimClock>,
}

fn loopback_world() -> World {
    let transport = Loopback::new(echo_server());
    let faults = Arc::clone(transport.faults());
    let clock = transport.clock().expect("loopback has a clock");
    let stub = ClientStub::new(compiled(), WireFormat::Cdr, Box::new(transport));
    World { name: "loopback", stub, arm: Box::new(move |f| faults.on_next_call(f)), clock }
}

fn kernel_world() -> World {
    let k = Kernel::new();
    let client_task = k.create_task("client", 4096).expect("task");
    let server_task = k.create_task("server", 4096).expect("task");
    let server = echo_server();
    let sig = server.lock().compiled().signature.hash();
    let port =
        serve_on_kernel(&k, server_task, server, Trust::None, NameMode::Unique).expect("serves");
    let send = k.extract_send_right(server_task, port, client_task).expect("send right");
    let transport =
        connect_kernel(&k, client_task, send, sig, Trust::None, NameMode::Unique).expect("binds");
    let clock = Arc::clone(k.clock());
    let stub = ClientStub::new(compiled(), WireFormat::Cdr, Box::new(transport));
    World { name: "kernel", stub, arm: Box::new(move |f| k.faults().on_next_call(f)), clock }
}

fn sunrpc_world() -> World {
    let net = SimNet::new();
    let ch = net.add_host("client");
    let sh = net.add_host("server");
    serve_on_net(&net, sh, echo_server(), 500_001, 1).expect("serves");
    let transport = SunRpc::new(Arc::clone(&net), ch, sh, 500_001, 1);
    let clock = Arc::clone(net.clock());
    let stub = ClientStub::new(compiled(), WireFormat::Cdr, Box::new(transport));
    World { name: "sunrpc", stub, arm: Box::new(move |f| net.faults().on_next_call(f)), clock }
}

fn worlds() -> Vec<World> {
    vec![loopback_world(), kernel_world(), sunrpc_world()]
}

fn ping(stub: &mut ClientStub, x: u32) -> Result<u32, Error> {
    let mut frame = stub.new_frame("ping").expect("frame");
    frame[0] = Value::U32(x);
    stub.call_with("ping", &mut frame, &CallOptions::default())?;
    Ok(frame[1].as_u32().expect("return"))
}

/// A partition is a typed, retryable outage with state: the cut persists
/// across calls (unlike one-shot drops) and heals itself when sim time
/// passes the deadline — no operator `restore()` required.
#[test]
fn partition_severs_then_heals_on_stub_transports() {
    for mut w in worlds() {
        let name = w.name;
        assert_eq!(ping(&mut w.stub, 1).expect("healthy link"), 2, "on {name}");
        // The heal window must outlast the wire time the failed attempts
        // themselves charge (the request leg transmits into the void).
        (w.arm)(Fault::Partition {
            a: FaultInjector::ANY,
            b: FaultInjector::ANY,
            heal_after_ns: 500_000_000,
        });
        for i in 0..2 {
            let err = match ping(&mut w.stub, 7) {
                Ok(v) => panic!("on {name}, call {i}: crossed a severed link, got Ok({v})"),
                Err(e) => e,
            };
            assert_eq!(
                err.kind(),
                ErrorKind::Disconnected,
                "on {name}, call {i} during the cut: {err}"
            );
        }
        w.clock.advance_ns(600_000_000);
        assert_eq!(ping(&mut w.stub, 3).expect("healed link"), 4, "on {name}");
    }
}

/// A slow link degrades without severing: the call completes correctly
/// and the sim clock shows the stretched transfer.
#[test]
fn slow_link_degrades_without_severing_on_stub_transports() {
    for mut w in worlds() {
        let name = w.name;
        assert_eq!(ping(&mut w.stub, 1).expect("healthy link"), 2, "on {name}");
        let healthy_ns = w.clock.now_ns();
        (w.arm)(Fault::SlowLink { factor: 8 });
        assert_eq!(ping(&mut w.stub, 5).expect("degraded but alive"), 6, "on {name}");
        let slowed = w.clock.now_ns() - healthy_ns;
        assert!(slowed > 0, "on {name}: the slow link charged no sim time");
        // One-shot: the next call pays the healthy price again.
        let before = w.clock.now_ns();
        assert_eq!(ping(&mut w.stub, 9).expect("recovered"), 10, "on {name}");
        assert!(
            w.clock.now_ns() - before < slowed,
            "on {name}: the slowdown leaked past its one call"
        );
    }
}

/// The second Sun RPC path: a batched pipeline against an engine-hosted
/// acceptor. A partition fails the whole flush typed; after the heal the
/// resubmitted batch completes; a slow-link window stretches the flush's
/// wire time by exactly its factor.
#[test]
fn pipeline_flush_sees_partitions_and_slow_links() {
    let engine = Engine::builder().workers(2).build();
    let m = echo_module();
    let iface = m.interface("Echo").expect("declared");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    engine
        .register_service("echo", m.clone(), "Echo", pres.clone(), WireFormat::Cdr, |srv| {
            srv.on("ping", |call| {
                let x = call.u32("x").expect("x");
                call.set("return", Value::U32(x + 1)).expect("return");
                0
            })
            .expect("registers");
        })
        .expect("service registers");
    let net = SimNet::new();
    let sh = net.add_host("server");
    let ch = net.add_host("client");
    flexrpc::engine::expose_on_net(&engine, &net, sh, "echo", 700, 1, ClientInfo::of(&pres))
        .expect("exposes");
    let mut pipe = flexrpc::engine::SunRpcPipeline::new(Arc::clone(&net), ch, sh, 700, 1);

    let args = {
        let mut w = flexrpc::runtime::wire::AnyWriter::new(WireFormat::Cdr);
        w.put_u32(41);
        w.into_bytes()
    };

    // Healthy flush, and its wire cost as the slow-link baseline.
    let wire_before = net.wire_ns();
    pipe.submit(0, &args);
    let replies = pipe.flush().expect("healthy flush");
    assert_eq!(replies.len(), 1);
    let healthy_wire = net.wire_ns() - wire_before;

    // Sever the client↔server pair: the flush dies typed, nothing executes.
    net.faults().partition(ch.raw(), sh.raw(), net.clock().now_ns() + 500_000_000);
    pipe.submit(0, &args);
    let err = pipe.flush().expect_err("flush crossed a severed link");
    assert!(matches!(err, NetError::Disconnected(_)), "typed outage, got {err}");

    // Sim time heals the cut; the resubmitted batch goes through.
    net.clock().advance_ns(600_000_000);
    pipe.submit(0, &args);
    assert_eq!(pipe.flush().expect("healed").len(), 1);

    // A slow-link window stretches both wire legs of the flush 4x (the
    // server's own processing time, folded into wire_ns, is unscaled).
    let server = flexrpc::net::NetConfig::default().server_ns;
    let wire_before = net.wire_ns();
    net.faults().set_slow_link(4, net.clock().now_ns() + 1_000_000_000);
    pipe.submit(0, &args);
    assert_eq!(pipe.flush().expect("degraded but alive").len(), 1);
    assert_eq!(net.wire_ns() - wire_before - server, (healthy_wire - server) * 4);
    net.faults().heal_all();
    engine.shutdown();
}
