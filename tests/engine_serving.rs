//! Cross-crate: the serving engine through the `flexrpc` facade — one
//! engine hosting both of the paper's applications (the pipe server and
//! the NFS server) at once, each behind its own cached program.

use flexrpc::core::present::InterfacePresentation;
use flexrpc::engine::{expose_on_net, ClientInfo, Engine};
use flexrpc::marshal::WireFormat;
use flexrpc::net::SimNet;
use flexrpc::nfs::client::{ClientVariant, NfsClientHarness};
use flexrpc::nfs::server::{nfs_presentation, register_nfs_handlers, test_file, FileStore};
use flexrpc::nfs::{nfs_module, NFS_PROGRAM, NFS_VERSION};
use flexrpc::pipes::circ::CircBuf;
use flexrpc::pipes::fileio_module;
use flexrpc::pipes::server::{
    register_pipe_handlers, server_presentation, PipeServerStats, ReadPresentation,
};
use flexrpc::runtime::{ClientStub, RpcError};
use flexrpc_core::value::Value;
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn one_engine_hosts_pipes_and_nfs_together() {
    let engine = Engine::builder().workers(4).queue_depth(32).build();

    // Service 1: the pipe server, dealloc(never) presentation.
    let ring = Arc::new(Mutex::new(CircBuf::new(1 << 16)));
    let pipe_stats = Arc::new(PipeServerStats::default());
    let (r, s) = (Arc::clone(&ring), Arc::clone(&pipe_stats));
    engine
        .register_service(
            "pipe",
            fileio_module(),
            "FileIO",
            server_presentation(ReadPresentation::DeallocNever),
            WireFormat::Cdr,
            move |srv| register_pipe_handlers(srv, &r, &s, ReadPresentation::DeallocNever),
        )
        .expect("pipe registers");

    // Service 2: the NFS server, exposed over Sun RPC on the simulated net.
    let store = Arc::new(Mutex::new(FileStore::new()));
    let nfs = nfs_module();
    let nfs_iface = nfs.interfaces[0].name.clone();
    let st = Arc::clone(&store);
    engine
        .register_service("nfs", nfs, &nfs_iface, nfs_presentation(), WireFormat::Xdr, move |srv| {
            register_nfs_handlers(srv, &st)
        })
        .expect("nfs registers");

    let len = 16 * 1024;
    let data = test_file(len, 3);
    let fh = store.lock().add_file(data.clone());
    let net = SimNet::new();
    let client_host = net.add_host("client");
    let server_host = net.add_host("server");
    expose_on_net(
        &engine,
        &net,
        server_host,
        "nfs",
        NFS_PROGRAM,
        NFS_VERSION,
        ClientInfo::of(&nfs_presentation()),
    )
    .expect("nfs exposes");

    // Drive both applications against the same worker pool.
    let nfs_thread = std::thread::spawn(move || {
        let mut h = NfsClientHarness::new(net, client_host, server_host, fh, len);
        h.read_file(ClientVariant::SpecialGenerated, len, 8192).expect("nfs read");
        h.user_buffer()
    });

    let m = fileio_module();
    let iface = m.interface("FileIO").expect("FileIO exists");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    let conn = engine.connect("pipe").client(ClientInfo::of(&pres)).establish().expect("connect");
    let compiled =
        flexrpc::core::program::CompiledInterface::compile(&m, iface, &pres).expect("compiles");
    let mut pipe = ClientStub::new(compiled, WireFormat::Cdr, Box::new(conn));
    let payload = vec![0xC3u8; 512];
    let mut wf = pipe.new_frame("write").expect("frame");
    wf[0] = Value::Bytes(payload.clone());
    pipe.call("write", &mut wf).expect("write ok");
    let mut rf = pipe.new_frame("read").expect("frame");
    rf[0] = Value::U32(512);
    match pipe.call("read", &mut rf) {
        Ok(_) => {}
        Err(RpcError::Remote(s)) => panic!("read blocked with status {s}"),
        Err(e) => panic!("read failed: {e}"),
    }
    assert_eq!(rf[1], Value::Bytes(payload));

    assert_eq!(nfs_thread.join().expect("nfs client ok"), data);
    let stats = engine.stats();
    assert!(stats.calls_served >= 4, "both applications were served");
    assert_eq!(stats.cache.misses, 2, "one program per application combination");
    assert_eq!(stats.dispatch_errors, 0);
    engine.shutdown();
}
