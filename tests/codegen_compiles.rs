//! Proof that emitted stubs are real code: a committed generated file is
//! compiled into this test and driven against a live server.
//!
//! `tests/generated/fileio_dealloc_never.rs` was produced by
//! `flexrpc-codegen` for the `FileIO` interface under the paper's Figure 5
//! presentation (`dealloc(never)` on the read reply); a freshness test
//! regenerates it and compares, so the committed artifact can never drift
//! from the generator.

use flexrpc::core::annot::apply_pdl;
use flexrpc::core::present::InterfacePresentation;
use flexrpc::core::program::CompiledInterface;
use flexrpc::marshal::WireFormat;
use flexrpc::runtime::transport::Loopback;
use flexrpc::runtime::{ClientStub, ReplySink, ServerInterface};
use parking_lot::Mutex;
use std::sync::Arc;

include!("generated/fileio_dealloc_never.rs");

/// A tiny ring-buffer pipe implementing the generated sink-mode trait.
struct MiniPipe {
    data: Vec<u8>,
}

impl FileIoServer for MiniPipe {
    fn read(&mut self, count: u32, sink: &mut ReplySink<'_>) -> Result<(), u32> {
        let n = (count as usize).min(self.data.len());
        // dealloc(never): marshal straight out of our own storage.
        sink.put(&self.data[..n]).map_err(|_| 5u32)?;
        self.data.drain(..n);
        Ok(())
    }

    fn write(&mut self, data: &[u8]) -> Result<(), u32> {
        self.data.extend_from_slice(data);
        Ok(())
    }
}

fn build() -> (ClientStub, Arc<Mutex<ServerInterface>>) {
    let module = flexrpc::pipes::fileio_module();
    let iface = module.interface("FileIO").expect("FileIO");
    let base = InterfacePresentation::default_for(&module, iface).expect("defaults");
    let pdl = flexrpc::idl::pdl::parse(flexrpc::pipes::DEALLOC_NEVER_PDL).expect("parses");
    let pres = apply_pdl(&module, iface, &base, &pdl).expect("applies");

    let compiled = CompiledInterface::compile(&module, iface, &pres).expect("compiles");
    let mut srv = ServerInterface::new(compiled, WireFormat::Cdr);
    register_file_io(&mut srv, MiniPipe { data: Vec::new() }).expect("registers");
    let server = Arc::new(Mutex::new(srv));

    let client_compiled =
        CompiledInterface::compile(&module, iface, &base).expect("client compiles");
    let client = ClientStub::new(
        client_compiled,
        WireFormat::Cdr,
        Box::new(Loopback::new(Arc::clone(&server))),
    );
    (client, server)
}

#[test]
fn generated_stubs_roundtrip() {
    let (client, _server) = build();
    let mut c = FileIoClient::new(client);
    c.write(b"generated code is real code").expect("write");
    let got = c.read(14).expect("read");
    assert_eq!(got, b"generated code");
    let got = c.read(100).expect("read rest");
    assert_eq!(got, b" is real code");
}

#[test]
fn generated_file_is_fresh() {
    let module = flexrpc::pipes::fileio_module();
    let iface = module.interface("FileIO").expect("FileIO");
    let base = InterfacePresentation::default_for(&module, iface).expect("defaults");
    let pdl = flexrpc::idl::pdl::parse(flexrpc::pipes::DEALLOC_NEVER_PDL).expect("parses");
    let pres = apply_pdl(&module, iface, &base, &pdl).expect("applies");
    let code =
        flexrpc::codegen::generate(&module, iface, &pres, &flexrpc::codegen::GenOptions::both())
            .expect("generates");
    let committed = include_str!("generated/fileio_dealloc_never.rs");
    assert_eq!(
        code, committed,
        "regenerate tests/generated/fileio_dealloc_never.rs (the emitter changed)"
    );
}
