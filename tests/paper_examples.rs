//! Every code figure in the paper, parsed and applied verbatim.
//!
//! Figures 1, 3, 4, 5, 8 and 9 are listings, not measurements; this test
//! file keeps them working as actual inputs to the toolchain, so the
//! reproduction stays aligned with the paper's surface syntax.

use flexrpc::core::annot::{apply_pdl, Attr};
use flexrpc::core::ir::Type;
use flexrpc::core::present::{AllocSemantics, DeallocPolicy, InterfacePresentation, Trust};

/// Introduction: the CORBA SysLog fragment and both presentations.
#[test]
fn intro_syslog_and_alternate_presentation() {
    let m = flexrpc::idl::corba::parse(
        "syslog",
        r#"
        interface SysLog {
            void write_msg(in string msg);
        };
        "#,
    )
    .expect("parses");
    let iface = m.interface("SysLog").expect("declared");
    let base = InterfacePresentation::default_for(&m, iface).expect("defaults");
    // "the following PDL file will cause the second presentation shown
    // (the 'alternate' presentation) to be used instead":
    let pdl =
        flexrpc::idl::pdl::parse("SysLog_write_msg(,, char *[length_is(length)] msg, int length);")
            .expect("parses");
    let pres = apply_pdl(&m, iface, &base, &pdl).expect("applies");
    assert_eq!(pres.op("write_msg").expect("op").params[0].length_is.as_deref(), Some("length"));
}

/// Figure 1: the Linux NFS client PDL declaration.
#[test]
fn figure_1_nfs_pdl() {
    let pdl = flexrpc::idl::pdl::parse(flexrpc::nfs::FIG1_PDL).expect("parses");
    assert_eq!(pdl.ops[0].op_attrs, vec![Attr::CommStatus]);
    assert_eq!(pdl.ops[0].params[0].param, "data");
    assert_eq!(pdl.ops[0].params[0].attrs, vec![Attr::Special]);
    // It applies onto the actual `.x` protocol.
    let m = flexrpc::nfs::nfs_module();
    let iface = &m.interfaces[0];
    let base = InterfacePresentation::default_for(&m, iface).expect("defaults");
    let pres = apply_pdl(&m, iface, &base, &pdl).expect("applies");
    assert!(pres.op("NFSPROC_READ").expect("op").params[4].special);
}

/// Figure 3: the pipe server interface, in CORBA IDL.
#[test]
fn figure_3_pipe_interface() {
    let m = flexrpc::idl::corba::parse(
        "fileio",
        r#"
        interface FileIO {
            sequence<octet> read(in unsigned long count);
            void write(in sequence<octet> data);
        };
        "#,
    )
    .expect("parses");
    let read = m.interface("FileIO").expect("FileIO").op("read").expect("read");
    assert_eq!(read.ret, Type::octet_seq());
}

/// Figure 4: the default presentation is move semantics, stub-allocated.
#[test]
fn figure_4_default_presentation() {
    let m = flexrpc::pipes::fileio_module();
    let iface = m.interface("FileIO").expect("FileIO");
    let pres = InterfacePresentation::default_for(&m, iface).expect("defaults");
    let read = pres.op("read").expect("read");
    assert_eq!(read.result.alloc, AllocSemantics::StubAllocates);
    assert_eq!(read.result.dealloc, DeallocPolicy::OnReturn);
}

/// Figure 5: the typedef re-declaration with [dealloc(never)], verbatim.
#[test]
fn figure_5_dealloc_never_pdl() {
    let pdl = flexrpc::idl::pdl::parse(
        r#"
        typedef struct {
            unsigned long _maximum;
            unsigned long _length;
            [dealloc(never)] char *_buffer;
        } CORBA_SEQUENCE_char;
        "#,
    )
    .expect("parses");
    let m = flexrpc::pipes::fileio_module();
    let iface = m.interface("FileIO").expect("FileIO");
    let base = InterfacePresentation::default_for(&m, iface).expect("defaults");
    let pres = apply_pdl(&m, iface, &base, &pdl).expect("applies");
    assert_eq!(
        pres.op("read").expect("read").result.dealloc,
        DeallocPolicy::Never,
        "the type-level annotation reaches the read result"
    );
}

/// Figures 8 and 9: client trashable / server preserved PDLs.
#[test]
fn figures_8_and_9_mutability_pdls() {
    let m = flexrpc::pipes::fileio_module();
    let iface = m.interface("FileIO").expect("FileIO");
    let base = InterfacePresentation::default_for(&m, iface).expect("defaults");

    let client_pdl = flexrpc::idl::pdl::parse(
        "void FileIO_write(char *[trashable] data, unsigned long _length);",
    )
    .expect("parses");
    let client = apply_pdl(&m, iface, &base, &client_pdl).expect("applies");
    assert!(client.op("write").expect("write").params[0].trashable);

    let server_pdl = flexrpc::idl::pdl::parse(
        "void FileIO_write(char *[preserved] data, unsigned long _length);",
    )
    .expect("parses");
    let server = apply_pdl(&m, iface, &base, &server_pdl).expect("applies");
    assert!(server.op("write").expect("write").params[0].preserved);

    // §4.4.1's rule, derived at bind time.
    use flexrpc::core::compat::{in_param_action, InParamAction};
    assert_eq!(
        in_param_action(
            &client.op("write").expect("write").params[0],
            &base.op("write").expect("write").params[0],
        ),
        InParamAction::Borrow
    );
    assert_eq!(
        in_param_action(
            &base.op("write").expect("write").params[0],
            &server.op("write").expect("write").params[0],
        ),
        InParamAction::Borrow
    );
    assert_eq!(
        in_param_action(
            &base.op("write").expect("write").params[0],
            &base.op("write").expect("write").params[0],
        ),
        InParamAction::CopyInStub
    );
}

/// §4.5: trust attributes at interface scope.
#[test]
fn trust_attribute_pdls() {
    let m = flexrpc::pipes::fileio_module();
    let iface = m.interface("FileIO").expect("FileIO");
    let base = InterfacePresentation::default_for(&m, iface).expect("defaults");
    for (text, expect) in [
        ("interface FileIO [leaky];", Trust::Leaky),
        ("interface FileIO [leaky, unprotected];", Trust::LeakyUnprotected),
    ] {
        let pdl = flexrpc::idl::pdl::parse(text).expect("parses");
        let pres = apply_pdl(&m, iface, &base, &pdl).expect("applies");
        assert_eq!(pres.trust, expect, "{text}");
    }
}
