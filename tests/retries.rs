//! Retry policy acceptance: transient faults are absorbed, permanent
//! failures are not papered over, and the license to retry at all comes
//! from the PDL's `[idempotent]` declaration — checked before anything is
//! sent.

use flexrpc::clock::Fault;
use flexrpc::net::sunrpc::AcceptStat;
use flexrpc::net::{NetConfig, SimNet};
use flexrpc::prelude::*;
use flexrpc::runtime::RetryPolicy;
use proptest::prelude::*;
use std::time::Duration;

fn echo_module() -> flexrpc::core::ir::Module {
    corba::parse(
        "echo",
        r#"
        interface Echo {
            unsigned long ping(in unsigned long x);
        };
        "#,
    )
    .expect("IDL parses")
}

/// Compiles the Echo client, optionally granting `ping` the retry license.
fn echo_compiled(module: &flexrpc::core::ir::Module, idempotent: bool) -> CompiledInterface {
    let iface = module.interface("Echo").expect("declared");
    let mut pres = InterfacePresentation::default_for(module, iface).expect("defaults");
    if idempotent {
        let pdl =
            pdl::parse("[idempotent] unsigned long Echo_ping(unsigned long x);").expect("parses");
        pres = apply_pdl(module, iface, &pres, &pdl).expect("applies");
    }
    CompiledInterface::compile(module, iface, &pres).expect("compiles")
}

fn echo_server(
    module: &flexrpc::core::ir::Module,
    fail_status: u32,
) -> Arc<Mutex<ServerInterface>> {
    let compiled = echo_compiled(module, false);
    let mut srv = ServerInterface::new(compiled, WireFormat::Cdr);
    srv.on("ping", move |call| {
        if fail_status != 0 {
            return fail_status;
        }
        let x = call.u32("x").expect("x");
        call.set("return", Value::U32(x + 1)).expect("return");
        0
    })
    .expect("registers");
    Arc::new(Mutex::new(srv))
}

fn retrying_options() -> CallOptions {
    CallOptions::default().retry(RetryPolicy::new(3).backoff(Duration::from_millis(1)).seed(7))
}

#[test]
fn transient_faults_are_absorbed_by_the_policy() {
    let module = echo_module();
    let transport = Loopback::new(echo_server(&module, 0));
    // Two consecutive drops: attempts 1 and 2 fail, attempt 3 delivers.
    transport.faults().on_next_call(Fault::Drop);
    transport.faults().on_nth_call(1, Fault::Drop);
    let faults = Arc::clone(transport.faults());
    let mut client =
        ClientStub::new(echo_compiled(&module, true), WireFormat::Cdr, Box::new(transport));
    let mut frame = client.new_frame("ping").expect("frame");
    frame[0] = Value::U32(41);
    assert_eq!(client.call_with("ping", &mut frame, &retrying_options()), Ok(0));
    assert_eq!(frame[1], Value::U32(42));
    assert_eq!(faults.calls_seen(), 3, "first send plus two retries");
}

#[test]
fn permanent_failures_are_not_retried() {
    let module = echo_module();
    // The server *answers* every time — with an application error. That is
    // a delivered reply, not a transport fault; resending cannot help.
    let transport = Loopback::new(echo_server(&module, 13));
    let faults = Arc::clone(transport.faults());
    let mut client =
        ClientStub::new(echo_compiled(&module, true), WireFormat::Cdr, Box::new(transport));
    let mut frame = client.new_frame("ping").expect("frame");
    frame[0] = Value::U32(41);
    let err = client.call_with("ping", &mut frame, &retrying_options()).expect_err("fails");
    assert_eq!(err.kind(), ErrorKind::Fatal, "{err}");
    assert_eq!(faults.calls_seen(), 1, "a non-retryable failure is sent exactly once");
}

#[test]
fn retry_without_idempotent_declaration_is_refused_before_sending() {
    let module = echo_module();
    let transport = Loopback::new(echo_server(&module, 0));
    let faults = Arc::clone(transport.faults());
    // Client compiled *without* `[idempotent]` on ping.
    let compiled = echo_compiled(&module, false);
    // Construction-time rejection: binding the policy to the op fails.
    let op = compiled.op("ping").expect("op");
    let err = CallOptions::default()
        .retry_for(RetryPolicy::new(3), op)
        .expect_err("policy refused at construction");
    assert_eq!(err.kind(), ErrorKind::ContractViolation);
    // Call-time rejection: the same gate guards call_with, pre-send.
    let mut client = ClientStub::new(compiled, WireFormat::Cdr, Box::new(transport));
    let mut frame = client.new_frame("ping").expect("frame");
    frame[0] = Value::U32(41);
    let err = client.call_with("ping", &mut frame, &retrying_options()).expect_err("refused");
    assert_eq!(err.kind(), ErrorKind::ContractViolation);
    assert_eq!(faults.calls_seen(), 0, "nothing reached the transport");
}

#[test]
fn pipeline_retry_resends_a_dropped_batch() {
    let module = echo_module();
    let iface = module.interface("Echo").expect("declared");
    let pres = InterfacePresentation::default_for(&module, iface).expect("defaults");
    let engine = Engine::builder().workers(2).build();
    engine
        .register_service("echo", module.clone(), "Echo", pres.clone(), WireFormat::Cdr, |srv| {
            srv.on("ping", |call| {
                let x = call.u32("x").expect("x");
                call.set("return", Value::U32(x + 1)).expect("return");
                0
            })
            .expect("registers");
        })
        .expect("service registers");
    let net = SimNet::with_config(NetConfig::default());
    let server_host = net.add_host("server");
    let client_host = net.add_host("client");
    flexrpc::engine::expose_on_net(
        &engine,
        &net,
        server_host,
        "echo",
        99,
        1,
        ClientInfo::of(&pres),
    )
    .expect("exposes");

    let compiled = echo_compiled(&module, true);
    let op = compiled.op("ping").expect("op");
    let mut pipe =
        flexrpc::engine::SunRpcPipeline::new(Arc::clone(&net), client_host, server_host, 99, 1)
            .retry(RetryPolicy::new(3).backoff(Duration::from_millis(1)).seed(9));

    // A non-idempotent op may not enter a retrying pipeline at all.
    let unlicensed = echo_compiled(&module, false);
    let err =
        pipe.submit_op(unlicensed.op("ping").expect("op"), &[]).expect_err("refused before send");
    assert_eq!(err.kind(), ErrorKind::ContractViolation);

    // The licensed op goes through; the first transmission is dropped in
    // transit and the policy's resend delivers the whole batch.
    let mut w = flexrpc::runtime::wire::AnyWriter::new(WireFormat::Cdr);
    w.put_u32(41);
    let args = w.into_bytes();
    pipe.submit_op(op, &args).expect("licensed");
    net.faults().on_next_call(Fault::Drop);
    let before = net.clock().now_ns();
    let replies = pipe.flush().expect("retry covers the drop");
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].0, AcceptStat::Success);
    assert!(net.clock().now_ns() > before, "backoff was charged to the sim clock");
    engine.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any seed, the jittered backoff schedule is a pure function of
    /// the seed: two policies built alike agree on every attempt, and the
    /// values respect the base/cap envelope (jitter adds at most half).
    #[test]
    fn retry_jitter_is_deterministic_per_seed(seed in any::<u64>(), attempts in 1u32..12) {
        let a = RetryPolicy::new(12).backoff(Duration::from_micros(100)).seed(seed);
        let b = RetryPolicy::new(12).backoff(Duration::from_micros(100)).seed(seed);
        for n in 1..=attempts {
            let x = a.backoff_ns(n);
            prop_assert_eq!(x, b.backoff_ns(n), "same seed, same schedule");
            let base = 100_000u64.saturating_mul(1 << (n - 1).min(32)).min(100_000_000);
            prop_assert!(x >= base && x < base + base / 2 + 1, "envelope: {} for base {}", x, base);
        }
    }
}
