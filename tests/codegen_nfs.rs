//! The full NFSv2 procedure subset through generated stubs, end to end over
//! the simulated network — exercising struct flattening (`Fattr`, `Sattr`),
//! enums, fixed opaque handles in both directions, string parameters, and
//! the `[comm_status]` presentation in emitted code.

use flexrpc::core::present::InterfacePresentation;
use flexrpc::core::program::CompiledInterface;
use flexrpc::marshal::WireFormat;
use flexrpc::net::SimNet;
use flexrpc::nfs::{nfs_module, NFS_PROGRAM, NFS_VERSION};
use flexrpc::runtime::transport::{serve_on_net, SunRpc};
use flexrpc::runtime::{ClientStub, ServerInterface};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

include!("generated/nfs_default.rs");

/// An in-memory filesystem implementing the generated trait.
#[derive(Default)]
struct MemFs {
    files: HashMap<[u8; 32], (Vec<u8>, Fattr)>,
    root: HashMap<String, [u8; 32]>,
    next: u32,
}

const ROOT: [u8; 32] = [0xD1; 32];

impl MemFs {
    fn attrs_of(data: &[u8]) -> Fattr {
        Fattr {
            ftype: 1,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size: data.len() as u32,
            blocksize: 8192,
            blocks: (data.len() as u32).div_ceil(512),
            mtime: 794_000_000,
        }
    }
}

impl NfsVersionServer for MemFs {
    fn nfsproc_null(&mut self) -> Result<(), u32> {
        Ok(())
    }

    fn nfsproc_getattr(&mut self, file: &[u8; 32]) -> Result<Fattr, u32> {
        self.files.get(file).map(|(_, a)| a.clone()).ok_or(flexrpc::nfs::NFSERR_STALE)
    }

    fn nfsproc_setattr(&mut self, file: &[u8; 32], attributes: Sattr) -> Result<Fattr, u32> {
        let (data, attrs) = self.files.get_mut(file).ok_or(flexrpc::nfs::NFSERR_STALE)?;
        if attributes.mode != u32::MAX {
            attrs.mode = attributes.mode;
        }
        if attributes.size != u32::MAX {
            data.resize(attributes.size as usize, 0);
            attrs.size = attributes.size;
        }
        Ok(attrs.clone())
    }

    fn nfsproc_lookup(&mut self, dir: &[u8; 32], name: &str) -> Result<([u8; 32], Fattr), u32> {
        if *dir != ROOT {
            return Err(flexrpc::nfs::NFSERR_STALE);
        }
        let fh = *self.root.get(name).ok_or(flexrpc::nfs::NFSERR_NOENT)?;
        let (_, attrs) = &self.files[&fh];
        Ok((fh, attrs.clone()))
    }

    fn nfsproc_read(
        &mut self,
        file: &[u8; 32],
        offset: u32,
        count: u32,
        _totalcount: u32,
    ) -> Result<(Vec<u8>, Fattr), u32> {
        let (data, attrs) = self.files.get(file).ok_or(flexrpc::nfs::NFSERR_STALE)?;
        let off = offset as usize;
        let end = (off + count as usize).min(data.len());
        let chunk = if off < data.len() { data[off..end].to_vec() } else { vec![] };
        Ok((chunk, attrs.clone()))
    }

    fn nfsproc_write(
        &mut self,
        file: &[u8; 32],
        _beginoffset: u32,
        offset: u32,
        _totalcount: u32,
        data: &[u8],
    ) -> Result<Fattr, u32> {
        let (contents, attrs) = self.files.get_mut(file).ok_or(flexrpc::nfs::NFSERR_STALE)?;
        let off = offset as usize;
        if contents.len() < off + data.len() {
            contents.resize(off + data.len(), 0);
        }
        contents[off..off + data.len()].copy_from_slice(data);
        *attrs = Self::attrs_of(contents);
        Ok(attrs.clone())
    }

    fn nfsproc_create(
        &mut self,
        dir: &[u8; 32],
        name: &str,
        attributes: Sattr,
    ) -> Result<([u8; 32], Fattr), u32> {
        if *dir != ROOT {
            return Err(flexrpc::nfs::NFSERR_STALE);
        }
        if self.root.contains_key(name) {
            return Err(flexrpc::nfs::NFSERR_EXIST);
        }
        self.next += 1;
        let mut fh = [0u8; 32];
        fh[..4].copy_from_slice(&self.next.to_be_bytes());
        let mut attrs = Self::attrs_of(&[]);
        attrs.mode = attributes.mode;
        self.files.insert(fh, (Vec::new(), attrs.clone()));
        self.root.insert(name.to_owned(), fh);
        Ok((fh, attrs))
    }

    fn nfsproc_remove(&mut self, dir: &[u8; 32], name: &str) -> Result<(), u32> {
        if *dir != ROOT {
            return Err(flexrpc::nfs::NFSERR_STALE);
        }
        let fh = self.root.remove(name).ok_or(flexrpc::nfs::NFSERR_NOENT)?;
        self.files.remove(&fh);
        Ok(())
    }
}

fn client() -> NfsVersionClient {
    let module = nfs_module();
    let iface = &module.interfaces[0];
    let pres = InterfacePresentation::default_for(&module, iface).expect("defaults");
    let compiled = CompiledInterface::compile(&module, iface, &pres).expect("compiles");

    let mut srv = ServerInterface::new(compiled.clone(), WireFormat::Xdr);
    register_nfs_version(&mut srv, MemFs::default()).expect("registers");

    let net = SimNet::new();
    let ch = net.add_host("client");
    let sh = net.add_host("server");
    serve_on_net(&net, sh, Arc::new(Mutex::new(srv)), NFS_PROGRAM, NFS_VERSION).expect("serves");
    let transport = SunRpc::new(Arc::clone(&net), ch, sh, NFS_PROGRAM, NFS_VERSION);
    NfsVersionClient::new(ClientStub::new(compiled, WireFormat::Xdr, Box::new(transport)))
}

#[test]
fn full_file_lifecycle_through_generated_stubs() {
    let mut c = client();
    assert_eq!(c.nfsproc_null().expect("null"), 0);

    // Create a file.
    let sattr = Sattr { mode: 0o600, uid: 0, gid: 0, size: u32::MAX, mtime: u32::MAX };
    let (status, fh, attrs) = c.nfsproc_create(&ROOT, "paper.txt", &sattr).expect("create");
    assert_eq!(status, 0);
    assert_eq!(attrs.mode, 0o600);
    assert_eq!(attrs.size, 0);

    // Creating it again collides.
    let (status, ..) = c.nfsproc_create(&ROOT, "paper.txt", &sattr).expect("create call");
    assert_eq!(status, flexrpc::nfs::NFSERR_EXIST);

    // Write, then read back through a LOOKUP'd handle.
    let body = b"flexible presentation is necessary for maximal performance";
    let (status, attrs) = c.nfsproc_write(&fh, 0, 0, body.len() as u32, body).expect("write");
    assert_eq!(status, 0);
    assert_eq!(attrs.size, body.len() as u32);

    let (status, fh2, _) = c.nfsproc_lookup(&ROOT, "paper.txt").expect("lookup");
    assert_eq!(status, 0);
    assert_eq!(fh2, fh, "fixed opaque handles round-trip both directions");

    let (status, data, attrs) = c.nfsproc_read(&fh2, 0, 4096, 4096).expect("read");
    assert_eq!(status, 0);
    assert_eq!(data, body);
    assert_eq!(attrs.size, body.len() as u32);

    // GETATTR agrees.
    let (status, attrs2) = c.nfsproc_getattr(&fh).expect("getattr");
    assert_eq!((status, attrs2.size), (0, attrs.size));

    // SETATTR truncates.
    let truncate = Sattr { mode: u32::MAX, uid: 0, gid: 0, size: 8, mtime: u32::MAX };
    let (status, attrs) = c.nfsproc_setattr(&fh, &truncate).expect("setattr");
    assert_eq!((status, attrs.size), (0, 8));
    let (_, data, _) = c.nfsproc_read(&fh, 0, 4096, 4096).expect("read");
    assert_eq!(data, b"flexible");

    // REMOVE, then the name is gone.
    assert_eq!(c.nfsproc_remove(&ROOT, "paper.txt").expect("remove"), 0);
    let (status, ..) = c.nfsproc_lookup(&ROOT, "paper.txt").expect("lookup call");
    assert_eq!(status, flexrpc::nfs::NFSERR_NOENT);
}

#[test]
fn stale_handles_surface_as_statuses() {
    let mut c = client();
    let ghost = [9u8; 32];
    let (status, _, _) = c.nfsproc_read(&ghost, 0, 8, 8).expect("call works");
    assert_eq!(status, flexrpc::nfs::NFSERR_STALE);
    let (status, _) = c.nfsproc_getattr(&ghost).expect("call works");
    assert_eq!(status, flexrpc::nfs::NFSERR_STALE);
}

#[test]
fn nfs_generated_file_is_fresh() {
    let module = nfs_module();
    let iface = &module.interfaces[0];
    let pres = InterfacePresentation::default_for(&module, iface).expect("defaults");
    let code =
        flexrpc::codegen::generate(&module, iface, &pres, &flexrpc::codegen::GenOptions::both())
            .expect("generates");
    assert_eq!(
        code,
        include_str!("generated/nfs_default.rs"),
        "regenerate tests/generated/nfs_default.rs (the emitter changed)"
    );
}
