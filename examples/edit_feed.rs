//! Streaming and duplex demo: a `[stream]` publisher feeds an engine
//! service that fans every edit out to `[oneway]` callback subscribers.
//!
//! The publisher and the service each declare a credit window in their
//! annotated IDL; the engine bind negotiates the minimum, and the
//! publisher stalls deterministically on the shared sim clock whenever it
//! runs that many frames ahead of the receiver. The binding is
//! at-most-once, so a connection that dies after the service executed
//! (injected `Fault::Close`) is retried through the reply cache — every
//! subscriber sees every edit exactly once.
//!
//! Run with `cargo run --example edit_feed`.

use flexrpc::clock::Fault;
use flexrpc::prelude::*;
use flexrpc::stream::CallbackChannel;
use std::time::Duration;

fn annotated(
    name: &str,
    src: &str,
    iface: &str,
) -> (flexrpc::core::ir::Module, InterfacePresentation) {
    let (module, pdl) = corba::parse_annotated(name, src).expect("IDL parses");
    let decl = module.interface(iface).expect("declared");
    let base = InterfacePresentation::default_for(&module, decl).expect("defaults");
    let pres = apply_pdl(&module, decl, &base, &pdl).expect("annotations apply");
    (module, pres)
}

fn main() {
    let clock = SimClock::new();
    let engine = Engine::builder()
        .workers(2)
        .clock(Arc::clone(&clock))
        .at_most_once(Duration::from_secs(60))
        .build();

    // Each subscriber registers a callback interface with a `[oneway]`
    // edit op; the service keeps the reverse-direction channels.
    let (cb_module, cb_pres) = annotated(
        "feed_callback",
        "interface FeedCallback { oneway void edit(in unsigned long seq, in string data); };",
        "FeedCallback",
    );
    let cb_iface = cb_module.interface("FeedCallback").expect("declared");
    let cb_compiled =
        Arc::new(CompiledInterface::compile(&cb_module, cb_iface, &cb_pres).expect("compiles"));
    let delivered = Counter::default();
    let subscribers = 4usize;
    let feeds: Vec<Arc<Mutex<Vec<String>>>> =
        (0..subscribers).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let mut channels = Vec::new();
    for feed in &feeds {
        let mut receiver = ServerInterface::new_shared(Arc::clone(&cb_compiled), WireFormat::Xdr);
        let sink = Arc::clone(feed);
        receiver
            .on("edit", move |call| {
                let seq = call.u32("seq").expect("seq");
                let data = call.str("data").expect("data");
                sink.lock().push(format!("#{seq}: {data}"));
                0
            })
            .expect("edit handler registers");
        let receiver = Arc::new(Mutex::new(receiver));
        channels
            .push(CallbackChannel::new(&receiver, Arc::clone(&clock)).with_delivered(&delivered));
    }
    let channels = Arc::new(Mutex::new(channels));

    // The service: a `[stream(4)]` publish op that fans out to everyone.
    let (module, server_pres) = annotated(
        "feed",
        "interface Feed { [stream(4)] void publish(in unsigned long seq, in string data); };",
        "Feed",
    );
    engine
        .register_service("feed", module, "Feed", server_pres, WireFormat::Xdr, {
            let channels = Arc::clone(&channels);
            move |srv| {
                let channels = Arc::clone(&channels);
                srv.on("publish", move |call| {
                    let seq = call.u32("seq").expect("seq");
                    let data = call.str("data").expect("data").to_owned();
                    for ch in channels.lock().iter_mut() {
                        let mut frame = ch.new_frame("edit").expect("frame");
                        frame[0] = Value::U32(seq);
                        frame[1] = Value::Str(data.clone());
                        ch.deliver("edit", &mut frame).expect("callback delivers");
                    }
                    0
                })
                .expect("publish handler registers");
            }
        })
        .expect("service registers");

    // The publisher declares a bigger window (16); the bind takes the min.
    let (client_module, client_pres) = annotated(
        "feed",
        "interface Feed { [stream(16)] void publish(in unsigned long seq, in string data); };",
        "Feed",
    );
    let conn =
        engine.connect("feed").client_presentation(&client_pres).establish().expect("bind agrees");
    let negotiated = conn.negotiated_shape("publish").expect("negotiated");
    let client_iface = client_module.interface("Feed").expect("declared");
    let compiled = CompiledInterface::compile(&client_module, client_iface, &client_pres)
        .expect("client compiles");
    let mut stub = ClientStub::new(compiled, WireFormat::Xdr, Box::new(conn));
    stub.enable_at_most_once();
    let options = CallOptions::default()
        .retry(RetryPolicy::new(4).backoff(Duration::from_micros(50)).seed(7));
    let mut sender = StreamSender::over(stub, "publish", negotiated, 250_000)
        .expect("stream binds")
        .with_options(options);
    println!("negotiated window: {} (client 16, server 4)", sender.window());

    // Publish twelve edits; kill the connection after the fifth executed.
    for seq in 0..12u32 {
        if seq == 5 {
            engine.faults().on_next_call(Fault::Close);
        }
        let mut frame = sender.new_frame().expect("frame");
        frame[0] = Value::U32(seq);
        frame[1] = Value::Str(format!("edit {seq}"));
        sender.send(&mut frame).expect("publish survives reply loss");
    }
    sender.drain();
    engine.shutdown();

    println!(
        "published {} edits; {} callbacks delivered; stalled {} times for {} sim-ns",
        sender.frames_sent(),
        delivered.get(),
        sender.credit().stalls(),
        sender.credit().waited_ns()
    );
    {
        let first = feeds[0].lock();
        println!("subscriber 0 saw {} edits, e.g. {:?} … {:?}", first.len(), first[0], first[11]);
    }
    assert!(feeds.iter().all(|f| f.lock().len() == 12), "every subscriber saw every edit once");
}
