//! Quickstart: define an interface, annotate a presentation, make calls —
//! then govern them with deadlines and retries.
//!
//! Walks the paper's introduction example end to end: the `SysLog`
//! interface, its default CORBA presentation, and the alternate
//! `length_is` presentation — both talking to the same server, because
//! presentation never touches the network contract. The final section
//! shows the robustness layer: per-call [`CallOptions`], the
//! `[idempotent]` retry license, and the unified [`Error`] taxonomy.
//!
//! Everything here comes from one import. Run with:
//! `cargo run --example quickstart`

use flexrpc::prelude::*;
use std::time::Duration;

fn main() {
    // 1. The interface — the network contract (paper, introduction).
    let module = corba::parse(
        "syslog",
        r#"
        interface SysLog {
            void write_msg(in string msg);
        };
        "#,
    )
    .expect("IDL parses");
    let iface = module.interface("SysLog").expect("declared");

    // 2. The default presentation, computed by fixed rules.
    let default_pres = InterfacePresentation::default_for(&module, iface).expect("defaults");

    // 3. A server (any presentation; here the default).
    let compiled_server =
        CompiledInterface::compile(&module, iface, &default_pres).expect("compiles");
    let mut server = ServerInterface::new(compiled_server, WireFormat::Cdr);
    server
        .on("write_msg", |call| {
            println!("syslog: {}", call.str("msg").unwrap_or("<bad message>"));
            0
        })
        .expect("registers");
    let server = Arc::new(Mutex::new(server));

    // 4. A client with the *standard* presentation: checked strings.
    let compiled = CompiledInterface::compile(&module, iface, &default_pres).expect("compiles");
    let mut client =
        ClientStub::new(compiled, WireFormat::Cdr, Box::new(Loopback::new(Arc::clone(&server))));
    let mut frame = client.new_frame("write_msg").expect("frame");
    frame[0] = Value::Str("hello from the standard presentation".into());
    client.call("write_msg", &mut frame).expect("call succeeds");

    // 5. A second client, same interface, *alternate* presentation from the
    //    paper's PDL: the message travels as raw bytes with an explicit
    //    length — the stub changes shape, the wire bytes do not.
    let pdl = pdl::parse("SysLog_write_msg(,, char *[length_is(length)] msg, int length);")
        .expect("PDL parses");
    let annotated = apply_pdl(&module, iface, &default_pres, &pdl).expect("applies");
    let compiled = CompiledInterface::compile(&module, iface, &annotated).expect("compiles");
    assert_eq!(
        compiled.signature.hash(),
        client.compiled().signature.hash(),
        "presentation never changes the contract"
    );
    let mut client2 =
        ClientStub::new(compiled, WireFormat::Cdr, Box::new(Loopback::new(Arc::clone(&server))));
    let mut frame = client2.new_frame("write_msg").expect("frame");
    let raw: &[u8] = b"hello from the length_is presentation (no NUL scan)";
    frame[0] = Value::Bytes(raw.to_vec());
    client2.call("write_msg", &mut frame).expect("call succeeds");

    // 6. Robustness policy rides on the same declarations. A retry policy
    //    may resend a call, so it demands the op's license: `write_msg`
    //    has not declared `[idempotent]`, and the policy layer refuses the
    //    combination up front — a contract violation, not a late surprise.
    let options = CallOptions::default()
        .deadline(Duration::from_millis(5))
        .retry(RetryPolicy::new(3).backoff(Duration::from_millis(1)).seed(42));
    let mut frame = client2.new_frame("write_msg").expect("frame");
    frame[0] = Value::Bytes(b"never sent".to_vec());
    let err: Error =
        client2.call_with("write_msg", &mut frame, &options).expect_err("refused up front");
    assert_eq!(err.kind(), ErrorKind::ContractViolation);
    println!("retry without a license: {err}");

    // 7. A PDL line grants the license; the same options now pass the
    //    gate, and the deadline is enforced on the transport's sim clock.
    let pdl = pdl::parse("[idempotent] void SysLog_write_msg(char *msg);").expect("PDL parses");
    let idem = apply_pdl(&module, iface, &default_pres, &pdl).expect("applies");
    let compiled = CompiledInterface::compile(&module, iface, &idem).expect("compiles");
    let clock = SimClock::new();
    let transport = Loopback::with_clock(server, Arc::clone(&clock));
    // A fault drops the first send; the policy's backoff covers it and the
    // retry lands inside the deadline.
    transport.faults().on_next_call(flexrpc::clock::Fault::Drop);
    let mut client3 = ClientStub::new(compiled, WireFormat::Cdr, Box::new(transport));
    let mut frame = client3.new_frame("write_msg").expect("frame");
    frame[0] = Value::Str("delivered on the second attempt".into());
    client3.call_with("write_msg", &mut frame, &options).expect("retry covers the drop");
    println!("sim clock spent {} ns on backoff", clock.now_ns());
}
