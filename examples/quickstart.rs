//! Quickstart: define an interface, annotate a presentation, make calls.
//!
//! Walks the paper's introduction example end to end: the `SysLog`
//! interface, its default CORBA presentation, and the alternate
//! `length_is` presentation — both talking to the same server, because
//! presentation never touches the network contract.
//!
//! Run with: `cargo run --example quickstart`

use flexrpc::core::annot::apply_pdl;
use flexrpc::core::present::InterfacePresentation;
use flexrpc::core::program::CompiledInterface;
use flexrpc::core::value::Value;
use flexrpc::marshal::WireFormat;
use flexrpc::runtime::transport::Loopback;
use flexrpc::runtime::{ClientStub, ServerInterface};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    // 1. The interface — the network contract (paper, introduction).
    let module = flexrpc::idl::corba::parse(
        "syslog",
        r#"
        interface SysLog {
            void write_msg(in string msg);
        };
        "#,
    )
    .expect("IDL parses");
    let iface = module.interface("SysLog").expect("declared");

    // 2. The default presentation, computed by fixed rules.
    let default_pres = InterfacePresentation::default_for(&module, iface).expect("defaults");

    // 3. A server (any presentation; here the default).
    let compiled_server =
        CompiledInterface::compile(&module, iface, &default_pres).expect("compiles");
    let mut server = ServerInterface::new(compiled_server, WireFormat::Cdr);
    server
        .on("write_msg", |call| {
            println!("syslog: {}", call.str("msg").unwrap_or("<bad message>"));
            0
        })
        .expect("registers");
    let server = Arc::new(Mutex::new(server));

    // 4. A client with the *standard* presentation: checked strings.
    let compiled = CompiledInterface::compile(&module, iface, &default_pres).expect("compiles");
    let mut client =
        ClientStub::new(compiled, WireFormat::Cdr, Box::new(Loopback::new(Arc::clone(&server))));
    let mut frame = client.new_frame("write_msg").expect("frame");
    frame[0] = Value::Str("hello from the standard presentation".into());
    client.call("write_msg", &mut frame).expect("call succeeds");

    // 5. A second client, same interface, *alternate* presentation from the
    //    paper's PDL: the message travels as raw bytes with an explicit
    //    length — the stub changes shape, the wire bytes do not.
    let pdl =
        flexrpc::idl::pdl::parse("SysLog_write_msg(,, char *[length_is(length)] msg, int length);")
            .expect("PDL parses");
    let annotated = apply_pdl(&module, iface, &default_pres, &pdl).expect("applies");
    let compiled = CompiledInterface::compile(&module, iface, &annotated).expect("compiles");
    assert_eq!(
        compiled.signature.hash(),
        client.compiled().signature.hash(),
        "presentation never changes the contract"
    );
    let mut client2 = ClientStub::new(compiled, WireFormat::Cdr, Box::new(Loopback::new(server)));
    let mut frame = client2.new_frame("write_msg").expect("frame");
    let raw: &[u8] = b"hello from the length_is presentation (no NUL scan)";
    frame[0] = Value::Bytes(raw.to_vec());
    client2.call("write_msg", &mut frame).expect("call succeeds");

    // 6. The Rust back-end shows the presentations as signatures.
    let code = flexrpc::codegen::generate(
        &module,
        iface,
        &annotated,
        &flexrpc::codegen::GenOptions { client: true, server: false },
    )
    .expect("generates");
    let sig = code.lines().find(|l| l.contains("pub fn write_msg")).expect("method emitted");
    println!("generated under length_is: {}", sig.trim());
}
