//! NFS read demo: the paper's §4.1 Linux-client experiment as a program.
//!
//! Serves a file over Sun RPC on the simulated Ethernet and reads it back
//! with all four client stub variants, printing client CPU time, the
//! (identical) simulated wire time, and the copy schedule.
//!
//! Run with: `cargo run --release --example nfs_read`

use flexrpc::net::SimNet;
use flexrpc::nfs::client::{ClientVariant, NfsClientHarness};
use flexrpc::nfs::server::{serve_nfs, test_file};
use std::sync::Arc;
use std::time::Instant;

const FILE_LEN: usize = 2 * 1024 * 1024;
const CHUNK: usize = 8192;

fn main() {
    println!("reading a {} MB file in {} KB NFS chunks\n", FILE_LEN >> 20, CHUNK >> 10);
    for variant in ClientVariant::ALL {
        let net = SimNet::new();
        let client_host = net.add_host("linux-486dx2");
        let server_host = net.add_host("hp700-bsd");
        let store = serve_nfs(&net, server_host);
        let fh = store.lock().add_file(test_file(FILE_LEN, 7));
        let mut h = NfsClientHarness::new(Arc::clone(&net), client_host, server_host, fh, FILE_LEN);

        let wire0 = net.wire_ns();
        let t0 = Instant::now();
        let attrs = h.read_file(variant, FILE_LEN, CHUNK).expect("read succeeds");
        let cpu = t0.elapsed();
        let wire_ms = (net.wire_ns() - wire0) as f64 / 1e6;

        let copied = h.kernel().stats().snapshot();
        assert_eq!(h.user_buffer(), test_file(FILE_LEN, 7), "content verified");
        println!(
            "{:24} client-cpu {:7.2} ms   wire+server {:8.1} ms   copyout {:2} MB   (file size {} B, mtime {})",
            variant.label(),
            cpu.as_secs_f64() * 1e3,
            wire_ms,
            copied.bytes_copied_out >> 20,
            attrs.size,
            attrs.mtime,
        );
    }
    println!("\nthe wire+server column is identical by construction: presentation");
    println!("annotations change only where the client's copies happen.");
}
