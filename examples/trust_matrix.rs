//! Trust-matrix demo: §4.5's specialized transport as a program.
//!
//! Binds nine connections — one per (client trust × server trust) pair —
//! and shows the combination signature the kernel compiled for each (how
//! many register save/scrub/restore blocks the null-RPC path threads
//! together), plus measured latency, plus the `[nonunique]` port-name
//! experiment.
//!
//! Run with: `cargo run --release --example trust_matrix`

use flexrpc::kernel::NameMode;
use flexrpc::kernel::TrustLevel;
use flexrpc_bench::{fig12::Cell, measure_ns, port::PortTransfer};

fn main() {
    println!("null RPC over the streamlined path, by declared trust:\n");
    println!("{:28} {:>8} {:>10}", "client-trust / server-trust", "reg-ops", "ns/call");
    for client in TrustLevel::ALL {
        for server in TrustLevel::ALL {
            let cell = Cell::new(client, server);
            cell.null_rpc(); // Warm.
            let ns = measure_ns(3, 3000, || cell.null_rpc());
            println!(
                "{:14} / {:11} {:>8} {:>10.0}",
                client.label(),
                server.label(),
                cell.reg_ops(),
                ns
            );
        }
    }

    println!("\nport-right transfer (the unique-name rule is presentation):\n");
    for (label, mode) in
        [("unique (Mach default)", NameMode::Unique), ("[nonunique]", NameMode::NonUnique)]
    {
        let t = PortTransfer::new(mode);
        t.transfer_once();
        let probes = t.probes_per_transfer();
        let ns = measure_ns(3, 3000, || t.transfer_once());
        println!("{label:24} {ns:>8.0} ns/transfer   ({probes} name-table probes)");
    }
}
