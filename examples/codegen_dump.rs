//! Stub-compiler driver: IDL + PDL in, Rust stubs out.
//!
//! Reads an interface (inline here; pass file paths to use your own) and an
//! optional PDL file, and prints the generated Rust client/server stubs —
//! the same output two different PDLs would turn into two differently
//! shaped, wire-compatible APIs.
//!
//! Run with:
//!   cargo run --example codegen_dump                  # built-in FileIO demo
//!   cargo run --example codegen_dump -- iface.idl [presentation.pdl]

use flexrpc::codegen::{generate, GenOptions};
use flexrpc::core::annot::apply_pdl;
use flexrpc::core::present::InterfacePresentation;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (idl_src, pdl_src, name) = match args.as_slice() {
        [] => (
            flexrpc::pipes::FILEIO_IDL.to_owned(),
            Some(flexrpc::pipes::DEALLOC_NEVER_PDL.to_owned()),
            "fileio".to_owned(),
        ),
        [idl] => (std::fs::read_to_string(idl).expect("read IDL file"), None, idl.clone()),
        [idl, pdl, ..] => (
            std::fs::read_to_string(idl).expect("read IDL file"),
            Some(std::fs::read_to_string(pdl).expect("read PDL file")),
            idl.clone(),
        ),
    };

    let module = flexrpc::idl::corba::parse(&name, &idl_src).unwrap_or_else(|e| {
        // Fall back to the Sun front-end for .x files.
        flexrpc::idl::sunrpc::parse(&name, &idl_src)
            .unwrap_or_else(|e2| panic!("IDL parse failed:\n  as CORBA: {e}\n  as Sun: {e2}"))
    });

    for iface in &module.interfaces {
        let mut pres = InterfacePresentation::default_for(&module, iface).expect("defaults");
        if let Some(pdl_text) = &pdl_src {
            let pdl = flexrpc::idl::pdl::parse(pdl_text).expect("PDL parses");
            pres = apply_pdl(&module, iface, &pres, &pdl).expect("PDL applies");
        }
        match generate(&module, iface, &pres, &GenOptions::both()) {
            Ok(code) => {
                println!("// ==== interface {} ====", iface.name);
                println!("{code}");
            }
            Err(e) => eprintln!("// interface {}: not generatable: {e}", iface.name),
        }
    }
}
