//! Pipe server demo: the paper's §4.2/§4.3 experiments as a program.
//!
//! Moves data through the decomposed pipe server under every presentation —
//! kernel IPC with the default and `[dealloc(never)]` replies, fbufs in
//! standard and `[special]` modes, and the monolithic BSD baseline —
//! printing throughput and the copy schedule that explains it.
//!
//! Run with: `cargo run --release --example pipe_throughput`

use flexrpc::kernel::Kernel;
use flexrpc::pipes::bsd::BsdPipe;
use flexrpc::pipes::fbuf::{FbufMode, FbufPipeHarness};
use flexrpc::pipes::ipc::PipeIpcHarness;
use flexrpc::pipes::server::ReadPresentation;
use std::sync::Arc;
use std::time::Instant;

const TOTAL: usize = 4 * 1024 * 1024;
const IO: usize = 4096;
const PIPE_CAP: usize = 8192;

fn mbps(total: usize, elapsed: std::time::Duration) -> f64 {
    total as f64 / elapsed.as_secs_f64() / 1e6
}

fn main() {
    println!("moving {} MB through a {} KB pipe, {} B per op\n", TOTAL >> 20, PIPE_CAP >> 10, IO);

    // Kernel IPC transport, both reply presentations.
    for mode in [ReadPresentation::Default, ReadPresentation::DeallocNever] {
        let mut h = PipeIpcHarness::new(PIPE_CAP, mode);
        h.transfer(TOTAL, IO).expect("warm-up");
        let before = h.kernel().stats().snapshot();
        let t0 = Instant::now();
        h.transfer(TOTAL, IO).expect("transfer");
        let dt = t0.elapsed();
        let d = h.kernel().stats().snapshot().since(&before);
        let server_copies =
            h.server_stats().intermediate_copy_bytes.load(std::sync::atomic::Ordering::Relaxed);
        println!(
            "kernel-ipc {:16} {:8.1} MB/s   kernel copies {:3} MB, server re-buffering {:2} MB",
            mode.label(),
            mbps(TOTAL, dt),
            d.bytes_copied_user_to_user >> 20,
            server_copies >> 20,
        );
    }

    // Fbuf transport, standard vs [special] server presentation.
    for mode in [FbufMode::Standard, FbufMode::Special] {
        let mut h = FbufPipeHarness::new(PIPE_CAP, IO, mode);
        h.transfer(TOTAL, IO);
        let before = h.fbufs().stats().snapshot();
        let t0 = Instant::now();
        h.transfer(TOTAL, IO);
        let dt = t0.elapsed();
        let d = h.fbufs().stats().snapshot().since(&before);
        println!(
            "fbufs      {:16} {:8.1} MB/s   fbuf writes {:3} MB, reads {:3} MB, splices {}",
            mode.label(),
            mbps(TOTAL, dt),
            d.bytes_written >> 20,
            d.bytes_read >> 20,
            d.splices,
        );
    }

    // Monolithic baseline.
    let kernel = Kernel::new();
    let writer = kernel.create_task("writer", 2 * IO + 4096).expect("task");
    let reader = kernel.create_task("reader", 2 * IO + 4096).expect("task");
    let waddr = kernel.user_alloc(writer, IO).expect("alloc");
    let raddr = kernel.user_alloc(reader, IO).expect("alloc");
    let mut pipe = BsdPipe::with_capacity(Arc::clone(&kernel), 4096);
    pipe.transfer(writer, waddr, reader, raddr, TOTAL, IO).expect("warm-up");
    let t0 = Instant::now();
    pipe.transfer(writer, waddr, reader, raddr, TOTAL, IO).expect("transfer");
    println!(
        "monolithic bsd (4K buffer)  {:8.1} MB/s   (one copyin + one copyout per byte)",
        mbps(TOTAL, t0.elapsed())
    );
}
