//! Observability demo: trace a supervised failover end to end and emit a
//! Chrome-loadable trace file plus the unified metrics document.
//!
//! A same-domain serving engine is the primary; a Sun RPC standby on the
//! simulated network shares its state. The supervisor, the engine
//! connection, and the client stub all record spans on the *same* sim
//! clock, so the exported timeline shows the whole episode — healthy
//! calls, the crash, the rebind, the licensed replay, and recovery — with
//! deterministic timestamps.
//!
//! Run with `cargo run --example trace_failover` (or
//! `scripts/trace_demo.sh`), then load `target/trace.json` in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use flexrpc::clock::Fault;
use flexrpc::net::{NetConfig, SimNet};
use flexrpc::prelude::*;
use flexrpc::runtime::transport::{serve_on_net, SunRpc};
use std::sync::atomic::{AtomicU64, Ordering};

fn counter_module() -> flexrpc::core::ir::Module {
    corba::parse(
        "counter",
        r#"
        interface Counter {
            unsigned long add(in unsigned long x);
        };
        "#,
    )
    .expect("IDL parses")
}

fn compiled(m: &flexrpc::core::ir::Module) -> CompiledInterface {
    let iface = m.interface("Counter").expect("declared");
    let pres = InterfacePresentation::default_for(m, iface).expect("defaults");
    CompiledInterface::compile(m, iface, &pres).expect("compiles")
}

fn main() {
    let m = counter_module();
    let pres = {
        let iface = m.interface("Counter").expect("declared");
        InterfacePresentation::default_for(&m, iface).expect("defaults")
    };

    // One sim clock for the whole world: engine, network, and every span.
    let clock = SimClock::new();
    let net = SimNet::with_clock(NetConfig::default(), Arc::clone(&clock));
    let client_host = net.add_host("client");
    let standby_host = net.add_host("standby");

    // Replicated application state shared by primary and standby.
    let total = Arc::new(AtomicU64::new(0));
    let handler = |total: Arc<AtomicU64>| {
        move |call: &mut flexrpc::runtime::ServerCall<'_, '_>| {
            let x = call.u32("x").expect("x") as u64;
            let new = total.fetch_add(x, Ordering::SeqCst) + x;
            call.set("return", Value::U32(new as u32)).expect("return");
            0
        }
    };

    // Primary: a traced same-domain serving engine.
    let engine = Engine::builder().workers(2).clock(Arc::clone(&clock)).build();
    {
        let total = Arc::clone(&total);
        engine
            .register_service("counter", m.clone(), "Counter", pres.clone(), WireFormat::Cdr, {
                let handler = handler(total);
                move |srv| {
                    srv.on("add", handler.clone()).expect("registers");
                }
            })
            .expect("service registers");
    }

    // Standby: the same contract over Sun RPC.
    let standby = {
        let mut srv = ServerInterface::new(compiled(&m), WireFormat::Cdr);
        srv.on("add", handler(Arc::clone(&total))).expect("registers");
        Arc::new(Mutex::new(srv))
    };
    serve_on_net(&net, standby_host, standby, 500_001, 1).expect("standby serves");

    // The supervisor tries the engine first, the Sun RPC standby second.
    let eng = Arc::clone(&engine);
    let (m1, m2) = (m.clone(), m.clone());
    let (net2, c2) = (Arc::clone(&net), client_host);
    let mut sup = Supervisor::builder()
        .endpoint(move || {
            let conn = eng
                .connect("counter")
                .options(CallOptions::default().traced())
                .establish()
                .map_err(Error::from)?;
            Ok(ClientStub::new(compiled(&m1), WireFormat::Cdr, Box::new(conn)))
        })
        .endpoint(move || {
            let t = SunRpc::new(Arc::clone(&net2), c2, standby_host, 500_001, 1);
            Ok(ClientStub::new(compiled(&m2), WireFormat::Cdr, Box::new(t)))
        })
        .connect()
        .expect("primary binds");
    sup.stub_mut().enable_at_most_once();
    sup.set_tracer(SharedCallTrace::sim(1024, Arc::clone(&clock)));

    // Everything reports into one registry: engine, supervisor, network.
    sup.register_metrics(engine.metrics());
    net.stats().register_metrics(engine.metrics());

    let traced = CallOptions::default().traced();
    let add = |sup: &mut Supervisor, x: u32| {
        let mut frame = sup.new_frame("add").expect("frame");
        frame[0] = Value::U32(x);
        sup.call_with("add", &mut frame, &traced).expect("call completes");
        frame[1].as_u32().expect("return")
    };

    // Healthy traffic on the primary, then a fatal crash mid-call: the
    // supervisor rebinds to the standby and replays under the original tag.
    for x in 1..=3 {
        add(&mut sup, x);
    }
    engine.faults().on_next_call(Fault::Crash { restart_after_ns: None });
    let after = add(&mut sup, 10);
    println!("recovered on endpoint {} with total {after}", sup.current_endpoint());
    for x in 4..=5 {
        add(&mut sup, x);
    }

    // Export every track into one Chrome trace: the supervisor's failover
    // episode (track 0) and the surviving stub's per-call spans (track 1).
    let mut chrome = ChromeTraceSink::new();
    sup.tracer().expect("tracer").export(0, &mut chrome);
    if let Some(t) = sup.stub().trace() {
        t.export(1, &mut chrome);
    }
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/trace.json", chrome.into_string()).expect("trace written");

    let stats = sup.stats();
    println!(
        "disconnects {} rebinds {} replays {} recovery {} ns",
        stats.disconnects, stats.rebinds, stats.replays, stats.recovery_ns_last
    );
    println!("\nunified metrics:\n{}", engine.metrics().snapshot().to_json());
    println!("wrote target/trace.json — load it in chrome://tracing");
}
